//! A unifying interface over the value-delta extraction methods, plus the
//! paper's qualitative comparison (§5) as *executable* capability metadata.
//!
//! Each classical method becomes a stateful [`DeltaSource`] that can be
//! pulled repeatedly (watermarks, snapshot baselines and log positions are
//! managed internally), so pipelines can be composed against the trait and
//! methods swapped per source system — exactly the heterogeneity posture §2.2
//! asks extraction infrastructure to take.

use std::path::PathBuf;

use delta_engine::db::Database;
use delta_engine::wal::Lsn;
use delta_engine::EngineResult;

use crate::logextract::LogExtractor;
use crate::model::ValueDelta;
use crate::snapshot::{diff_snapshots, take_snapshot, DiffAlgorithm};
use crate::timestamp::TimestampExtractor;
use crate::trigger_extract::TriggerExtractor;

/// The classical extraction methods of §3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    Timestamp,
    Snapshot,
    Trigger,
    Log,
}

impl Method {
    /// Can the method observe deleted rows? (§3.1.1: timestamps cannot.)
    pub fn captures_deletes(self) -> bool {
        !matches!(self, Method::Timestamp)
    }

    /// Does it see every intermediate state, or only the final one?
    /// (§4: "The trigger and log based methods can capture state changes.")
    pub fn captures_state_changes(self) -> bool {
        matches!(self, Method::Trigger | Method::Log)
    }

    /// Does the extracted delta carry source transaction ids?
    pub fn preserves_txn_context(self) -> bool {
        matches!(self, Method::Trigger | Method::Log)
    }

    /// Does capture cost land on the source's user transactions?
    /// (§3.1.4: log extraction is off the critical path; §3.1.3: triggers
    /// execute inside the user transaction.)
    pub fn impacts_source_transactions(self) -> bool {
        matches!(self, Method::Trigger)
    }

    /// Does it require applications or the source schema to cooperate?
    /// (Timestamps need a natively maintained timestamp column.)
    pub fn needs_source_support(self) -> bool {
        matches!(self, Method::Timestamp)
    }

    /// Does it require the DBMS to keep redo segments (archive mode)?
    pub fn needs_archive_mode(self) -> bool {
        matches!(self, Method::Log)
    }
}

/// A pullable stream of value deltas from one source table (or, for the log
/// method, one source database).
pub trait DeltaSource {
    /// Which classical method this is.
    fn method(&self) -> Method;

    /// Extract everything new since the previous pull.
    fn pull(&mut self, db: &Database) -> EngineResult<Vec<ValueDelta>>;
}

/// Timestamp method with an internally managed watermark.
pub struct TimestampSource {
    extractor: TimestampExtractor,
    watermark: i64,
}

impl TimestampSource {
    /// Start extracting changes after the database's current clock.
    pub fn new(db: &Database, table: &str, ts_column: &str) -> TimestampSource {
        TimestampSource {
            extractor: TimestampExtractor::new(table, ts_column),
            watermark: db.peek_clock(),
        }
    }
}

impl DeltaSource for TimestampSource {
    fn method(&self) -> Method {
        Method::Timestamp
    }

    fn pull(&mut self, db: &Database) -> EngineResult<Vec<ValueDelta>> {
        let next_watermark = db.peek_clock();
        let vd = self.extractor.extract(db, self.watermark)?;
        self.watermark = next_watermark;
        Ok(if vd.is_empty() { vec![] } else { vec![vd] })
    }
}

/// Snapshot-differential method with an internally managed baseline.
pub struct SnapshotSource {
    table: String,
    key_cols: Vec<usize>,
    algo: DiffAlgorithm,
    dir: PathBuf,
    baseline: Option<PathBuf>,
    generation: u64,
}

impl SnapshotSource {
    /// Diff snapshots of `table` (keyed by `key_cols`) under `dir`.
    pub fn new(
        table: impl Into<String>,
        key_cols: &[usize],
        algo: DiffAlgorithm,
        dir: impl Into<PathBuf>,
    ) -> SnapshotSource {
        SnapshotSource {
            table: table.into(),
            key_cols: key_cols.to_vec(),
            algo,
            dir: dir.into(),
            baseline: None,
            generation: 0,
        }
    }
}

impl DeltaSource for SnapshotSource {
    fn method(&self) -> Method {
        Method::Snapshot
    }

    fn pull(&mut self, db: &Database) -> EngineResult<Vec<ValueDelta>> {
        std::fs::create_dir_all(&self.dir)?;
        self.generation += 1;
        let current = self
            .dir
            .join(format!("{}-{}.snap", self.table, self.generation));
        take_snapshot(db, &self.table, &current)?;
        let result = match &self.baseline {
            // First pull establishes the baseline: no delta yet.
            None => vec![],
            Some(prev) => {
                let schema = db.table(&self.table)?.schema.clone();
                let (vd, _) = diff_snapshots(
                    &self.table,
                    &schema,
                    &self.key_cols,
                    prev,
                    &current,
                    self.algo,
                )
                .map_err(delta_engine::EngineError::Storage)?;
                let _ = std::fs::remove_file(prev);
                if vd.is_empty() {
                    vec![]
                } else {
                    vec![vd]
                }
            }
        };
        self.baseline = Some(current);
        Ok(result)
    }
}

/// Trigger method: installs capture on construction, drains on pull.
pub struct TriggerSource {
    extractor: TriggerExtractor,
}

impl TriggerSource {
    /// Install a capture trigger on `table` and return the source.
    pub fn install(db: &Database, table: &str) -> EngineResult<TriggerSource> {
        let extractor = TriggerExtractor::new(table);
        extractor.install(db)?;
        Ok(TriggerSource { extractor })
    }
}

impl DeltaSource for TriggerSource {
    fn method(&self) -> Method {
        Method::Trigger
    }

    fn pull(&mut self, db: &Database) -> EngineResult<Vec<ValueDelta>> {
        let vd = self.extractor.drain(db)?;
        Ok(if vd.is_empty() { vec![] } else { vec![vd] })
    }
}

/// Archive-log method with an internally managed LSN watermark.
pub struct LogSource {
    inner: LogExtractor,
}

impl LogSource {
    /// Extract changes to `tables` (empty = all) from `from_lsn` on.
    pub fn new(tables: &[&str], from_lsn: Lsn) -> LogSource {
        let mut inner = LogExtractor::for_tables(tables);
        inner.watermark = from_lsn;
        LogSource { inner }
    }

    /// Start from the database's current log position (skip history).
    pub fn from_now(db: &Database, tables: &[&str]) -> LogSource {
        LogSource::new(tables, db.wal().next_lsn().saturating_sub(1))
    }
}

impl DeltaSource for LogSource {
    fn method(&self) -> Method {
        Method::Log
    }

    fn pull(&mut self, db: &Database) -> EngineResult<Vec<ValueDelta>> {
        self.inner.extract(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DeltaOp;
    use delta_engine::db::{Database, DbOptions};
    use std::sync::Arc;

    fn open(label: &str, archive: bool) -> Arc<Database> {
        let dir = std::env::temp_dir().join(format!(
            "deltaforge-src-{}-{:?}-{label}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let db = Database::open(DbOptions::new(dir).archive(archive)).unwrap();
        let mut s = db.session();
        s.execute("CREATE TABLE parts (id INT PRIMARY KEY, v INT, last_modified TIMESTAMP)")
            .unwrap();
        // A pre-existing row the workload later deletes (an insert+delete
        // inside one extraction window nets out for snapshot/timestamp).
        s.execute("INSERT INTO parts (id, v) VALUES (999, 0)")
            .unwrap();
        db
    }

    fn workload(db: &Arc<Database>, base: i64) {
        let mut s = db.session();
        s.execute(&format!("INSERT INTO parts (id, v) VALUES ({base}, 1)"))
            .unwrap();
        s.execute(&format!("UPDATE parts SET v = 2 WHERE id = {base}"))
            .unwrap();
        s.execute("DELETE FROM parts WHERE id = 999").unwrap();
    }

    /// Build all four sources against one database each and check that the
    /// paper's §5 capability matrix matches what each actually extracts.
    type SourceFactory = Box<dyn Fn() -> (Arc<Database>, Box<dyn DeltaSource>)>;

    #[test]
    fn capability_matrix_matches_behaviour() {
        let sources: Vec<(SourceFactory, Method)> = vec![
            (
                Box::new(|| {
                    let db = open("ts", false);
                    let s = TimestampSource::new(&db, "parts", "last_modified");
                    (db, Box::new(s) as Box<dyn DeltaSource>)
                }),
                Method::Timestamp,
            ),
            (
                Box::new(|| {
                    let db = open("snap", false);
                    let dir = db.options().dir.join("snaps");
                    let mut s = SnapshotSource::new(
                        "parts",
                        &[0],
                        DiffAlgorithm::SortMerge { run_size: 64 },
                        dir,
                    );
                    s.pull(&db).unwrap(); // establish the baseline
                    (db, Box::new(s) as Box<dyn DeltaSource>)
                }),
                Method::Snapshot,
            ),
            (
                Box::new(|| {
                    let db = open("trig", false);
                    let s = TriggerSource::install(&db, "parts").unwrap();
                    (db, Box::new(s) as Box<dyn DeltaSource>)
                }),
                Method::Trigger,
            ),
            (
                Box::new(|| {
                    let db = open("log", true);
                    let s = LogSource::from_now(&db, &["parts"]);
                    (db, Box::new(s) as Box<dyn DeltaSource>)
                }),
                Method::Log,
            ),
        ];
        for (make, method) in sources {
            let (db, mut source) = make();
            assert_eq!(source.method(), method);
            workload(&db, 100);
            let deltas = source.pull(&db).unwrap();
            let all: Vec<_> = deltas.iter().flat_map(|d| d.records.iter()).collect();
            assert!(!all.is_empty(), "{method:?} extracted nothing");

            let saw_delete = all.iter().any(|r| r.op == DeltaOp::Delete);
            assert_eq!(
                saw_delete,
                method.captures_deletes(),
                "{method:?}: delete capture mismatch"
            );
            // Intermediate state: row `base` was inserted with v=1 then
            // updated to v=2; only state-change methods see v=1 anywhere.
            let saw_intermediate = all.iter().any(|r| {
                r.row.values()[0] == delta_storage::Value::Int(100)
                    && r.row.values()[1] == delta_storage::Value::Int(1)
            });
            assert_eq!(
                saw_intermediate,
                method.captures_state_changes(),
                "{method:?}: state-change capture mismatch"
            );
            let has_ctx = deltas.iter().all(|d| d.has_txn_context());
            assert_eq!(
                has_ctx,
                method.preserves_txn_context(),
                "{method:?}: txn-context mismatch"
            );
        }
    }

    #[test]
    fn pulls_are_incremental_for_every_source() {
        // Timestamp.
        let db = open("ts-incr", false);
        let mut s = TimestampSource::new(&db, "parts", "last_modified");
        workload(&db, 0);
        assert!(!s.pull(&db).unwrap().is_empty());
        assert!(s.pull(&db).unwrap().is_empty(), "nothing new");
        workload(&db, 50);
        assert!(!s.pull(&db).unwrap().is_empty());

        // Snapshot.
        let db = open("snap-incr", false);
        let dir = db.options().dir.join("snaps");
        let mut s = SnapshotSource::new("parts", &[0], DiffAlgorithm::Window { size: 256 }, dir);
        assert!(s.pull(&db).unwrap().is_empty(), "baseline pull");
        workload(&db, 0);
        assert_eq!(s.pull(&db).unwrap().len(), 1);
        assert!(s.pull(&db).unwrap().is_empty());

        // Trigger.
        let db = open("trig-incr", false);
        let mut s = TriggerSource::install(&db, "parts").unwrap();
        workload(&db, 0);
        assert!(!s.pull(&db).unwrap().is_empty());
        assert!(s.pull(&db).unwrap().is_empty());

        // Log.
        let db = open("log-incr", true);
        let mut s = LogSource::from_now(&db, &["parts"]);
        workload(&db, 0);
        assert!(!s.pull(&db).unwrap().is_empty());
        assert!(s.pull(&db).unwrap().is_empty());
    }

    #[test]
    fn log_source_from_now_skips_history() {
        let db = open("log-skip", true);
        workload(&db, 0); // history
        let mut s = LogSource::from_now(&db, &["parts"]);
        assert!(s.pull(&db).unwrap().is_empty(), "history skipped");
        workload(&db, 50);
        let deltas = s.pull(&db).unwrap();
        assert!(deltas[0]
            .records
            .iter()
            .all(|r| r.row.values()[0].as_int().unwrap() >= 50));
    }
}
