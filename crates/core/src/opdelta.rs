//! Op-Delta capture (§4, Figure 3, Table 4).
//!
//! [`OpDeltaCapture`] wraps an engine [`Session`] and intercepts every write
//! statement *"right before it is submitted to the DBMS"* (§4.2) — the
//! placement a COTS vendor or a wrapper/middleware would use. For each write
//! it records:
//!
//! * the operation itself, with `NOW()` frozen to the source clock so replay
//!   is deterministic;
//! * the capture-level transaction boundary (autocommit statements get their
//!   own transaction; `BEGIN`…`COMMIT` runs are grouped);
//! * a **partial before-image** — only when the
//!   [`SelfMaintAnalyzer`] says the
//!   warehouse cannot replay the operation alone (§4.1's hybrid).
//!
//! Two sinks, matching Table 4's comparison:
//!
//! * [`OpLogSink::Table`] — the log record is INSERTed into a database table
//!   **in the same transaction** as the user's operation (transactional
//!   capture; one extra SQL insert per statement);
//! * [`OpLogSink::File`] — the log record is appended to a flat file
//!   (cheaper, but not transactional: a rollback leaves the record behind,
//!   so the wrapper appends an explicit rollback marker the collector honors).

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::PathBuf;

use delta_engine::db::Database;
use delta_engine::{EngineError, EngineResult, QueryResult, Session};
use delta_sql::ast::{Expr, SelectItem, Statement};
use delta_sql::parser::parse_statement;
use delta_storage::{Column, DataType, Schema, StorageError, Value};

use crate::model::{
    escape_line, unescape_line, DeltaOp, OpDelta, OpLogRecord, ValueDelta, ValueDeltaRecord,
};
use crate::selfmaint::{MaintRequirement, SelfMaintAnalyzer};

/// Where captured Op-Delta records go.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpLogSink {
    /// A database table, written transactionally with the operation.
    Table(String),
    /// A flat file, appended (and flushed) per record, non-transactionally.
    File(PathBuf),
}

/// Schema of an op-log table: capture sequence, chunk number, capture
/// transaction id, and the payload chunk.
///
/// A log record's payload is `"<escaped stmt>\t<escaped before-image or ->"`.
/// Payloads longer than [`CHUNK_BYTES`] are split across consecutive chunk
/// rows (classic LOB chunking) so a 10,000-row INSERT statement — whose text
/// exceeds a heap page — still logs transactionally.
pub fn op_log_schema() -> Schema {
    Schema::new(vec![
        Column::new("seq", DataType::Int).not_null(),
        Column::new("chunk", DataType::Int).not_null(),
        Column::new("txn", DataType::Int).not_null(),
        Column::new("payload", DataType::Varchar).not_null(),
    ])
    .expect("static schema")
}

/// Maximum payload bytes per op-log chunk row (comfortably within a page).
pub const CHUNK_BYTES: usize = 4000;

/// Split `payload` at UTF-8 boundaries into chunks of at most [`CHUNK_BYTES`].
fn chunk_payload(payload: &str) -> Vec<&str> {
    let mut out = Vec::with_capacity(payload.len() / CHUNK_BYTES + 1);
    let mut rest = payload;
    while rest.len() > CHUNK_BYTES {
        let mut cut = CHUNK_BYTES;
        while !rest.is_char_boundary(cut) {
            cut -= 1;
        }
        let (head, tail) = rest.split_at(cut);
        out.push(head);
        rest = tail;
    }
    out.push(rest);
    out
}

/// The Op-Delta capture wrapper around a session.
pub struct OpDeltaCapture {
    session: Session,
    sink: OpLogSink,
    analyzer: Option<SelfMaintAnalyzer>,
    file: Option<BufWriter<File>>,
    next_seq: u64,
    next_txn: u64,
    /// Capture transaction id for the currently open BEGIN…COMMIT run.
    current_txn: Option<u64>,
    /// Statements captured (not merely executed) so far.
    captured: u64,
}

impl OpDeltaCapture {
    /// Wrap `session`, logging to `sink`. For a table sink the op-log table
    /// is created if missing; for a file sink the file is opened for append.
    pub fn new(session: Session, sink: OpLogSink) -> EngineResult<OpDeltaCapture> {
        let file = match &sink {
            OpLogSink::Table(name) => {
                let db = session.database();
                if db.table(name).is_err() {
                    db.create_table(name, op_log_schema(), Default::default())?;
                }
                None
            }
            OpLogSink::File(path) => Some(BufWriter::new(
                OpenOptions::new().create(true).append(true).open(path)?,
            )),
        };
        Ok(OpDeltaCapture {
            session,
            sink,
            analyzer: None,
            file,
            next_seq: 1,
            next_txn: 1,
            current_txn: None,
            captured: 0,
        })
    }

    /// Attach a self-maintainability analyzer: statements it rules
    /// `NotRelevant` are executed but not captured; statements needing the
    /// hybrid get before-images attached.
    pub fn with_analyzer(mut self, analyzer: SelfMaintAnalyzer) -> OpDeltaCapture {
        self.analyzer = Some(analyzer);
        self
    }

    /// The wrapped session's database.
    pub fn database(&self) -> &std::sync::Arc<Database> {
        self.session.database()
    }

    /// Statements captured so far.
    pub fn captured_count(&self) -> u64 {
        self.captured
    }

    /// Execute one SQL statement through the capture layer.
    pub fn execute(&mut self, sql: &str) -> EngineResult<QueryResult> {
        let stmt = parse_statement(sql)?;
        self.execute_stmt(&stmt)
    }

    /// Execute a pre-parsed statement through the capture layer.
    pub fn execute_stmt(&mut self, stmt: &Statement) -> EngineResult<QueryResult> {
        match stmt {
            Statement::Begin => {
                let r = self.session.execute_stmt(stmt)?;
                self.current_txn = Some(self.alloc_txn());
                Ok(r)
            }
            Statement::Commit => {
                let r = self.session.execute_stmt(stmt)?;
                self.current_txn = None;
                Ok(r)
            }
            Statement::Rollback => {
                let r = self.session.execute_stmt(stmt)?;
                if let Some(txn) = self.current_txn.take() {
                    self.append_rollback_marker(txn)?;
                }
                Ok(r)
            }
            s if s.is_write() => self.capture_and_execute(s),
            // Reads and DDL pass straight through (DDL is shipped to the
            // warehouse out of band, as in any real deployment).
            other => self.session.execute_stmt(other),
        }
    }

    fn alloc_txn(&mut self) -> u64 {
        let t = self.next_txn;
        self.next_txn += 1;
        t
    }

    fn capture_and_execute(&mut self, stmt: &Statement) -> EngineResult<QueryResult> {
        // Freeze NOW() so the shipped operation replays deterministically.
        let frozen = stmt.freeze_now(self.database().now_micros());

        let requirement = match &self.analyzer {
            Some(a) => a.analyze(&frozen),
            None => MaintRequirement::OpOnly,
        };
        if requirement == MaintRequirement::NotRelevant {
            // Nothing mirrored is affected: execute without capturing.
            return self.session.execute_stmt(&frozen);
        }

        let autocommit = !self.session.in_txn();
        if autocommit {
            self.session.execute_stmt(&Statement::Begin)?;
            self.current_txn = Some(self.alloc_txn());
        } else if self.current_txn.is_none() {
            // The wrapped session arrived with a transaction already open
            // (begun before the wrapper existed): adopt it.
            self.current_txn = Some(self.alloc_txn());
        }
        let capture_txn = self.current_txn.expect("txn allocated above");

        let result = (|| {
            // 1. Read the partial before-image if the hybrid is required —
            //    necessarily before the operation executes.
            let before_image = match &requirement {
                MaintRequirement::NeedsBeforeImage { .. } => {
                    Some(self.read_before_image(&frozen, capture_txn)?)
                }
                _ => None,
            };
            // 2. Log the operation.
            let seq = self.next_seq;
            self.next_seq += 1;
            self.write_log_record(seq, capture_txn, &frozen, before_image.as_ref())?;
            self.captured += 1;
            // 3. Submit the operation itself.
            self.session.execute_stmt(&frozen)
        })();

        if autocommit {
            match &result {
                Ok(_) => {
                    self.session.execute_stmt(&Statement::Commit)?;
                    self.current_txn = None;
                }
                Err(_) => {
                    let _ = self.session.execute_stmt(&Statement::Rollback);
                    if let Some(txn) = self.current_txn.take() {
                        let _ = self.append_rollback_marker(txn);
                    }
                }
            }
        }
        result
    }

    /// SELECT the rows the statement is about to affect (before images).
    fn read_before_image(&mut self, stmt: &Statement, txn: u64) -> EngineResult<ValueDelta> {
        let (table, predicate, op) = match stmt {
            Statement::Delete { table, predicate } => (table, predicate, DeltaOp::Delete),
            Statement::Update {
                table, predicate, ..
            } => (table, predicate, DeltaOp::UpdateBefore),
            _ => {
                return Err(EngineError::Invalid(
                    "before images only apply to UPDATE/DELETE".into(),
                ))
            }
        };
        let select = Statement::Select {
            projection: vec![SelectItem::Wildcard],
            table: table.clone(),
            predicate: predicate.clone(),
            group_by: vec![],
            order_by: vec![],
            limit: None,
        };
        let rows = self.session.execute_stmt(&select)?.rows;
        let schema = self.database().table(table)?.schema.clone();
        let mut vd = ValueDelta::new(table.clone(), schema);
        vd.records.extend(
            rows.into_iter()
                .map(|row| ValueDeltaRecord { op, txn, row }),
        );
        Ok(vd)
    }

    fn write_log_record(
        &mut self,
        seq: u64,
        txn: u64,
        stmt: &Statement,
        before_image: Option<&ValueDelta>,
    ) -> EngineResult<()> {
        let bi_field = match before_image {
            Some(bi) => escape_line(&bi.to_text()),
            None => "-".to_string(),
        };
        match &self.sink {
            OpLogSink::Table(name) => {
                let payload = format!("{}\t{bi_field}", escape_line(&stmt.to_string()));
                for (chunk, part) in chunk_payload(&payload).into_iter().enumerate() {
                    let insert = Statement::Insert {
                        table: name.clone(),
                        columns: None,
                        rows: vec![vec![
                            Expr::Literal(Value::Int(seq as i64)),
                            Expr::Literal(Value::Int(chunk as i64)),
                            Expr::Literal(Value::Int(txn as i64)),
                            Expr::Literal(Value::Str(part.to_string())),
                        ]],
                    };
                    self.session.execute_stmt(&insert)?;
                }
            }
            OpLogSink::File(_) => {
                let out = self.file.as_mut().expect("file sink has a writer");
                writeln!(
                    out,
                    "S\t{seq}\t{txn}\t{}\t{bi_field}",
                    escape_line(&stmt.to_string())
                )?;
                out.flush()?;
            }
        }
        Ok(())
    }

    fn append_rollback_marker(&mut self, txn: u64) -> EngineResult<()> {
        if let Some(out) = self.file.as_mut() {
            writeln!(out, "R\t0\t{txn}\t-\t-")?;
            out.flush()?;
        }
        // Table sink needs no marker: the log inserts rolled back with the
        // user transaction.
        Ok(())
    }

    /// Unwrap, returning the inner session.
    pub fn into_session(self) -> Session {
        self.session
    }
}

/// Collect captured Op-Deltas from a table sink, grouped by capture
/// transaction, ordered by first sequence number.
pub fn collect_from_table(db: &Database, log_table: &str) -> EngineResult<Vec<OpDelta>> {
    // Reassemble chunked payloads: (seq -> (txn, [(chunk, part)])).
    let mut by_seq: std::collections::BTreeMap<u64, (u64, Vec<(i64, String)>)> = Default::default();
    for (_, row) in db.scan_table(log_table)? {
        let seq = row.values()[0].as_int()? as u64;
        let chunk = row.values()[1].as_int()?;
        let txn = row.values()[2].as_int()? as u64;
        let part = row.values()[3].as_str()?.to_string();
        by_seq
            .entry(seq)
            .or_insert((txn, Vec::new()))
            .1
            .push((chunk, part));
    }
    let mut records = Vec::new();
    for (seq, (txn, mut parts)) in by_seq {
        parts.sort_by_key(|(c, _)| *c);
        // Chunks must be dense 0..n.
        for (i, (c, _)) in parts.iter().enumerate() {
            if *c != i as i64 {
                return Err(EngineError::Invalid(format!(
                    "op-log record {seq} is missing chunk {i}"
                )));
            }
        }
        let payload: String = parts.into_iter().map(|(_, p)| p).collect();
        let (stmt_field, bi_field) = payload.split_once('\t').ok_or_else(|| {
            EngineError::Invalid(format!("op-log record {seq} has a malformed payload"))
        })?;
        let statement = parse_statement(&unescape_line(stmt_field).map_err(EngineError::Storage)?)?;
        let before_image = if bi_field == "-" {
            None
        } else {
            Some(
                ValueDelta::from_text(&unescape_line(bi_field).map_err(EngineError::Storage)?)
                    .map_err(EngineError::Storage)?,
            )
        };
        records.push(OpLogRecord {
            seq,
            txn,
            statement,
            before_image,
        });
    }
    Ok(group_records(records, &Default::default()))
}

/// Delete all records from a table sink (after successful shipping).
pub fn clear_table(db: &Database, log_table: &str) -> EngineResult<u64> {
    let mut txn = db.begin();
    let stmt = Statement::Delete {
        table: log_table.into(),
        predicate: None,
    };
    match delta_engine::exec::execute(db, &mut txn, &stmt) {
        Ok(q) => {
            db.commit(txn)?;
            Ok(q.affected)
        }
        Err(e) => {
            db.abort(txn)?;
            Err(e)
        }
    }
}

/// Collect captured Op-Deltas from a file sink. Transactions with a rollback
/// marker are dropped (the file log is not transactional — §4.2).
pub fn collect_from_file(path: impl Into<PathBuf>) -> Result<Vec<OpDelta>, StorageError> {
    let text = std::fs::read_to_string(path.into())?;
    let mut records = Vec::new();
    let mut rolled_back: std::collections::HashSet<u64> = Default::default();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        let mut parts = line.splitn(5, '\t');
        let (kind, seq, txn, stmt, bi) = match (
            parts.next(),
            parts.next(),
            parts.next(),
            parts.next(),
            parts.next(),
        ) {
            (Some(a), Some(b), Some(c), Some(d), Some(e)) => (a, b, c, d, e),
            _ => return Err(StorageError::Corrupt(format!("bad op-log line '{line}'"))),
        };
        let txn: u64 = txn
            .parse()
            .map_err(|_| StorageError::Corrupt("bad op-log txn".into()))?;
        match kind {
            "R" => {
                rolled_back.insert(txn);
            }
            "S" => {
                let seq: u64 = seq
                    .parse()
                    .map_err(|_| StorageError::Corrupt("bad op-log seq".into()))?;
                let statement = parse_statement(&unescape_line(stmt)?)
                    .map_err(|e| StorageError::Corrupt(format!("op-log SQL: {e}")))?;
                let before_image = if bi == "-" {
                    None
                } else {
                    Some(ValueDelta::from_text(&unescape_line(bi)?)?)
                };
                records.push(OpLogRecord {
                    seq,
                    txn,
                    statement,
                    before_image,
                });
            }
            other => {
                return Err(StorageError::Corrupt(format!(
                    "unknown op-log record kind '{other}'"
                )))
            }
        }
    }
    Ok(group_records(records, &rolled_back))
}

fn group_records(
    mut records: Vec<OpLogRecord>,
    rolled_back: &std::collections::HashSet<u64>,
) -> Vec<OpDelta> {
    records.sort_by_key(|r| r.seq);
    let mut out: Vec<OpDelta> = Vec::new();
    for rec in records {
        if rolled_back.contains(&rec.txn) {
            continue;
        }
        match out.last_mut() {
            Some(od) if od.txn == rec.txn => od.ops.push(rec),
            _ => out.push(OpDelta {
                txn: rec.txn,
                ops: vec![rec],
            }),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selfmaint::WarehouseProfile;
    use delta_engine::db::open_temp;

    fn setup(sink: OpLogSink) -> OpDeltaCapture {
        let db = open_temp("opd").unwrap();
        let mut s = db.session();
        s.execute("CREATE TABLE parts (id INT PRIMARY KEY, name VARCHAR, qty INT)")
            .unwrap();
        for i in 0..20 {
            s.execute(&format!(
                "INSERT INTO parts VALUES ({i}, 'p{i}', {})",
                i % 5
            ))
            .unwrap();
        }
        OpDeltaCapture::new(db.session(), sink).unwrap()
    }

    #[test]
    fn table_sink_captures_statements_with_txn_grouping() {
        let mut cap = setup(OpLogSink::Table("op_log".into()));
        cap.execute("INSERT INTO parts VALUES (100, 'new', 0)")
            .unwrap();
        cap.execute("BEGIN").unwrap();
        cap.execute("UPDATE parts SET qty = 9 WHERE qty = 1")
            .unwrap();
        cap.execute("DELETE FROM parts WHERE qty = 9").unwrap();
        cap.execute("COMMIT").unwrap();

        let db = cap.database().clone();
        let ods = collect_from_table(&db, "op_log").unwrap();
        assert_eq!(ods.len(), 2, "one autocommit txn + one explicit txn");
        assert_eq!(ods[0].ops.len(), 1);
        assert_eq!(ods[1].ops.len(), 2, "BEGIN..COMMIT grouped");
        assert!(matches!(ods[1].ops[0].statement, Statement::Update { .. }));
        assert!(matches!(ods[1].ops[1].statement, Statement::Delete { .. }));
        // The operations really executed too.
        assert_eq!(db.row_count("parts").unwrap(), 21 - 4);
    }

    #[test]
    fn op_size_is_independent_of_rows_affected() {
        let mut cap = setup(OpLogSink::Table("op_log".into()));
        // This delete touches 4 rows; its op-delta is one ~40-byte statement.
        cap.execute("DELETE FROM parts WHERE qty = 2").unwrap();
        let db = cap.database().clone();
        let ods = collect_from_table(&db, "op_log").unwrap();
        assert_eq!(ods.len(), 1);
        assert_eq!(ods[0].ops.len(), 1);
        assert!(ods[0].wire_size() < 100);
    }

    #[test]
    fn table_sink_is_transactional_with_rollback() {
        let mut cap = setup(OpLogSink::Table("op_log".into()));
        cap.execute("BEGIN").unwrap();
        cap.execute("INSERT INTO parts VALUES (200, 'doomed', 0)")
            .unwrap();
        cap.execute("ROLLBACK").unwrap();
        let db = cap.database().clone();
        assert_eq!(
            db.row_count("op_log").unwrap(),
            0,
            "log rows rolled back with the txn"
        );
        assert!(collect_from_table(&db, "op_log").unwrap().is_empty());
    }

    #[test]
    fn file_sink_rollback_marker_drops_txn() {
        let db = open_temp("opdfile").unwrap();
        db.session()
            .execute("CREATE TABLE parts (id INT PRIMARY KEY, name VARCHAR, qty INT)")
            .unwrap();
        let path = db.options().dir.join("op.log");
        let mut cap = OpDeltaCapture::new(db.session(), OpLogSink::File(path.clone())).unwrap();
        cap.execute("INSERT INTO parts VALUES (1, 'kept', 0)")
            .unwrap();
        cap.execute("BEGIN").unwrap();
        cap.execute("INSERT INTO parts VALUES (2, 'doomed', 0)")
            .unwrap();
        cap.execute("ROLLBACK").unwrap();

        let ods = collect_from_file(&path).unwrap();
        assert_eq!(ods.len(), 1, "rolled-back txn dropped by the marker");
        match &ods[0].ops[0].statement {
            Statement::Insert { rows, .. } => {
                assert_eq!(rows[0][1], Expr::Literal(Value::Str("kept".into())));
            }
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn failed_autocommit_statement_is_not_captured_as_committed() {
        let mut cap = setup(OpLogSink::Table("op_log".into()));
        // Duplicate key → the statement fails → the log insert rolls back.
        let err = cap.execute("INSERT INTO parts VALUES (0, 'dup', 0)");
        assert!(err.is_err());
        let db = cap.database().clone();
        assert!(collect_from_table(&db, "op_log").unwrap().is_empty());
    }

    #[test]
    fn now_is_frozen_at_capture() {
        let mut cap = setup(OpLogSink::Table("op_log".into()));
        cap.execute("UPDATE parts SET qty = 1 WHERE id < NOW()")
            .unwrap();
        let db = cap.database().clone();
        let ods = collect_from_table(&db, "op_log").unwrap();
        let stmt = &ods[0].ops[0].statement;
        match stmt {
            Statement::Update { predicate, .. } => {
                assert!(
                    !predicate.as_ref().unwrap().contains_now(),
                    "NOW() must be frozen"
                );
            }
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn analyzer_attaches_before_images_when_needed() {
        let db = open_temp("opd-hybrid").unwrap();
        let mut s = db.session();
        s.execute("CREATE TABLE orders (id INT PRIMARY KEY, status VARCHAR, customer VARCHAR)")
            .unwrap();
        s.execute("INSERT INTO orders VALUES (1, 'open', 'acme'), (2, 'open', 'bob'), (3, 'open', 'acme')")
            .unwrap();
        drop(s);
        let analyzer = SelfMaintAnalyzer::new(
            WarehouseProfile::new().mirror_columns("orders", &["id", "status"]),
        );
        let mut cap = OpDeltaCapture::new(db.session(), OpLogSink::Table("op_log".into()))
            .unwrap()
            .with_analyzer(analyzer);
        // Predicate on an unmirrored column: the hybrid must carry before images.
        cap.execute("DELETE FROM orders WHERE customer = 'acme'")
            .unwrap();
        // Predicate on a mirrored column: op only.
        cap.execute("UPDATE orders SET status = 'closed' WHERE id = 2")
            .unwrap();

        let ods = collect_from_table(&db, "op_log").unwrap();
        assert_eq!(ods.len(), 2);
        let bi = ods[0].ops[0]
            .before_image
            .as_ref()
            .expect("hybrid has before image");
        assert_eq!(bi.len(), 2, "both affected rows' before images");
        assert!(bi.records.iter().all(|r| r.op == DeltaOp::Delete));
        assert!(ods[1].ops[0].before_image.is_none());
    }

    #[test]
    fn analyzer_skips_irrelevant_statements() {
        let db = open_temp("opd-skip").unwrap();
        db.session()
            .execute("CREATE TABLE audit (id INT PRIMARY KEY)")
            .unwrap();
        let analyzer = SelfMaintAnalyzer::new(WarehouseProfile::new().mirror_full("parts"));
        let mut cap = OpDeltaCapture::new(db.session(), OpLogSink::Table("op_log".into()))
            .unwrap()
            .with_analyzer(analyzer);
        cap.execute("INSERT INTO audit VALUES (1)").unwrap();
        assert_eq!(cap.captured_count(), 0);
        let db = cap.database().clone();
        assert_eq!(
            db.row_count("audit").unwrap(),
            1,
            "executed but not captured"
        );
    }

    #[test]
    fn reads_pass_through_uncaptured() {
        let mut cap = setup(OpLogSink::Table("op_log".into()));
        let r = cap.execute("SELECT * FROM parts WHERE id = 1").unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(cap.captured_count(), 0);
    }

    #[test]
    fn collected_statements_replay_to_identical_state() {
        // The end-to-end property §4 relies on: replaying the op log on a
        // copy of the original database yields the same final state.
        let mut cap = setup(OpLogSink::Table("op_log".into()));
        cap.execute("INSERT INTO parts VALUES (50, 'fresh', 1)")
            .unwrap();
        cap.execute("BEGIN").unwrap();
        cap.execute("UPDATE parts SET qty = qty + 10 WHERE qty >= 3")
            .unwrap();
        cap.execute("DELETE FROM parts WHERE qty = 2").unwrap();
        cap.execute("COMMIT").unwrap();
        let db = cap.database().clone();

        // Replica starts from the same seed (ids 0..20, same values).
        let replica = open_temp("opd-replica").unwrap();
        let mut rs = replica.session();
        rs.execute("CREATE TABLE parts (id INT PRIMARY KEY, name VARCHAR, qty INT)")
            .unwrap();
        for i in 0..20 {
            rs.execute(&format!(
                "INSERT INTO parts VALUES ({i}, 'p{i}', {})",
                i % 5
            ))
            .unwrap();
        }
        for od in collect_from_table(&db, "op_log").unwrap() {
            rs.execute("BEGIN").unwrap();
            for op in &od.ops {
                rs.execute_stmt(&op.statement).unwrap();
            }
            rs.execute("COMMIT").unwrap();
        }
        let key = |r: &delta_storage::Row| r.values()[0].as_int().unwrap();
        let mut a: Vec<_> = db
            .scan_table("parts")
            .unwrap()
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        let mut b: Vec<_> = replica
            .scan_table("parts")
            .unwrap()
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
    }

    #[test]
    fn huge_statements_chunk_and_reassemble() {
        // A multi-row INSERT whose text far exceeds a heap page must still
        // log transactionally (LOB-style chunking) and collect intact.
        let db = open_temp("opd-chunk").unwrap();
        db.session()
            .execute("CREATE TABLE big (id INT PRIMARY KEY, filler VARCHAR)")
            .unwrap();
        let mut cap = OpDeltaCapture::new(db.session(), OpLogSink::Table("op_log".into())).unwrap();
        let values: Vec<String> = (0..2000)
            .map(|i| format!("({i}, 'filler-text-for-row-{i}-padding-padding')"))
            .collect();
        let sql = format!("INSERT INTO big VALUES {}", values.join(", "));
        assert!(
            sql.len() > 5 * CHUNK_BYTES,
            "statement must span many chunks"
        );
        cap.execute(&sql).unwrap();
        let db = cap.database().clone();
        assert!(
            db.row_count("op_log").unwrap() > 5,
            "payload should occupy multiple chunk rows"
        );
        let ods = collect_from_table(&db, "op_log").unwrap();
        assert_eq!(ods.len(), 1);
        match &ods[0].ops[0].statement {
            Statement::Insert { rows, .. } => assert_eq!(rows.len(), 2000),
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn adopts_a_transaction_opened_before_wrapping() {
        let db = open_temp("opd-adopt").unwrap();
        let mut pre = db.session();
        pre.execute("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
        pre.execute("BEGIN").unwrap();
        // Hand the already-in-txn session to the wrapper.
        let mut cap = OpDeltaCapture::new(pre, OpLogSink::Table("op_log".into())).unwrap();
        cap.execute("INSERT INTO t VALUES (1)").unwrap();
        cap.execute("INSERT INTO t VALUES (2)").unwrap();
        cap.execute("COMMIT").unwrap();
        let db2 = cap.database().clone();
        let ods = collect_from_table(&db2, "op_log").unwrap();
        assert_eq!(ods.len(), 1, "adopted txn groups both writes");
        assert_eq!(ods[0].ops.len(), 2);
    }

    #[test]
    fn clear_table_empties_the_log() {
        let mut cap = setup(OpLogSink::Table("op_log".into()));
        cap.execute("INSERT INTO parts VALUES (100, 'x', 0)")
            .unwrap();
        let db = cap.database().clone();
        assert_eq!(clear_table(&db, "op_log").unwrap(), 1);
        assert!(collect_from_table(&db, "op_log").unwrap().is_empty());
    }
}
