//! Archive-log delta extraction (§3.1.4).
//!
//! Reads the engine's redo log (archived + resident segments) and turns the
//! committed records into value deltas. Matching the paper's analysis:
//!
//! * near-zero impact on source transactions (the log is written anyway —
//!   only *reading* it is extra, off the critical path);
//! * captures every state change, with transaction context;
//! * requires archive mode, a same-product log format (checked), and — when
//!   used for log *shipping* — an identical destination schema;
//! * is all-or-nothing: a recovery-manager-style apply can only recreate the
//!   source table, not transform it (transformations need the value-delta
//!   form this extractor produces).

use std::collections::HashMap;
use std::path::PathBuf;

use delta_engine::db::Database;
use delta_engine::wal::{LogRecord, Lsn};
use delta_engine::{EngineError, EngineResult};

use crate::model::{DeltaOp, ValueDelta, ValueDeltaRecord};

/// Incremental archive-log extractor. Tracks the last LSN it has consumed.
#[derive(Debug, Clone, Default)]
pub struct LogExtractor {
    /// Everything at or below this LSN has been extracted already.
    pub watermark: Lsn,
    /// Restrict extraction to these tables (empty = all user tables).
    pub tables: Vec<String>,
}

impl LogExtractor {
    /// Create an extractor with no table filter.
    pub fn new() -> LogExtractor {
        LogExtractor::default()
    }

    /// Restrict extraction to `tables`.
    pub fn for_tables(tables: &[&str]) -> LogExtractor {
        LogExtractor {
            watermark: 0,
            tables: tables.iter().map(|s| s.to_string()).collect(),
        }
    }

    fn wants(&self, table: &str) -> bool {
        self.tables.is_empty() || self.tables.iter().any(|t| t == table)
    }

    /// Extract the committed changes past the watermark, grouped per table,
    /// and advance the watermark. Requires archive mode (otherwise recycled
    /// segments would silently hole the stream).
    pub fn extract(&mut self, db: &Database) -> EngineResult<Vec<ValueDelta>> {
        if !db.wal().archive_mode() {
            return Err(EngineError::Invalid(
                "log-based extraction requires archive mode (redo segments must not be recycled)"
                    .into(),
            ));
        }
        let records = db.wal().read_from(self.watermark + 1)?;
        let committed: std::collections::HashSet<_> = records
            .iter()
            .filter_map(|(_, r)| match r {
                LogRecord::Commit { txn } => Some(*txn),
                _ => None,
            })
            .collect();
        let mut per_table: HashMap<String, ValueDelta> = HashMap::new();
        let mut max_lsn = self.watermark;
        for (lsn, rec) in &records {
            max_lsn = max_lsn.max(*lsn);
            let Some(table) = rec.table().map(|t| t.to_string()) else {
                continue;
            };
            if !self.wants(&table) {
                continue;
            }
            let Some(txn) = rec.txn() else { continue };
            if !committed.contains(&txn) {
                // In-flight at the end of the log: leave it for next time by
                // not advancing the watermark past the earliest such record.
                continue;
            }
            let entry = per_table.entry(table.clone()).or_insert_with(|| {
                let schema = db
                    .table(&table)
                    .map(|m| m.schema.clone())
                    .unwrap_or_else(|_| delta_storage::Schema::new(vec![]).unwrap());
                ValueDelta::new(table.clone(), schema)
            });
            match rec {
                LogRecord::Insert { row, .. } => entry.records.push(ValueDeltaRecord {
                    op: DeltaOp::Insert,
                    txn: txn.0,
                    row: row.clone(),
                }),
                LogRecord::Delete { before, .. } => entry.records.push(ValueDeltaRecord {
                    op: DeltaOp::Delete,
                    txn: txn.0,
                    row: before.clone(),
                }),
                LogRecord::Update { before, after, .. } => {
                    entry.records.push(ValueDeltaRecord {
                        op: DeltaOp::UpdateBefore,
                        txn: txn.0,
                        row: before.clone(),
                    });
                    entry.records.push(ValueDeltaRecord {
                        op: DeltaOp::UpdateAfter,
                        txn: txn.0,
                        row: after.clone(),
                    });
                }
                _ => {}
            }
        }
        self.watermark = max_lsn;
        let mut out: Vec<ValueDelta> = per_table.into_values().filter(|v| !v.is_empty()).collect();
        out.sort_by(|a, b| a.table.cmp(&b.table));
        Ok(out)
    }

    /// Paths of archived segments ready to ship (the file-level transport of
    /// classic log shipping).
    pub fn shippable_segments(db: &Database) -> EngineResult<Vec<PathBuf>> {
        db.wal().archived_segments()
    }
}

/// Outcome of one [`ResilientLogExtractor::extract`] round.
#[derive(Debug, Clone, Default)]
pub struct ResilientExtract {
    /// Extracted deltas, per table.
    pub deltas: Vec<ValueDelta>,
    /// Tables whose deltas came from snapshot differencing because the log
    /// could not be read; empty on the happy path. Degraded deltas carry no
    /// transaction context (snapshots observe only final states).
    pub degraded: Vec<String>,
    /// Corrupt archived segments moved aside (renamed `*.corrupt`) so later
    /// rounds read past them instead of failing forever.
    pub quarantined_segments: Vec<PathBuf>,
}

/// A [`LogExtractor`] that *degrades instead of wedging*: when the redo log
/// turns out to be unreadable (a corrupt archived segment), extraction falls
/// back to per-table snapshot differencing against baselines captured at the
/// previous extraction point, quarantines the corrupt segment, and
/// fast-forwards the log watermark past the damage. The delta stream stays
/// complete — it just temporarily loses transaction context, exactly the
/// trade-off of the paper's snapshot method (§3.1.2) versus the log method
/// (§3.1.4).
///
/// The caller must quiesce writes to the tracked tables across each
/// `extract` call (the usual contract for any snapshot-based extractor):
/// the baseline refreshed after a round must describe the state as of the
/// advanced watermark.
#[derive(Debug)]
pub struct ResilientLogExtractor {
    inner: LogExtractor,
    tables: Vec<String>,
    baseline_dir: PathBuf,
    primed: bool,
}

impl ResilientLogExtractor {
    /// Track `tables`, keeping snapshot baselines under `baseline_dir`.
    pub fn new(
        baseline_dir: impl Into<PathBuf>,
        tables: &[&str],
    ) -> EngineResult<ResilientLogExtractor> {
        let baseline_dir = baseline_dir.into();
        std::fs::create_dir_all(&baseline_dir)?;
        Ok(ResilientLogExtractor {
            inner: LogExtractor::for_tables(tables),
            tables: tables.iter().map(|s| s.to_string()).collect(),
            baseline_dir,
            primed: false,
        })
    }

    /// The log watermark (everything at or below it has been extracted).
    pub fn watermark(&self) -> Lsn {
        self.inner.watermark
    }

    fn baseline_path(&self, table: &str) -> PathBuf {
        self.baseline_dir.join(format!("{table}.baseline"))
    }

    /// Capture the initial baselines. Call once, quiescent, before the first
    /// `extract`; the baselines must describe the state the watermark
    /// (initially 0, i.e. "nothing extracted") refers to — typically right
    /// after the tables are created, before any tracked changes.
    pub fn prime(&mut self, db: &Database) -> EngineResult<()> {
        for t in &self.tables {
            crate::snapshot::take_snapshot(db, t, self.baseline_path(t))?;
        }
        self.primed = true;
        Ok(())
    }

    /// Extract committed changes past the watermark — from the log when it
    /// is readable, from snapshot diffs when it is not.
    pub fn extract(&mut self, db: &Database) -> EngineResult<ResilientExtract> {
        match self.inner.extract(db) {
            Ok(deltas) => {
                self.refresh_baselines(db)?;
                Ok(ResilientExtract {
                    deltas,
                    ..Default::default()
                })
            }
            Err(EngineError::Storage(delta_storage::StorageError::Corrupt(_))) => self.degrade(db),
            Err(e) => Err(e),
        }
    }

    fn refresh_baselines(&self, db: &Database) -> EngineResult<()> {
        for t in &self.tables {
            crate::snapshot::take_snapshot(db, t, self.baseline_path(t))?;
        }
        Ok(())
    }

    /// The fallback: quarantine unreadable archived segments, diff every
    /// tracked table against its baseline, and fast-forward the watermark
    /// past the damage.
    fn degrade(&mut self, db: &Database) -> EngineResult<ResilientExtract> {
        if !self.primed {
            return Err(EngineError::Invalid(
                "resilient extraction hit a corrupt log before prime() captured baselines".into(),
            ));
        }
        let mut out = ResilientExtract::default();
        // Move unreadable archived segments aside so later rounds don't trip
        // over the same bytes. (A corrupt *resident* segment belongs to the
        // engine's recovery path and is left alone; we degrade around it.)
        for p in db.wal().archived_segments()? {
            if delta_engine::wal::read_segment(&p).is_err() {
                let quarantined = p.with_extension("wal.corrupt");
                std::fs::rename(&p, &quarantined)?;
                out.quarantined_segments.push(quarantined);
            }
        }
        for t in &self.tables {
            let meta = db.table(t)?;
            let key_cols = meta.schema.primary_key_indices();
            let current = self.baseline_dir.join(format!("{t}.current"));
            crate::snapshot::take_snapshot(db, t, &current)?;
            let baseline = self.baseline_path(t);
            let (vd, _stats) = crate::snapshot::diff_snapshots(
                t,
                &meta.schema,
                &key_cols,
                &baseline,
                &current,
                crate::snapshot::DiffAlgorithm::SortMerge { run_size: 1024 },
            )
            .map_err(EngineError::Storage)?;
            // The current snapshot becomes the baseline for the next round.
            std::fs::rename(&current, &baseline)?;
            out.degraded.push(t.clone());
            if !vd.is_empty() {
                out.deltas.push(vd);
            }
        }
        // Everything up to the log head is now covered by the diffs.
        self.inner.watermark = db.wal().next_lsn().saturating_sub(1);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delta_engine::db::{Database, DbOptions};
    use delta_storage::Value;
    use std::sync::Arc;

    fn open(archive: bool, label: &str) -> Arc<Database> {
        let dir = std::env::temp_dir().join(format!(
            "delta-logx-{}-{:?}-{label}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Database::open(DbOptions::new(dir).archive(archive)).unwrap()
    }

    fn setup(label: &str) -> Arc<Database> {
        let db = open(true, label);
        let mut s = db.session();
        s.execute("CREATE TABLE parts (id INT PRIMARY KEY, name VARCHAR)")
            .unwrap();
        db
    }

    #[test]
    fn requires_archive_mode() {
        let db = open(false, "noarch");
        let mut x = LogExtractor::new();
        assert!(x.extract(&db).is_err());
    }

    #[test]
    fn extracts_committed_changes_with_txn_context() {
        let db = setup("basic");
        let mut s = db.session();
        s.execute("INSERT INTO parts VALUES (1, 'a')").unwrap();
        s.execute("UPDATE parts SET name = 'b' WHERE id = 1")
            .unwrap();
        s.execute("DELETE FROM parts WHERE id = 1").unwrap();
        let mut x = LogExtractor::new();
        let deltas = x.extract(&db).unwrap();
        assert_eq!(deltas.len(), 1);
        let vd = &deltas[0];
        let ops: Vec<DeltaOp> = vd.records.iter().map(|r| r.op).collect();
        assert_eq!(
            ops,
            vec![
                DeltaOp::Insert,
                DeltaOp::UpdateBefore,
                DeltaOp::UpdateAfter,
                DeltaOp::Delete
            ]
        );
        assert!(vd.has_txn_context());
    }

    #[test]
    fn watermark_makes_extraction_incremental() {
        let db = setup("incr");
        let mut s = db.session();
        s.execute("INSERT INTO parts VALUES (1, 'a')").unwrap();
        let mut x = LogExtractor::new();
        assert_eq!(x.extract(&db).unwrap()[0].len(), 1);
        // Nothing new → nothing extracted.
        assert!(x.extract(&db).unwrap().is_empty());
        s.execute("INSERT INTO parts VALUES (2, 'b')").unwrap();
        let deltas = x.extract(&db).unwrap();
        assert_eq!(deltas[0].len(), 1);
        assert_eq!(deltas[0].records[0].row.values()[0], Value::Int(2));
    }

    #[test]
    fn rolled_back_work_never_appears() {
        let db = setup("rb");
        let mut s = db.session();
        s.execute("BEGIN").unwrap();
        s.execute("INSERT INTO parts VALUES (1, 'doomed')").unwrap();
        s.execute("ROLLBACK").unwrap();
        let mut x = LogExtractor::new();
        assert!(x.extract(&db).unwrap().is_empty());
    }

    #[test]
    fn table_filter_restricts_extraction() {
        let db = setup("filter");
        let mut s = db.session();
        s.execute("CREATE TABLE other (id INT PRIMARY KEY)")
            .unwrap();
        s.execute("INSERT INTO parts VALUES (1, 'a')").unwrap();
        s.execute("INSERT INTO other VALUES (9)").unwrap();
        let mut x = LogExtractor::for_tables(&["other"]);
        let deltas = x.extract(&db).unwrap();
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].table, "other");
    }

    #[test]
    fn survives_checkpoints_because_of_archiving() {
        let db = setup("ckpt");
        let mut s = db.session();
        for i in 0..200 {
            s.execute(&format!("INSERT INTO parts VALUES ({i}, 'x')"))
                .unwrap();
        }
        db.checkpoint().unwrap();
        for i in 200..210 {
            s.execute(&format!("INSERT INTO parts VALUES ({i}, 'y')"))
                .unwrap();
        }
        let mut x = LogExtractor::new();
        let deltas = x.extract(&db).unwrap();
        assert_eq!(
            deltas[0].len(),
            210,
            "pre-checkpoint changes still visible via archive"
        );
        assert!(!LogExtractor::shippable_segments(&db).unwrap().is_empty());
    }

    #[test]
    fn corrupt_archive_degrades_to_snapshot_diff_then_recovers() {
        let db = setup("degrade");
        let dir = std::env::temp_dir().join(format!(
            "delta-logx-baselines-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut x = ResilientLogExtractor::new(&dir, &["parts"]).unwrap();
        x.prime(&db).unwrap();

        let mut s = db.session();
        for i in 0..30 {
            s.execute(&format!("INSERT INTO parts VALUES ({i}, 'v{i}')"))
                .unwrap();
        }
        // Archive the segment holding those inserts, then vandalize it.
        db.checkpoint().unwrap();
        s.execute("INSERT INTO parts VALUES (100, 'after')")
            .unwrap();
        let archived = LogExtractor::shippable_segments(&db).unwrap();
        assert!(!archived.is_empty());
        let victim = &archived[0];
        let mut bytes = std::fs::read(victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(victim, &bytes).unwrap();

        // The plain extractor wedges on the corrupt segment...
        assert!(LogExtractor::new().extract(&db).is_err());

        // ...the resilient one degrades to a snapshot diff and still
        // produces the complete delta.
        let round = x.extract(&db).unwrap();
        assert_eq!(round.degraded, vec!["parts".to_string()]);
        assert_eq!(round.quarantined_segments.len(), 1);
        assert!(round.quarantined_segments[0].exists());
        assert_eq!(round.deltas.len(), 1);
        assert_eq!(
            round.deltas[0].len(),
            31,
            "all inserts recovered via snapshot diff"
        );
        assert!(
            round.deltas[0]
                .records
                .iter()
                .all(|r| r.op == DeltaOp::Insert),
            "baseline was empty, so every delta is an insert"
        );

        // With the damage quarantined, the next round reads the log again.
        s.execute("INSERT INTO parts VALUES (101, 'healed')")
            .unwrap();
        let round = x.extract(&db).unwrap();
        assert!(round.degraded.is_empty(), "log extraction is healthy again");
        assert_eq!(round.deltas.len(), 1);
        assert_eq!(round.deltas[0].len(), 1);
        assert_eq!(round.deltas[0].records[0].row.values()[0], Value::Int(101));
    }

    #[test]
    fn multi_table_changes_group_per_table() {
        let db = setup("multi");
        let mut s = db.session();
        s.execute("CREATE TABLE orders (id INT PRIMARY KEY)")
            .unwrap();
        s.execute("INSERT INTO parts VALUES (1, 'a')").unwrap();
        s.execute("INSERT INTO orders VALUES (100)").unwrap();
        s.execute("INSERT INTO parts VALUES (2, 'b')").unwrap();
        let mut x = LogExtractor::new();
        let deltas = x.extract(&db).unwrap();
        assert_eq!(deltas.len(), 2);
        assert_eq!(deltas[0].table, "orders");
        assert_eq!(deltas[1].table, "parts");
        assert_eq!(deltas[1].len(), 2);
    }
}
