//! Archive-log delta extraction (§3.1.4).
//!
//! Reads the engine's redo log (archived + resident segments) and turns the
//! committed records into value deltas. Matching the paper's analysis:
//!
//! * near-zero impact on source transactions (the log is written anyway —
//!   only *reading* it is extra, off the critical path);
//! * captures every state change, with transaction context;
//! * requires archive mode, a same-product log format (checked), and — when
//!   used for log *shipping* — an identical destination schema;
//! * is all-or-nothing: a recovery-manager-style apply can only recreate the
//!   source table, not transform it (transformations need the value-delta
//!   form this extractor produces).

use std::collections::HashMap;
use std::path::PathBuf;

use delta_engine::db::Database;
use delta_engine::wal::{LogRecord, Lsn};
use delta_engine::{EngineError, EngineResult};

use crate::model::{DeltaOp, ValueDelta, ValueDeltaRecord};

/// Incremental archive-log extractor. Tracks the last LSN it has consumed.
#[derive(Debug, Clone, Default)]
pub struct LogExtractor {
    /// Everything at or below this LSN has been extracted already.
    pub watermark: Lsn,
    /// Restrict extraction to these tables (empty = all user tables).
    pub tables: Vec<String>,
}

impl LogExtractor {
    /// Create an extractor with no table filter.
    pub fn new() -> LogExtractor {
        LogExtractor::default()
    }

    /// Restrict extraction to `tables`.
    pub fn for_tables(tables: &[&str]) -> LogExtractor {
        LogExtractor {
            watermark: 0,
            tables: tables.iter().map(|s| s.to_string()).collect(),
        }
    }

    fn wants(&self, table: &str) -> bool {
        self.tables.is_empty() || self.tables.iter().any(|t| t == table)
    }

    /// Extract the committed changes past the watermark, grouped per table,
    /// and advance the watermark. Requires archive mode (otherwise recycled
    /// segments would silently hole the stream).
    pub fn extract(&mut self, db: &Database) -> EngineResult<Vec<ValueDelta>> {
        let (deltas, new_watermark) = self.peek(db)?;
        self.watermark = new_watermark;
        Ok(deltas)
    }

    /// The read-only half of [`LogExtractor::extract`]: compute the
    /// committed changes past the watermark and the watermark they advance
    /// it to, without mutating the extractor. Callers that must publish the
    /// deltas before the advance is safe (staged extraction) peek first and
    /// assign the watermark only after the publish succeeds.
    pub fn peek(&self, db: &Database) -> EngineResult<(Vec<ValueDelta>, Lsn)> {
        if !db.wal().archive_mode() {
            return Err(EngineError::Invalid(
                "log-based extraction requires archive mode (redo segments must not be recycled)"
                    .into(),
            ));
        }
        let records = db.wal().read_from(self.watermark + 1)?;
        let committed: std::collections::HashSet<_> = records
            .iter()
            .filter_map(|(_, r)| match r {
                LogRecord::Commit { txn } => Some(*txn),
                _ => None,
            })
            .collect();
        let mut per_table: HashMap<String, ValueDelta> = HashMap::new();
        let mut max_lsn = self.watermark;
        for (lsn, rec) in &records {
            max_lsn = max_lsn.max(*lsn);
            let Some(table) = rec.table().map(|t| t.to_string()) else {
                continue;
            };
            if !self.wants(&table) {
                continue;
            }
            let Some(txn) = rec.txn() else { continue };
            if !committed.contains(&txn) {
                // In-flight at the end of the log: leave it for next time by
                // not advancing the watermark past the earliest such record.
                continue;
            }
            let entry = per_table.entry(table.clone()).or_insert_with(|| {
                let schema = db
                    .table(&table)
                    .map(|m| m.schema.clone())
                    .unwrap_or_else(|_| delta_storage::Schema::new(vec![]).unwrap());
                ValueDelta::new(table.clone(), schema)
            });
            match rec {
                LogRecord::Insert { row, .. } => entry.records.push(ValueDeltaRecord {
                    op: DeltaOp::Insert,
                    txn: txn.0,
                    row: row.clone(),
                }),
                LogRecord::Delete { before, .. } => entry.records.push(ValueDeltaRecord {
                    op: DeltaOp::Delete,
                    txn: txn.0,
                    row: before.clone(),
                }),
                LogRecord::Update { before, after, .. } => {
                    entry.records.push(ValueDeltaRecord {
                        op: DeltaOp::UpdateBefore,
                        txn: txn.0,
                        row: before.clone(),
                    });
                    entry.records.push(ValueDeltaRecord {
                        op: DeltaOp::UpdateAfter,
                        txn: txn.0,
                        row: after.clone(),
                    });
                }
                _ => {}
            }
        }
        let mut out: Vec<ValueDelta> = per_table.into_values().filter(|v| !v.is_empty()).collect();
        out.sort_by(|a, b| a.table.cmp(&b.table));
        Ok((out, max_lsn))
    }

    /// Paths of archived segments ready to ship (the file-level transport of
    /// classic log shipping).
    pub fn shippable_segments(db: &Database) -> EngineResult<Vec<PathBuf>> {
        db.wal().archived_segments()
    }
}

/// Outcome of one [`ResilientLogExtractor::extract`] round.
#[derive(Debug, Clone, Default)]
pub struct ResilientExtract {
    /// Extracted deltas, per table.
    pub deltas: Vec<ValueDelta>,
    /// Tables whose deltas came from snapshot differencing because the log
    /// could not be read; empty on the happy path. Degraded deltas carry no
    /// transaction context (snapshots observe only final states).
    pub degraded: Vec<String>,
    /// Corrupt archived segments moved aside (renamed `*.corrupt`) so later
    /// rounds read past them instead of failing forever.
    pub quarantined_segments: Vec<PathBuf>,
}

/// One extraction round staged but not yet committed: the deltas are ready
/// to publish, the refreshed baselines sit in sibling `*.baseline.staged`
/// files, and the watermark advance is recorded but not applied. Publish the
/// deltas, then [`ResilientLogExtractor::commit`] (rename baselines into
/// place, advance the watermark) or [`ResilientLogExtractor::abort`] (delete
/// the staged files, leave the extractor untouched so the next round
/// re-extracts the same changes). This is what lets a publish that hits a
/// disk-full transport budget retry later with zero loss.
#[derive(Debug)]
pub struct StagedExtract {
    /// The round's outcome: deltas to publish plus degradation bookkeeping.
    pub outcome: ResilientExtract,
    /// True when the deltas came from snapshot differencing (coalesced: one
    /// net record per changed row, no transaction context).
    pub coalesced: bool,
    new_watermark: Lsn,
    /// `(staged, final)` baseline pairs renamed into place at commit.
    staged: Vec<(PathBuf, PathBuf)>,
}

/// A [`LogExtractor`] that *degrades instead of wedging*: when the redo log
/// turns out to be unreadable (a corrupt archived segment), extraction falls
/// back to per-table snapshot differencing against baselines captured at the
/// previous extraction point, quarantines the corrupt segment, and
/// fast-forwards the log watermark past the damage. The delta stream stays
/// complete — it just temporarily loses transaction context, exactly the
/// trade-off of the paper's snapshot method (§3.1.2) versus the log method
/// (§3.1.4).
///
/// The caller must quiesce writes to the tracked tables across each
/// `extract` call (the usual contract for any snapshot-based extractor):
/// the baseline refreshed after a round must describe the state as of the
/// advanced watermark.
#[derive(Debug)]
pub struct ResilientLogExtractor {
    inner: LogExtractor,
    tables: Vec<String>,
    baseline_dir: PathBuf,
    primed: bool,
    /// Set when corrupt segments were quarantined before a diff round
    /// committed. Quarantine removes the bytes from the log view, so until
    /// a snapshot diff lands, a fresh `peek` would see a clean-looking log
    /// with a silent gap — this flag forces every staged round to the diff
    /// path until one commits.
    diff_owed: bool,
}

impl ResilientLogExtractor {
    /// Track `tables`, keeping snapshot baselines under `baseline_dir`.
    pub fn new(
        baseline_dir: impl Into<PathBuf>,
        tables: &[&str],
    ) -> EngineResult<ResilientLogExtractor> {
        let baseline_dir = baseline_dir.into();
        std::fs::create_dir_all(&baseline_dir)?;
        Ok(ResilientLogExtractor {
            inner: LogExtractor::for_tables(tables),
            tables: tables.iter().map(|s| s.to_string()).collect(),
            baseline_dir,
            primed: false,
            diff_owed: false,
        })
    }

    /// The log watermark (everything at or below it has been extracted).
    pub fn watermark(&self) -> Lsn {
        self.inner.watermark
    }

    fn baseline_path(&self, table: &str) -> PathBuf {
        self.baseline_dir.join(format!("{table}.baseline"))
    }

    /// Capture the initial baselines. Call once, quiescent, before the first
    /// `extract`; the baselines must describe the state the watermark
    /// (initially 0, i.e. "nothing extracted") refers to — typically right
    /// after the tables are created, before any tracked changes.
    pub fn prime(&mut self, db: &Database) -> EngineResult<()> {
        for t in &self.tables {
            crate::snapshot::take_snapshot(db, t, self.baseline_path(t))?;
        }
        self.primed = true;
        Ok(())
    }

    /// Extract committed changes past the watermark — from the log when it
    /// is readable, from snapshot diffs when it is not — committing the
    /// round immediately. Equivalent to `stage` followed by `commit`; use
    /// the staged pair directly when a publish step sits between them.
    pub fn extract(&mut self, db: &Database) -> EngineResult<ResilientExtract> {
        let staged = self.stage(db)?;
        self.commit(staged)
    }

    /// Stage one extraction round without mutating durable extractor state:
    /// compute the deltas (from the log, or via snapshot diff when the log
    /// is unreadable), refresh baselines into `*.baseline.staged` siblings,
    /// and record — but do not apply — the watermark advance.
    pub fn stage(&mut self, db: &Database) -> EngineResult<StagedExtract> {
        if self.diff_owed {
            // A previous round quarantined segments and then aborted; the
            // log now has a silent gap, so the op path would under-extract.
            return self.stage_diff(db, ResilientExtract::default());
        }
        match self.inner.peek(db) {
            Ok((deltas, new_watermark)) => {
                let staged = self.stage_baselines(db)?;
                Ok(StagedExtract {
                    outcome: ResilientExtract {
                        deltas,
                        ..Default::default()
                    },
                    coalesced: false,
                    new_watermark,
                    staged,
                })
            }
            Err(EngineError::Storage(delta_storage::StorageError::Corrupt(_))) => {
                let mut out = ResilientExtract::default();
                self.quarantine_corrupt_segments(db, &mut out)?;
                self.diff_owed = true;
                self.stage_diff(db, out)
            }
            Err(e) => Err(e),
        }
    }

    /// Stage a *coalesced* round: skip the log entirely and diff every
    /// tracked table against its baseline, yielding at most one net record
    /// per changed row. This is the graceful-degradation path for transport
    /// backpressure — when the op-delta stream cannot fit in the queue's
    /// disk budget, the coalesced form is strictly smaller (per §3.1.2,
    /// snapshot diffs observe only final states) and covers the same
    /// changes, at the cost of transaction context.
    pub fn stage_coalesced(&mut self, db: &Database) -> EngineResult<StagedExtract> {
        self.stage_diff(db, ResilientExtract::default())
    }

    /// Apply a staged round: rename the staged baselines into place and
    /// advance the watermark. Call only after the round's deltas have been
    /// durably published.
    pub fn commit(&mut self, staged: StagedExtract) -> EngineResult<ResilientExtract> {
        for (from, to) in &staged.staged {
            std::fs::rename(from, to)?;
        }
        self.inner.watermark = staged.new_watermark;
        if staged.coalesced {
            // A committed diff covers everything up to its watermark,
            // including any gap left by quarantined segments.
            self.diff_owed = false;
        }
        Ok(staged.outcome)
    }

    /// Discard a staged round: delete the staged baseline files and leave
    /// the watermark and committed baselines untouched, so the next round
    /// re-extracts the same changes.
    pub fn abort(&self, staged: StagedExtract) {
        for (from, _) in &staged.staged {
            let _ = std::fs::remove_file(from);
        }
    }

    fn staged_baseline_path(&self, table: &str) -> PathBuf {
        self.baseline_dir.join(format!("{table}.baseline.staged"))
    }

    /// Snapshot every tracked table into its `.baseline.staged` sibling,
    /// cleaning up on failure so aborted stages leave no debris.
    fn stage_baselines(&self, db: &Database) -> EngineResult<Vec<(PathBuf, PathBuf)>> {
        let mut staged = Vec::with_capacity(self.tables.len());
        for t in &self.tables {
            let s = self.staged_baseline_path(t);
            if let Err(e) = crate::snapshot::take_snapshot(db, t, &s) {
                for (p, _) in &staged {
                    let _ = std::fs::remove_file(p);
                }
                return Err(e);
            }
            staged.push((s, self.baseline_path(t)));
        }
        Ok(staged)
    }

    /// Move unreadable archived segments aside so later rounds don't trip
    /// over the same bytes. (A corrupt *resident* segment belongs to the
    /// engine's recovery path and is left alone; we degrade around it.)
    /// Quarantine is repair, not extraction state — it happens at stage
    /// time and is not rolled back by `abort`.
    fn quarantine_corrupt_segments(
        &self,
        db: &Database,
        out: &mut ResilientExtract,
    ) -> EngineResult<()> {
        for p in db.wal().archived_segments()? {
            if delta_engine::wal::read_segment(&p).is_err() {
                let quarantined = p.with_extension("wal.corrupt");
                std::fs::rename(&p, &quarantined)?;
                out.quarantined_segments.push(quarantined);
            }
        }
        Ok(())
    }

    /// The snapshot-diff body shared by degradation and coalescing: stage a
    /// fresh snapshot of each table, diff it against the committed baseline,
    /// and record a watermark advance to the log head (the diffs cover
    /// everything up to it).
    fn stage_diff(
        &mut self,
        db: &Database,
        mut out: ResilientExtract,
    ) -> EngineResult<StagedExtract> {
        if !self.primed {
            return Err(EngineError::Invalid(
                "resilient extraction needs prime() to capture baselines before it can diff".into(),
            ));
        }
        let mut staged = Vec::with_capacity(self.tables.len());
        let fail = |staged: &[(PathBuf, PathBuf)], e: EngineError| {
            for (p, _) in staged {
                let _ = std::fs::remove_file(p);
            }
            Err(e)
        };
        for t in &self.tables {
            let meta = match db.table(t) {
                Ok(m) => m,
                Err(e) => return fail(&staged, e),
            };
            let key_cols = meta.schema.primary_key_indices();
            let current = self.staged_baseline_path(t);
            if let Err(e) = crate::snapshot::take_snapshot(db, t, &current) {
                return fail(&staged, e);
            }
            staged.push((current.clone(), self.baseline_path(t)));
            let diff = crate::snapshot::diff_snapshots(
                t,
                &meta.schema,
                &key_cols,
                &self.baseline_path(t),
                &current,
                crate::snapshot::DiffAlgorithm::SortMerge { run_size: 1024 },
            );
            let (vd, _stats) = match diff {
                Ok(v) => v,
                Err(e) => return fail(&staged, EngineError::Storage(e)),
            };
            out.degraded.push(t.clone());
            if !vd.is_empty() {
                out.deltas.push(vd);
            }
        }
        // Everything up to the log head is covered by the diffs.
        Ok(StagedExtract {
            outcome: out,
            coalesced: true,
            new_watermark: db.wal().next_lsn().saturating_sub(1),
            staged,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delta_engine::db::{Database, DbOptions};
    use delta_storage::Value;
    use std::sync::Arc;

    fn open(archive: bool, label: &str) -> Arc<Database> {
        let dir = std::env::temp_dir().join(format!(
            "delta-logx-{}-{:?}-{label}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Database::open(DbOptions::new(dir).archive(archive)).unwrap()
    }

    fn setup(label: &str) -> Arc<Database> {
        let db = open(true, label);
        let mut s = db.session();
        s.execute("CREATE TABLE parts (id INT PRIMARY KEY, name VARCHAR)")
            .unwrap();
        db
    }

    #[test]
    fn requires_archive_mode() {
        let db = open(false, "noarch");
        let mut x = LogExtractor::new();
        assert!(x.extract(&db).is_err());
    }

    #[test]
    fn extracts_committed_changes_with_txn_context() {
        let db = setup("basic");
        let mut s = db.session();
        s.execute("INSERT INTO parts VALUES (1, 'a')").unwrap();
        s.execute("UPDATE parts SET name = 'b' WHERE id = 1")
            .unwrap();
        s.execute("DELETE FROM parts WHERE id = 1").unwrap();
        let mut x = LogExtractor::new();
        let deltas = x.extract(&db).unwrap();
        assert_eq!(deltas.len(), 1);
        let vd = &deltas[0];
        let ops: Vec<DeltaOp> = vd.records.iter().map(|r| r.op).collect();
        assert_eq!(
            ops,
            vec![
                DeltaOp::Insert,
                DeltaOp::UpdateBefore,
                DeltaOp::UpdateAfter,
                DeltaOp::Delete
            ]
        );
        assert!(vd.has_txn_context());
    }

    #[test]
    fn watermark_makes_extraction_incremental() {
        let db = setup("incr");
        let mut s = db.session();
        s.execute("INSERT INTO parts VALUES (1, 'a')").unwrap();
        let mut x = LogExtractor::new();
        assert_eq!(x.extract(&db).unwrap()[0].len(), 1);
        // Nothing new → nothing extracted.
        assert!(x.extract(&db).unwrap().is_empty());
        s.execute("INSERT INTO parts VALUES (2, 'b')").unwrap();
        let deltas = x.extract(&db).unwrap();
        assert_eq!(deltas[0].len(), 1);
        assert_eq!(deltas[0].records[0].row.values()[0], Value::Int(2));
    }

    #[test]
    fn rolled_back_work_never_appears() {
        let db = setup("rb");
        let mut s = db.session();
        s.execute("BEGIN").unwrap();
        s.execute("INSERT INTO parts VALUES (1, 'doomed')").unwrap();
        s.execute("ROLLBACK").unwrap();
        let mut x = LogExtractor::new();
        assert!(x.extract(&db).unwrap().is_empty());
    }

    #[test]
    fn table_filter_restricts_extraction() {
        let db = setup("filter");
        let mut s = db.session();
        s.execute("CREATE TABLE other (id INT PRIMARY KEY)")
            .unwrap();
        s.execute("INSERT INTO parts VALUES (1, 'a')").unwrap();
        s.execute("INSERT INTO other VALUES (9)").unwrap();
        let mut x = LogExtractor::for_tables(&["other"]);
        let deltas = x.extract(&db).unwrap();
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].table, "other");
    }

    #[test]
    fn survives_checkpoints_because_of_archiving() {
        let db = setup("ckpt");
        let mut s = db.session();
        for i in 0..200 {
            s.execute(&format!("INSERT INTO parts VALUES ({i}, 'x')"))
                .unwrap();
        }
        db.checkpoint().unwrap();
        for i in 200..210 {
            s.execute(&format!("INSERT INTO parts VALUES ({i}, 'y')"))
                .unwrap();
        }
        let mut x = LogExtractor::new();
        let deltas = x.extract(&db).unwrap();
        assert_eq!(
            deltas[0].len(),
            210,
            "pre-checkpoint changes still visible via archive"
        );
        assert!(!LogExtractor::shippable_segments(&db).unwrap().is_empty());
    }

    #[test]
    fn corrupt_archive_degrades_to_snapshot_diff_then_recovers() {
        let db = setup("degrade");
        let dir = std::env::temp_dir().join(format!(
            "delta-logx-baselines-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut x = ResilientLogExtractor::new(&dir, &["parts"]).unwrap();
        x.prime(&db).unwrap();

        let mut s = db.session();
        for i in 0..30 {
            s.execute(&format!("INSERT INTO parts VALUES ({i}, 'v{i}')"))
                .unwrap();
        }
        // Archive the segment holding those inserts, then vandalize it.
        db.checkpoint().unwrap();
        s.execute("INSERT INTO parts VALUES (100, 'after')")
            .unwrap();
        let archived = LogExtractor::shippable_segments(&db).unwrap();
        assert!(!archived.is_empty());
        let victim = &archived[0];
        let mut bytes = std::fs::read(victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(victim, &bytes).unwrap();

        // The plain extractor wedges on the corrupt segment...
        assert!(LogExtractor::new().extract(&db).is_err());

        // ...the resilient one degrades to a snapshot diff and still
        // produces the complete delta.
        let round = x.extract(&db).unwrap();
        assert_eq!(round.degraded, vec!["parts".to_string()]);
        assert_eq!(round.quarantined_segments.len(), 1);
        assert!(round.quarantined_segments[0].exists());
        assert_eq!(round.deltas.len(), 1);
        assert_eq!(
            round.deltas[0].len(),
            31,
            "all inserts recovered via snapshot diff"
        );
        assert!(
            round.deltas[0]
                .records
                .iter()
                .all(|r| r.op == DeltaOp::Insert),
            "baseline was empty, so every delta is an insert"
        );

        // With the damage quarantined, the next round reads the log again.
        s.execute("INSERT INTO parts VALUES (101, 'healed')")
            .unwrap();
        let round = x.extract(&db).unwrap();
        assert!(round.degraded.is_empty(), "log extraction is healthy again");
        assert_eq!(round.deltas.len(), 1);
        assert_eq!(round.deltas[0].len(), 1);
        assert_eq!(round.deltas[0].records[0].row.values()[0], Value::Int(101));
    }

    fn baseline_dir(label: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "delta-logx-stage-{}-{:?}-{label}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn aborted_stage_re_extracts_the_same_deltas() {
        let db = setup("abort");
        let mut x = ResilientLogExtractor::new(baseline_dir("abort"), &["parts"]).unwrap();
        x.prime(&db).unwrap();
        let mut s = db.session();
        s.execute("INSERT INTO parts VALUES (1, 'a')").unwrap();

        let staged = x.stage(&db).unwrap();
        assert_eq!(staged.outcome.deltas.len(), 1);
        assert!(!staged.coalesced);
        x.abort(staged);
        assert_eq!(x.watermark(), 0, "abort leaves the watermark untouched");

        // Publish "failed"; the retry sees the exact same changes.
        let retry = x.stage(&db).unwrap();
        assert_eq!(retry.outcome.deltas.len(), 1);
        assert_eq!(retry.outcome.deltas[0].len(), 1);
        let done = x.commit(retry).unwrap();
        assert_eq!(done.deltas.len(), 1);
        assert!(x.watermark() > 0);

        // Committed round is consumed: nothing left to extract.
        let empty = x.stage(&db).unwrap();
        assert!(empty.outcome.deltas.is_empty());
        x.abort(empty);
        // No staged debris survives an abort.
        let leftover: Vec<_> = std::fs::read_dir(&x.baseline_dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".staged"))
            .collect();
        assert!(leftover.is_empty());
    }

    #[test]
    fn coalesced_stage_nets_op_deltas_into_final_states() {
        let db = setup("coalesce");
        let mut x = ResilientLogExtractor::new(baseline_dir("coalesce"), &["parts"]).unwrap();
        x.prime(&db).unwrap();
        let mut s = db.session();
        // Three ops on one row + one op on another: the op stream has 5
        // records (insert, before, after, insert, delete-never) — the
        // coalesced form has 2 (one net insert per surviving row).
        s.execute("INSERT INTO parts VALUES (1, 'a')").unwrap();
        s.execute("UPDATE parts SET name = 'b' WHERE id = 1")
            .unwrap();
        s.execute("INSERT INTO parts VALUES (2, 'c')").unwrap();

        let op_form = x.stage(&db).unwrap();
        assert_eq!(op_form.outcome.deltas[0].len(), 4, "op stream: 4 records");
        x.abort(op_form);

        let coalesced = x.stage_coalesced(&db).unwrap();
        assert!(coalesced.coalesced);
        assert_eq!(coalesced.outcome.degraded, vec!["parts".to_string()]);
        assert_eq!(
            coalesced.outcome.deltas[0].len(),
            2,
            "coalesced stream: one net record per changed row"
        );
        x.commit(coalesced).unwrap();

        // The commit advanced the watermark past the coalesced changes, so
        // the log path resumes cleanly afterwards.
        s.execute("INSERT INTO parts VALUES (3, 'd')").unwrap();
        let next = x.extract(&db).unwrap();
        assert!(next.degraded.is_empty());
        assert_eq!(next.deltas[0].len(), 1);
        assert_eq!(next.deltas[0].records[0].row.values()[0], Value::Int(3));
    }

    #[test]
    fn aborted_round_after_quarantine_still_owes_the_diff() {
        let db = setup("owed");
        let mut x = ResilientLogExtractor::new(baseline_dir("owed"), &["parts"]).unwrap();
        x.prime(&db).unwrap();
        let mut s = db.session();
        for i in 0..20 {
            s.execute(&format!("INSERT INTO parts VALUES ({i}, 'v')"))
                .unwrap();
        }
        db.checkpoint().unwrap();
        let victim = &LogExtractor::shippable_segments(&db).unwrap()[0];
        let mut bytes = std::fs::read(victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(victim, &bytes).unwrap();

        // Stage: corruption is quarantined, diff staged — then the publish
        // "fails" and the round aborts. The quarantine is not rolled back,
        // so the log now has a silent gap.
        let staged = x.stage(&db).unwrap();
        assert!(staged.coalesced);
        assert_eq!(staged.outcome.quarantined_segments.len(), 1);
        x.abort(staged);

        // The retry must NOT trust the (clean-looking, gapped) log: it owes
        // the snapshot diff until one commits.
        let retry = x.stage(&db).unwrap();
        assert!(retry.coalesced, "gap forces the diff path");
        assert_eq!(retry.outcome.deltas[0].len(), 20, "no rows lost");
        x.commit(retry).unwrap();

        // Once the diff lands, the log path resumes.
        s.execute("INSERT INTO parts VALUES (100, 'after')")
            .unwrap();
        let next = x.stage(&db).unwrap();
        assert!(!next.coalesced);
        assert_eq!(next.outcome.deltas[0].len(), 1);
        x.commit(next).unwrap();
    }

    #[test]
    fn multi_table_changes_group_per_table() {
        let db = setup("multi");
        let mut s = db.session();
        s.execute("CREATE TABLE orders (id INT PRIMARY KEY)")
            .unwrap();
        s.execute("INSERT INTO parts VALUES (1, 'a')").unwrap();
        s.execute("INSERT INTO orders VALUES (100)").unwrap();
        s.execute("INSERT INTO parts VALUES (2, 'b')").unwrap();
        let mut x = LogExtractor::new();
        let deltas = x.extract(&db).unwrap();
        assert_eq!(deltas.len(), 2);
        assert_eq!(deltas[0].table, "orders");
        assert_eq!(deltas[1].table, "parts");
        assert_eq!(deltas[1].len(), 2);
    }
}
