//! Self-maintainability analysis for Op-Delta (§4.1).
//!
//! The paper identifies *"sufficient conditions that Op-Delta alone is enough
//! to refresh the data warehouse (self-maintainability with respect to
//! Op-Delta), and for some cases, a hybrid between a partial value delta (the
//! before-image portion only) and the Op-Delta is necessary"*.
//!
//! Our reconstruction: the warehouse keeps a *mirror* of some columns of each
//! source table (full mirrors, column-projected mirrors, or none). An
//! operation can be replayed at the warehouse iff everything it reads — the
//! predicate's columns, and an UPDATE's right-hand-side columns — exists in
//! the mirror. If not, the capture layer must attach the before images of the
//! affected rows (the hybrid), from which the warehouse can still derive the
//! effect.

use std::collections::HashMap;

use delta_sql::ast::{Expr, Statement};

/// How much of a source table the warehouse mirrors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MirrorScope {
    /// Every column.
    Full,
    /// Only these columns.
    Columns(Vec<String>),
}

/// What the warehouse keeps, per source table.
#[derive(Debug, Clone, Default)]
pub struct WarehouseProfile {
    mirrored: HashMap<String, MirrorScope>,
}

impl WarehouseProfile {
    /// Create an empty profile (nothing mirrored yet).
    pub fn new() -> WarehouseProfile {
        WarehouseProfile::default()
    }

    /// Declare a fully mirrored table.
    pub fn mirror_full(mut self, table: impl Into<String>) -> WarehouseProfile {
        self.mirrored.insert(table.into(), MirrorScope::Full);
        self
    }

    /// Declare a column-projected mirror.
    pub fn mirror_columns(
        mut self,
        table: impl Into<String>,
        columns: &[&str],
    ) -> WarehouseProfile {
        self.mirrored.insert(
            table.into(),
            MirrorScope::Columns(columns.iter().map(|c| c.to_string()).collect()),
        );
        self
    }

    /// The scope for `table`, if mirrored at all.
    pub fn scope(&self, table: &str) -> Option<&MirrorScope> {
        self.mirrored.get(table)
    }

    fn covers(&self, table: &str, column: &str) -> bool {
        match self.mirrored.get(table) {
            Some(MirrorScope::Full) => true,
            Some(MirrorScope::Columns(cols)) => cols.iter().any(|c| c == column),
            None => false,
        }
    }
}

/// The analyzer's verdict for one statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MaintRequirement {
    /// The operation alone refreshes the warehouse (self-maintainable).
    OpOnly,
    /// The operation must be augmented with the before images of the rows it
    /// affects (the hybrid of §4.1). Lists the columns the mirror lacks.
    NeedsBeforeImage { missing_columns: Vec<String> },
    /// The statement cannot affect any mirrored data; nothing to ship.
    NotRelevant,
}

/// Decides, per captured statement, whether Op-Delta alone suffices.
#[derive(Debug, Clone, Default)]
pub struct SelfMaintAnalyzer {
    pub profile: WarehouseProfile,
}

impl SelfMaintAnalyzer {
    /// Create an analyzer over the given warehouse profile.
    pub fn new(profile: WarehouseProfile) -> SelfMaintAnalyzer {
        SelfMaintAnalyzer { profile }
    }

    /// Analyze one (already NOW-frozen) write statement.
    pub fn analyze(&self, stmt: &Statement) -> MaintRequirement {
        let Some(table) = stmt.table() else {
            return MaintRequirement::NotRelevant;
        };
        if self.profile.scope(table).is_none() {
            return MaintRequirement::NotRelevant;
        }
        match stmt {
            // An INSERT is always replayable: the statement carries every
            // value; the warehouse projects what it mirrors.
            Statement::Insert { .. } => MaintRequirement::OpOnly,
            Statement::Delete { predicate, .. } => {
                self.check_columns(table, predicate.iter().collect::<Vec<_>>())
            }
            Statement::Update {
                sets, predicate, ..
            } => {
                // If no SET target is mirrored and the predicate is
                // evaluable, the op cannot change mirrored data.
                let any_target_mirrored =
                    sets.iter().any(|(col, _)| self.profile.covers(table, col));
                let mut exprs: Vec<&Expr> = predicate.iter().collect();
                exprs.extend(sets.iter().map(|(_, e)| e));
                let verdict = self.check_columns(table, exprs);
                if !any_target_mirrored && verdict == MaintRequirement::OpOnly {
                    MaintRequirement::NotRelevant
                } else {
                    verdict
                }
            }
            _ => MaintRequirement::NotRelevant,
        }
    }

    fn check_columns(&self, table: &str, exprs: Vec<&Expr>) -> MaintRequirement {
        let mut missing = Vec::new();
        for e in exprs {
            for col in e.referenced_columns() {
                if !self.profile.covers(table, col) && !missing.iter().any(|m| m == col) {
                    missing.push(col.to_string());
                }
            }
        }
        if missing.is_empty() {
            MaintRequirement::OpOnly
        } else {
            MaintRequirement::NeedsBeforeImage {
                missing_columns: missing,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delta_sql::parser::parse_statement;

    fn analyzer() -> SelfMaintAnalyzer {
        SelfMaintAnalyzer::new(
            WarehouseProfile::new()
                .mirror_full("parts")
                .mirror_columns("orders", &["id", "status"]),
        )
    }

    fn analyze(sql: &str) -> MaintRequirement {
        analyzer().analyze(&parse_statement(sql).unwrap())
    }

    #[test]
    fn inserts_are_always_op_only() {
        assert_eq!(
            analyze("INSERT INTO parts VALUES (1, 'a')"),
            MaintRequirement::OpOnly
        );
        assert_eq!(
            analyze("INSERT INTO orders (id, status, hidden) VALUES (1, 'open', 'x')"),
            MaintRequirement::OpOnly
        );
    }

    #[test]
    fn full_mirror_makes_everything_op_only() {
        assert_eq!(
            analyze("UPDATE parts SET name = 'x' WHERE qty > 5 AND name <> 'y'"),
            MaintRequirement::OpOnly
        );
        assert_eq!(
            analyze("DELETE FROM parts WHERE qty < 0"),
            MaintRequirement::OpOnly
        );
    }

    #[test]
    fn partial_mirror_predicate_on_missing_column_needs_before_image() {
        match analyze("DELETE FROM orders WHERE customer = 'acme'") {
            MaintRequirement::NeedsBeforeImage { missing_columns } => {
                assert_eq!(missing_columns, vec!["customer"]);
            }
            other => panic!("expected hybrid, got {other:?}"),
        }
        match analyze("UPDATE orders SET status = 'closed' WHERE total > 100") {
            MaintRequirement::NeedsBeforeImage { missing_columns } => {
                assert_eq!(missing_columns, vec!["total"]);
            }
            other => panic!("expected hybrid, got {other:?}"),
        }
    }

    #[test]
    fn partial_mirror_covered_predicate_is_op_only() {
        assert_eq!(
            analyze("UPDATE orders SET status = 'closed' WHERE id = 7"),
            MaintRequirement::OpOnly
        );
        assert_eq!(
            analyze("DELETE FROM orders WHERE status = 'void'"),
            MaintRequirement::OpOnly
        );
    }

    #[test]
    fn update_of_unmirrored_columns_is_not_relevant() {
        assert_eq!(
            analyze("UPDATE orders SET internal_note = 'x' WHERE id = 1"),
            MaintRequirement::NotRelevant
        );
    }

    #[test]
    fn unmirrored_table_is_not_relevant() {
        assert_eq!(
            analyze("DELETE FROM audit_log WHERE ts < 100"),
            MaintRequirement::NotRelevant
        );
        assert_eq!(
            analyze("INSERT INTO audit_log VALUES (1)"),
            MaintRequirement::NotRelevant
        );
    }

    #[test]
    fn update_rhs_columns_count_as_reads() {
        // SET status = hidden reads an unmirrored column: hybrid needed.
        match analyze("UPDATE orders SET status = hidden WHERE id = 1") {
            MaintRequirement::NeedsBeforeImage { missing_columns } => {
                assert_eq!(missing_columns, vec!["hidden"]);
            }
            other => panic!("expected hybrid, got {other:?}"),
        }
    }

    #[test]
    fn missing_columns_are_deduplicated() {
        match analyze("DELETE FROM orders WHERE x > 1 AND x < 9 AND y = 2") {
            MaintRequirement::NeedsBeforeImage { missing_columns } => {
                assert_eq!(missing_columns, vec!["x", "y"]);
            }
            other => panic!("expected hybrid, got {other:?}"),
        }
    }
}
