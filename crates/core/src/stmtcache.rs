//! A bounded SQL parse cache for the apply hot path.
//!
//! Op-Delta shipping is textual: every statement crosses the transport as
//! canonical SQL (§4.1's ~70-byte operations) and must be re-parsed at the
//! warehouse. Generated OLTP workloads repeat a handful of statement shapes
//! with different literals — but the capture freezes literals into the text,
//! so *exact* repeats are still common (replays, re-drains, idempotent
//! retries) and even a text-keyed cache removes the parser from the steady
//! state. The cache is shared across batches by the pipeline.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use delta_sql::ast::Statement;
use delta_sql::parser::parse_statement;
use delta_storage::{StorageError, StorageResult};

/// Hit/miss counters of a [`StatementCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered without parsing.
    pub hits: u64,
    /// Lookups that fell through to the parser.
    pub misses: u64,
}

/// Entries kept before the map is wholesale cleared. A full clear (rather
/// than LRU bookkeeping) keeps the fast path to one hash lookup; the cache
/// simply re-warms, which costs one parse per distinct statement.
const CACHE_CAPACITY: usize = 4096;

/// A thread-safe parse cache keyed by exact SQL text.
#[derive(Default)]
pub struct StatementCache {
    map: Mutex<HashMap<String, Statement>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl StatementCache {
    /// An empty cache.
    pub fn new() -> StatementCache {
        StatementCache::default()
    }

    /// The parsed form of `sql`, from cache when possible. Parse failures
    /// are reported as corruption (shipped SQL was produced by our own
    /// serializer) and are never cached.
    pub fn get_or_parse(&self, sql: &str) -> StorageResult<Statement> {
        if let Some(stmt) = self.map.lock().get(sql) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(stmt.clone());
        }
        let parsed = parse_statement(sql)
            .map_err(|e| StorageError::Corrupt(format!("op-delta SQL: {e}")))?;
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut map = self.map.lock();
        if map.len() >= CACHE_CAPACITY {
            map.clear();
        }
        map.insert(sql.to_string(), parsed.clone());
        Ok(parsed)
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of cached statements.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// Whether the cache holds no statements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_sql_parses_once() {
        let cache = StatementCache::new();
        let a = cache.get_or_parse("INSERT INTO t VALUES (1, 2)").unwrap();
        let b = cache.get_or_parse("INSERT INTO t VALUES (1, 2)").unwrap();
        assert_eq!(a, b);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_sql_misses() {
        let cache = StatementCache::new();
        cache.get_or_parse("DELETE FROM t WHERE id = 1").unwrap();
        cache.get_or_parse("DELETE FROM t WHERE id = 2").unwrap();
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn parse_failure_is_an_error_and_not_cached() {
        let cache = StatementCache::new();
        assert!(cache.get_or_parse("NOT SQL AT ALL").is_err());
        assert!(cache.is_empty());
    }
}
