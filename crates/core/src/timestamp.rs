//! Timestamp-based delta extraction (§3.1.1, Tables 2–3).
//!
//! `SELECT * FROM t WHERE last_modified > <since>` — applicable only to
//! sources that "support time stamps naturally". Three output modes, matching
//! Table 2's rows:
//!
//! * **file output** — write the matching rows to an ASCII dump file;
//! * **table output** — insert them into a local delta table (full engine
//!   write path: WAL, buffer pool, locks — hence the 2–3× cost of Table 2);
//! * **table output + Export** — additionally run the Export utility on the
//!   delta table, as required to move it out of the source DBMS.
//!
//! Inherent limitations, reproduced faithfully and covered by tests:
//! the method sees only the *final* state of each changed row (intermediate
//! states are unobservable), it cannot see deletions at all, and it loses
//! the source transaction context.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

use delta_engine::db::Database;
use delta_engine::exec;
use delta_engine::lock::LockMode;
use delta_engine::{EngineError, EngineResult, TableOptions};
use delta_sql::ast::{BinOp, Expr};
use delta_storage::codec::ascii;
use delta_storage::{Row, Value};

use crate::model::{DeltaOp, ValueDelta, ValueDeltaRecord};

/// Timestamp-based extractor for one table.
#[derive(Debug, Clone)]
pub struct TimestampExtractor {
    pub table: String,
    pub ts_column: String,
}

impl TimestampExtractor {
    /// Create an extractor scanning `table` by its `ts_column` timestamps.
    pub fn new(table: impl Into<String>, ts_column: impl Into<String>) -> TimestampExtractor {
        TimestampExtractor {
            table: table.into(),
            ts_column: ts_column.into(),
        }
    }

    fn predicate(&self, since: i64) -> Expr {
        Expr::Binary {
            left: Box::new(Expr::Column(self.ts_column.clone())),
            op: BinOp::Gt,
            right: Box::new(Expr::Literal(Value::Timestamp(since))),
        }
    }

    /// Rows modified after `since` (the raw query both outputs share).
    fn matching(&self, db: &Database, since: i64) -> EngineResult<Vec<Row>> {
        let meta = db.table(&self.table)?;
        if meta.schema.column(&self.ts_column).is_none() {
            return Err(EngineError::NoSuchObject(format!(
                "{}.{}",
                self.table, self.ts_column
            )));
        }
        let mut txn = db.begin();
        db.lock_table(&mut txn, &self.table, LockMode::Shared)?;
        let pred = self.predicate(since);
        let result = exec::matching_rows(db, &meta, Some(&pred), db.now_micros())
            .map(|v| v.into_iter().map(|(_, r)| r).collect());
        db.commit(txn)?;
        result
    }

    /// Extract as an in-memory value delta (every record an after-image
    /// `Insert`, with no transaction context — the method cannot know it).
    pub fn extract(&self, db: &Database, since: i64) -> EngineResult<ValueDelta> {
        let meta = db.table(&self.table)?;
        let rows = self.matching(db, since)?;
        let mut vd = ValueDelta::new(&self.table, meta.schema.clone());
        vd.records
            .extend(rows.into_iter().map(|row| ValueDeltaRecord {
                op: DeltaOp::Insert,
                txn: 0,
                row,
            }));
        Ok(vd)
    }

    /// **File output**: write matching rows to an ASCII dump at `path`.
    /// Returns the number of rows extracted.
    pub fn extract_to_file(
        &self,
        db: &Database,
        since: i64,
        path: impl AsRef<Path>,
    ) -> EngineResult<u64> {
        let rows = self.matching(db, since)?;
        let mut out = BufWriter::new(File::create(path.as_ref())?);
        let mut n = 0u64;
        for row in &rows {
            writeln!(out, "{}", ascii::format_row(row))?;
            n += 1;
        }
        out.flush()?;
        Ok(n)
    }

    /// **Table output**: insert matching rows into the local delta table
    /// `target` (created with the source schema, sans constraints, if
    /// absent). Returns the number of rows extracted.
    pub fn extract_to_table(&self, db: &Database, since: i64, target: &str) -> EngineResult<u64> {
        let meta = db.table(&self.table)?;
        if db.table(target).is_err() {
            // Delta tables carry the source columns without keys/not-null.
            let cols = meta
                .schema
                .columns()
                .iter()
                .map(|c| delta_storage::Column::new(c.name.clone(), c.data_type))
                .collect();
            db.create_table(
                target,
                delta_storage::Schema::new(cols)?,
                TableOptions::default(),
            )?;
        }
        let target_meta = db.table(target)?;
        let rows = self.matching(db, since)?;
        let mut txn = db.begin();
        db.lock_table(&mut txn, target, LockMode::Exclusive)?;
        let now = db.now_micros();
        let result = (|| {
            let mut n = 0u64;
            for row in rows {
                db.insert_row(&mut txn, &target_meta, row, now, false, false)?;
                n += 1;
            }
            Ok(n)
        })();
        match result {
            Ok(n) => {
                db.commit(txn)?;
                Ok(n)
            }
            Err(e) => {
                db.abort(txn)?;
                Err(e)
            }
        }
    }

    /// **Table output + Export**: table output, then the Export utility on
    /// the delta table (Table 2's third row). Returns rows extracted.
    pub fn extract_to_table_and_export(
        &self,
        db: &Database,
        since: i64,
        target: &str,
        export_path: impl AsRef<Path>,
    ) -> EngineResult<u64> {
        let n = self.extract_to_table(db, since, target)?;
        delta_engine::util::export_table(db, target, export_path)?;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delta_engine::db::open_temp;

    fn setup() -> (std::sync::Arc<Database>, TimestampExtractor) {
        let db = open_temp("tsx").unwrap();
        let mut s = db.session();
        s.execute("CREATE TABLE parts (id INT PRIMARY KEY, name VARCHAR, last_modified TIMESTAMP)")
            .unwrap();
        for i in 0..10 {
            s.execute(&format!(
                "INSERT INTO parts (id, name) VALUES ({i}, 'p{i}')"
            ))
            .unwrap();
        }
        (db, TimestampExtractor::new("parts", "last_modified"))
    }

    #[test]
    fn extracts_only_rows_after_watermark() {
        let (db, x) = setup();
        let watermark = db.peek_clock();
        let mut s = db.session();
        s.execute("UPDATE parts SET name = 'changed' WHERE id < 3")
            .unwrap();
        s.execute("INSERT INTO parts (id, name) VALUES (100, 'new')")
            .unwrap();
        let vd = x.extract(&db, watermark).unwrap();
        assert_eq!(vd.len(), 4, "3 updates + 1 insert");
        assert!(vd.records.iter().all(|r| r.op == DeltaOp::Insert));
        assert!(!vd.has_txn_context(), "timestamp method loses txn context");
    }

    #[test]
    fn sees_only_final_state_of_multiply_updated_rows() {
        let (db, x) = setup();
        let watermark = db.peek_clock();
        let mut s = db.session();
        s.execute("UPDATE parts SET name = 'v1' WHERE id = 0")
            .unwrap();
        s.execute("UPDATE parts SET name = 'v2' WHERE id = 0")
            .unwrap();
        let vd = x.extract(&db, watermark).unwrap();
        assert_eq!(vd.len(), 1, "one row, not one per state change");
        assert_eq!(vd.records[0].row.values()[1], Value::Str("v2".into()));
    }

    #[test]
    fn cannot_observe_deletions() {
        let (db, x) = setup();
        let watermark = db.peek_clock();
        let mut s = db.session();
        s.execute("DELETE FROM parts WHERE id = 5").unwrap();
        let vd = x.extract(&db, watermark).unwrap();
        assert!(vd.is_empty(), "deleted rows are invisible to timestamps");
    }

    #[test]
    fn file_output_round_trips_through_loader_format() {
        let (db, x) = setup();
        let path = db.options().dir.join("delta.txt");
        let n = x.extract_to_file(&db, 0, &path).unwrap();
        assert_eq!(n, 10);
        let meta = db.table("parts").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let rows = ascii::read_rows(&mut text.as_bytes(), &meta.schema).unwrap();
        assert_eq!(rows.len(), 10);
    }

    #[test]
    fn table_output_creates_and_fills_delta_table() {
        let (db, x) = setup();
        let n = x.extract_to_table(&db, 0, "parts_tsdelta").unwrap();
        assert_eq!(n, 10);
        assert_eq!(db.row_count("parts_tsdelta").unwrap(), 10);
        // Re-extract appends (the client is responsible for truncation).
        let watermark = db.peek_clock();
        db.session()
            .execute("INSERT INTO parts (id, name) VALUES (55, 'x')")
            .unwrap();
        let n = x.extract_to_table(&db, watermark, "parts_tsdelta").unwrap();
        assert_eq!(n, 1);
        assert_eq!(db.row_count("parts_tsdelta").unwrap(), 11);
    }

    #[test]
    fn table_output_plus_export_produces_dump() {
        let (db, x) = setup();
        let path = db.options().dir.join("delta.exp");
        let n = x.extract_to_table_and_export(&db, 0, "d1", &path).unwrap();
        assert_eq!(n, 10);
        assert!(path.exists());
        assert!(std::fs::metadata(&path).unwrap().len() > 0);
    }

    #[test]
    fn missing_timestamp_column_is_an_error() {
        let (db, _) = setup();
        let bad = TimestampExtractor::new("parts", "nonexistent");
        assert!(bad.extract(&db, 0).is_err());
    }
}
