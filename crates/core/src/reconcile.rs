//! Reconciliation of deltas from replicated / distributed sources (§2.2).
//!
//! When COTS software replicates data across databases, low-level extraction
//! (triggers, logs) sees *one delta per replica* of the same business change.
//! Before shipping to the warehouse, those must be reconciled into one
//! authoritative stream — and, per the paper, non-serializable cross-replica
//! executions can make the replicas genuinely disagree, which reconciliation
//! must surface rather than paper over.
//!
//! Two reconciliation keys are supported, matching §3.1.3's discussion:
//!
//! * a **global transaction id** stamped by the integration layer (the
//!   "(impractical) mechanism" the paper mentions — supported because some
//!   deployments do have it), and
//! * **content matching**: replicas of the same change carry the same op and
//!   row images.
//!
//! Op-Delta largely sidesteps this: captured at the business-transaction
//! level there is only one authoritative operation per change (§4.1), which
//! `examples/reconciliation.rs` demonstrates.

use std::collections::HashMap;

use delta_storage::Row;

#[cfg(test)]
use crate::model::DeltaOp;
use crate::model::{ValueDelta, ValueDeltaRecord};

/// Identifies a source replica.
pub type SourceId = String;

/// How records from different replicas are recognized as the same change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconcileKey {
    /// Match on the (globally unique) transaction id carried by each record.
    GlobalTxnId,
    /// Match on (op, row images) content.
    Content,
}

/// A disagreement between replicas that claim to hold the same data.
#[derive(Debug, Clone, PartialEq)]
pub struct ReconcileConflict {
    /// The replica whose delta was kept (the authoritative one).
    pub kept_from: SourceId,
    /// The replica whose delta disagreed.
    pub conflicting_from: SourceId,
    /// The authoritative record.
    pub kept: ValueDeltaRecord,
    /// The record that disagreed with it (same key, different content).
    pub conflicting: ValueDeltaRecord,
}

/// Result of reconciling one table's deltas.
#[derive(Debug, Clone, PartialEq)]
pub struct Reconciled {
    /// The single authoritative delta stream.
    pub delta: ValueDelta,
    /// Replica records that matched an authoritative record and were dropped.
    pub duplicates_dropped: usize,
    /// Genuine disagreements (non-serializable executions, §2.1).
    pub conflicts: Vec<ReconcileConflict>,
}

/// Reconciler for one replicated table.
#[derive(Debug, Clone)]
pub struct Reconciler {
    /// The replica whose values win when replicas disagree.
    pub authoritative: SourceId,
    pub key: ReconcileKey,
}

impl Reconciler {
    /// Create a reconciler that prefers `authoritative` on key conflicts.
    pub fn new(authoritative: impl Into<SourceId>, key: ReconcileKey) -> Reconciler {
        Reconciler {
            authoritative: authoritative.into(),
            key,
        }
    }

    /// Reconcile per-replica deltas (each the extraction output of one
    /// replica) into one authoritative stream.
    ///
    /// Records from the authoritative replica are kept in order. A record
    /// from another replica is dropped if it matches an authoritative record
    /// (a replication echo), reported as a conflict if it shares a key but
    /// disagrees in content, and *kept* if the authoritative replica never
    /// saw its key (a change that only reached one replica).
    pub fn reconcile(&self, inputs: Vec<(SourceId, ValueDelta)>) -> Reconciled {
        let auth_delta = inputs
            .iter()
            .find(|(src, _)| *src == self.authoritative)
            .map(|(_, d)| d.clone());
        let Some(auth_delta) = auth_delta else {
            // No authoritative input: pass the first replica through intact
            // (better than silently dropping data) and flag nothing.
            let first = inputs.into_iter().next();
            return match first {
                Some((_, d)) => Reconciled {
                    delta: d,
                    duplicates_dropped: 0,
                    conflicts: Vec::new(),
                },
                None => Reconciled {
                    delta: ValueDelta::new("", delta_storage::Schema::new(vec![]).unwrap()),
                    duplicates_dropped: 0,
                    conflicts: Vec::new(),
                },
            };
        };

        // Index authoritative records by key.
        let mut by_key: HashMap<String, Vec<&ValueDeltaRecord>> = HashMap::new();
        for rec in &auth_delta.records {
            by_key.entry(self.key_of(rec)).or_default().push(rec);
        }

        let mut out = auth_delta.clone();
        let mut duplicates = 0usize;
        let mut conflicts = Vec::new();
        for (src, delta) in &inputs {
            if *src == self.authoritative {
                continue;
            }
            for rec in &delta.records {
                match by_key.get(&self.key_of(rec)) {
                    Some(auth_recs) => {
                        if auth_recs.iter().any(|a| self.same_content(a, rec)) {
                            duplicates += 1;
                        } else {
                            conflicts.push(ReconcileConflict {
                                kept_from: self.authoritative.clone(),
                                conflicting_from: src.clone(),
                                kept: auth_recs[0].clone(),
                                conflicting: rec.clone(),
                            });
                        }
                    }
                    None => {
                        // Only this replica saw the change: keep it.
                        out.records.push(rec.clone());
                    }
                }
            }
        }
        Reconciled {
            delta: out,
            duplicates_dropped: duplicates,
            conflicts,
        }
    }

    fn key_of(&self, rec: &ValueDeltaRecord) -> String {
        match self.key {
            ReconcileKey::GlobalTxnId => format!("txn:{}:{}", rec.txn, rec.op.code()),
            ReconcileKey::Content => content_key(rec),
        }
    }

    fn same_content(&self, a: &ValueDeltaRecord, b: &ValueDeltaRecord) -> bool {
        match self.key {
            // With txn-id keys, content must be compared separately.
            ReconcileKey::GlobalTxnId => a.op == b.op && rows_equal(&a.row, &b.row),
            // With content keys, sharing a key *is* content equality.
            ReconcileKey::Content => true,
        }
    }
}

fn rows_equal(a: &Row, b: &Row) -> bool {
    a == b
}

fn content_key(rec: &ValueDeltaRecord) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = write!(s, "{}|", rec.op.code());
    for v in rec.row.values() {
        let _ = write!(s, "{v}\u{1}");
    }
    s
}

/// Group a distributed (partitioned) set of per-partition deltas into one
/// coherent stream ordered by source transaction id — the "keep related
/// deltas coherent" requirement of §2.2's *Distribution* challenge.
pub fn merge_partitions(mut parts: Vec<ValueDelta>) -> Option<ValueDelta> {
    let first = parts.first()?;
    let mut merged = ValueDelta::new(first.table.clone(), first.schema.clone());
    let mut all: Vec<ValueDeltaRecord> = Vec::new();
    for p in parts.drain(..) {
        all.extend(p.records);
    }
    // Stable by txn id: records of one business transaction stay adjacent,
    // cross-partition order follows the global commit order the ids encode.
    all.sort_by_key(|r| r.txn);
    merged.records = all;
    Some(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use delta_storage::{Column, DataType, Schema, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int).primary_key(),
            Column::new("v", DataType::Varchar),
        ])
        .unwrap()
    }

    fn rec(op: DeltaOp, txn: u64, id: i64, v: &str) -> ValueDeltaRecord {
        ValueDeltaRecord {
            op,
            txn,
            row: Row::new(vec![Value::Int(id), Value::Str(v.into())]),
        }
    }

    fn delta(records: Vec<ValueDeltaRecord>) -> ValueDelta {
        let mut d = ValueDelta::new("t", schema());
        d.records = records;
        d
    }

    #[test]
    fn identical_replicas_dedupe_to_one_stream() {
        let a = delta(vec![
            rec(DeltaOp::Insert, 1, 1, "x"),
            rec(DeltaOp::Delete, 2, 2, "y"),
        ]);
        let b = a.clone();
        let r = Reconciler::new("A", ReconcileKey::Content)
            .reconcile(vec![("A".into(), a), ("B".into(), b)]);
        assert_eq!(r.delta.len(), 2);
        assert_eq!(r.duplicates_dropped, 2);
        assert!(r.conflicts.is_empty());
    }

    #[test]
    fn txn_id_key_detects_value_divergence() {
        let a = delta(vec![rec(DeltaOp::UpdateAfter, 9, 1, "auth-value")]);
        let b = delta(vec![rec(DeltaOp::UpdateAfter, 9, 1, "stale-value")]);
        let r = Reconciler::new("A", ReconcileKey::GlobalTxnId)
            .reconcile(vec![("A".into(), a), ("B".into(), b)]);
        assert_eq!(r.delta.len(), 1);
        assert_eq!(
            r.delta.records[0].row.values()[1],
            Value::Str("auth-value".into()),
            "authoritative value wins"
        );
        assert_eq!(r.conflicts.len(), 1);
        assert_eq!(r.conflicts[0].conflicting_from, "B");
    }

    #[test]
    fn changes_seen_only_by_one_replica_are_kept() {
        let a = delta(vec![rec(DeltaOp::Insert, 1, 1, "x")]);
        let b = delta(vec![
            rec(DeltaOp::Insert, 1, 1, "x"),
            rec(DeltaOp::Insert, 2, 7, "only-on-b"),
        ]);
        let r = Reconciler::new("A", ReconcileKey::Content)
            .reconcile(vec![("A".into(), a), ("B".into(), b)]);
        assert_eq!(r.delta.len(), 2);
        assert_eq!(r.duplicates_dropped, 1);
    }

    #[test]
    fn missing_authoritative_input_passes_through() {
        let b = delta(vec![rec(DeltaOp::Insert, 1, 1, "x")]);
        let r =
            Reconciler::new("A", ReconcileKey::Content).reconcile(vec![("B".into(), b.clone())]);
        assert_eq!(r.delta, b);
    }

    #[test]
    fn content_key_distinguishes_ops_on_same_row() {
        let a = delta(vec![
            rec(DeltaOp::Insert, 1, 1, "x"),
            rec(DeltaOp::Delete, 2, 1, "x"),
        ]);
        let b = a.clone();
        let r = Reconciler::new("A", ReconcileKey::Content)
            .reconcile(vec![("A".into(), a), ("B".into(), b)]);
        assert_eq!(
            r.delta.len(),
            2,
            "insert and delete of same row are distinct changes"
        );
        assert_eq!(r.duplicates_dropped, 2);
    }

    #[test]
    fn partition_merge_orders_by_global_txn() {
        let p1 = delta(vec![
            rec(DeltaOp::Insert, 5, 1, "late"),
            rec(DeltaOp::Insert, 1, 2, "early"),
        ]);
        let p2 = delta(vec![rec(DeltaOp::Insert, 3, 3, "middle")]);
        let merged = merge_partitions(vec![p1, p2]).unwrap();
        let txns: Vec<u64> = merged.records.iter().map(|r| r.txn).collect();
        assert_eq!(txns, vec![1, 3, 5]);
        assert!(merge_partitions(vec![]).is_none());
    }
}
