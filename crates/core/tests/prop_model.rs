//! Property tests for the delta envelopes: what ships must parse back
//! identically, for arbitrary rows and statements — the lossless-wire
//! property Op-Delta shipping depends on.

use proptest::prelude::*;

use delta_core::model::{DeltaBatch, DeltaOp, OpDelta, OpLogRecord, ValueDelta, ValueDeltaRecord};
use delta_sql::ast::{BinOp, Expr, Statement};
use delta_storage::{Column, DataType, Row, Schema, Value};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        any::<i64>().prop_map(Value::Timestamp),
        prop::num::f64::NORMAL.prop_map(Value::Double),
        any::<bool>().prop_map(Value::Bool),
        "\\PC{0,24}"
            .prop_filter("ascii-dump NULL wart", |s| s != "NULL")
            .prop_map(Value::Str),
    ]
}

/// A schema and conforming rows (4 columns: int key, str, double, ts).
fn schema() -> Schema {
    Schema::new(vec![
        Column::new("id", DataType::Int).primary_key(),
        Column::new("name", DataType::Varchar),
        Column::new("price", DataType::Double),
        Column::new("ts", DataType::Timestamp),
    ])
    .unwrap()
}

fn arb_row() -> impl Strategy<Value = Row> {
    (
        any::<i64>(),
        prop_oneof![
            Just(Value::Null),
            "\\PC{0,24}"
                .prop_filter("wart", |s| s != "NULL")
                .prop_map(Value::Str)
        ],
        prop_oneof![
            Just(Value::Null),
            prop::num::f64::NORMAL.prop_map(Value::Double)
        ],
        prop_oneof![Just(Value::Null), any::<i64>().prop_map(Value::Timestamp)],
    )
        .prop_map(|(id, name, price, ts)| Row::new(vec![Value::Int(id), name, price, ts]))
}

fn arb_op() -> impl Strategy<Value = DeltaOp> {
    prop_oneof![
        Just(DeltaOp::Insert),
        Just(DeltaOp::Delete),
        Just(DeltaOp::UpdateBefore),
        Just(DeltaOp::UpdateAfter),
    ]
}

fn arb_value_delta() -> impl Strategy<Value = ValueDelta> {
    prop::collection::vec((arb_op(), any::<u64>(), arb_row()), 0..12).prop_map(|records| {
        let mut vd = ValueDelta::new("parts", schema());
        vd.records = records
            .into_iter()
            .map(|(op, txn, row)| ValueDeltaRecord { op, txn, row })
            .collect();
        vd
    })
}

fn lit() -> impl Strategy<Value = Expr> {
    arb_value().prop_map(Expr::Literal)
}

fn arb_statement() -> impl Strategy<Value = Statement> {
    prop_oneof![
        prop::collection::vec(prop::collection::vec(lit(), 4..5), 1..4).prop_map(|rows| {
            Statement::Insert {
                table: "parts".into(),
                columns: None,
                rows,
            }
        }),
        (lit(), any::<i64>()).prop_map(|(v, k)| Statement::Update {
            table: "parts".into(),
            sets: vec![("name".into(), v)],
            predicate: Some(Expr::Binary {
                left: Box::new(Expr::Column("id".into())),
                op: BinOp::Eq,
                right: Box::new(Expr::Literal(Value::Int(k))),
            }),
        }),
        any::<i64>().prop_map(|k| Statement::Delete {
            table: "parts".into(),
            predicate: Some(Expr::Binary {
                left: Box::new(Expr::Column("id".into())),
                op: BinOp::Gt,
                right: Box::new(Expr::Literal(Value::Int(k))),
            }),
        }),
    ]
}

fn arb_op_delta() -> impl Strategy<Value = OpDelta> {
    (
        1u64..1000,
        prop::collection::vec((arb_statement(), prop::option::of(arb_value_delta())), 1..5),
    )
        .prop_map(|(txn, ops)| OpDelta {
            txn,
            ops: ops
                .into_iter()
                .enumerate()
                .map(|(i, (statement, before_image))| OpLogRecord {
                    seq: i as u64 + 1,
                    txn,
                    statement,
                    before_image,
                })
                .collect(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn value_delta_envelope_round_trips(vd in arb_value_delta()) {
        let text = vd.to_text();
        let back = ValueDelta::from_text(&text)
            .map_err(|e| TestCaseError::fail(format!("{e}\n{text}")))?;
        prop_assert_eq!(back, vd);
    }

    #[test]
    fn op_delta_envelope_round_trips(od in arb_op_delta()) {
        let text = od.to_text();
        let back = OpDelta::from_text(&text)
            .map_err(|e| TestCaseError::fail(format!("{e}\n{text}")))?;
        prop_assert_eq!(back, od);
    }

    #[test]
    fn batch_round_trips_through_bytes(vd in arb_value_delta(), od in arb_op_delta()) {
        for batch in [DeltaBatch::Value(vd), DeltaBatch::Op(od)] {
            let bytes = batch.to_bytes();
            prop_assert_eq!(DeltaBatch::from_bytes(&bytes).unwrap(), batch);
        }
    }

    #[test]
    fn truncated_envelopes_never_parse_as_complete(vd in arb_value_delta()) {
        prop_assume!(!vd.records.is_empty());
        let text = vd.to_text();
        // Cut whole lines off the end: every strict prefix must be rejected
        // (the header's record count catches the truncation).
        let lines: Vec<&str> = text.lines().collect();
        for keep in 1..lines.len() {
            let cut = lines[..keep].join("\n");
            prop_assert!(ValueDelta::from_text(&cut).is_err(), "kept {keep} lines");
        }
    }

    #[test]
    fn wire_size_is_consistent(vd in arb_value_delta()) {
        prop_assert_eq!(vd.wire_size(), vd.to_text().len());
        let batch = DeltaBatch::Value(vd);
        prop_assert_eq!(batch.wire_size(), batch.to_bytes().len());
    }
}
