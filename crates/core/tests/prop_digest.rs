//! Property tests for the anti-entropy range digest (DESIGN.md §14):
//! the wire encoding must round trip exactly, every truncation and bit
//! flip must surface as a typed error or decode to identical content
//! (never a panic, never silent divergence), equal tables must digest to
//! equal roots regardless of row order, and a single-row edit must
//! localize to exactly one diverged leaf — the property the whole
//! audit-repair protocol leans on.

use proptest::prelude::*;

use delta_core::digest::{key_in_ranges, DigestBuilder};
use delta_core::{compare_digests, DigestParams, TableDigest};
use delta_storage::{Row, Value};

/// Rows of a fixed (id INT, v INT, s VARCHAR) shape with distinct keys —
/// the shape the auditor digests (key column 0).
fn arb_table(max_rows: usize) -> impl Strategy<Value = Vec<Row>> {
    prop::collection::vec((-2000i64..2000, any::<i64>(), "\\PC{0,12}"), 0..max_rows).prop_map(
        |cells| {
            // Last write per key wins: primary keys are unique.
            let dedup: std::collections::BTreeMap<i64, (i64, String)> =
                cells.into_iter().map(|(id, v, s)| (id, (v, s))).collect();
            dedup
                .into_iter()
                .map(|(id, (v, s))| Row::new(vec![Value::Int(id), Value::Int(v), Value::Str(s)]))
                .collect()
        },
    )
}

fn digest_of(rows: &[Row], span: i64) -> TableDigest {
    let mut b = DigestBuilder::new("t", 0, DigestParams::with_span(span));
    for r in rows {
        b.add_row(r).expect("int key");
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn digests_round_trip(rows in arb_table(48), span in 1i64..64) {
        let d = digest_of(&rows, span);
        let back = TableDigest::decode(&d.encode()).expect("own encoding decodes");
        prop_assert_eq!(&back, &d);
        prop_assert_eq!(back.root(), d.root());
    }

    #[test]
    fn every_truncation_is_a_typed_error(rows in arb_table(24), span in 1i64..32) {
        let bytes = digest_of(&rows, span).encode();
        for cut in 0..bytes.len() {
            prop_assert!(
                TableDigest::decode(&bytes[..cut]).is_err(),
                "decoding a {cut}-byte prefix of a {}-byte digest must fail",
                bytes.len()
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected_or_harmless(
        rows in arb_table(24),
        span in 1i64..32
    ) {
        let d = digest_of(&rows, span);
        let bytes = d.encode();
        let step = (bytes.len() * 8 / 512).max(1);
        let mut bit = 0;
        while bit < bytes.len() * 8 {
            let mut dirty = bytes.clone();
            dirty[bit / 8] ^= 1 << (bit % 8);
            match TableDigest::decode(&dirty) {
                Err(_) => {}
                // The payload is CRC-framed, so a flip that still decodes
                // (e.g. in ignored magic padding) must not change content.
                Ok(back) => prop_assert!(
                    back == d,
                    "bit flip at {bit} silently decoded a different digest"
                ),
            }
            bit += step;
        }
    }

    #[test]
    fn equal_tables_digest_equal_regardless_of_row_order(
        rows in arb_table(48),
        span in 1i64..64,
        seed in any::<u64>()
    ) {
        // Deterministic shuffle: heap scans visit rows in arbitrary
        // physical order, so the digest must be order-independent.
        let mut shuffled = rows.clone();
        let mut state = seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            shuffled.swap(i, (state % (i as u64 + 1)) as usize);
        }
        let a = digest_of(&rows, span);
        let b = digest_of(&shuffled, span);
        prop_assert_eq!(a.root(), b.root());
        let diff = compare_digests(&a, &b).expect("same table, same span");
        prop_assert!(diff.converged(), "diverged: {:?}", diff.ranges);
    }

    #[test]
    fn single_row_edit_diverges_exactly_one_leaf(
        rows in arb_table(48).prop_filter("need a row to edit", |r| !r.is_empty()),
        span in 1i64..64,
        pick in any::<u64>()
    ) {
        let mut edited = rows.clone();
        let i = (pick % edited.len() as u64) as usize;
        let Value::Int(key) = edited[i].values()[0] else { unreachable!() };
        let Value::Int(v) = edited[i].values()[1] else { unreachable!() };
        edited[i] = Row::new(vec![
            Value::Int(key),
            Value::Int(v.wrapping_add(1)),
            edited[i].values()[2].clone(),
        ]);

        let a = digest_of(&rows, span);
        let b = digest_of(&edited, span);
        prop_assert_ne!(a.root(), b.root());
        let diff = compare_digests(&a, &b).expect("same span");
        // Exactly one leaf diverged: one coalesced range, exactly one
        // bucket wide, containing the edited key.
        prop_assert_eq!(diff.ranges.len(), 1, "ranges: {:?}", diff.ranges);
        let r = &diff.ranges[0];
        prop_assert!(r.contains(key), "range {r:?} misses key {key}");
        prop_assert_eq!(r, &a.bucket_range(key.div_euclid(span)));
        prop_assert!(key_in_ranges(&diff.ranges, key));
    }

    #[test]
    fn disjoint_edits_diverge_disjoint_leaves(
        rows in arb_table(64),
        span in 1i64..16
    ) {
        // Edit every row whose bucket is even; all odd buckets must prune.
        let mut edited = Vec::new();
        let mut touched = std::collections::BTreeSet::new();
        for r in &rows {
            let Value::Int(key) = r.values()[0] else { unreachable!() };
            if key.div_euclid(span) % 2 == 0 {
                touched.insert(key.div_euclid(span));
                edited.push(Row::new(vec![
                    r.values()[0].clone(),
                    Value::Int(1_000_000),
                    r.values()[2].clone(),
                ]));
            } else {
                edited.push(r.clone());
            }
        }
        let a = digest_of(&rows, span);
        let b = digest_of(&edited, span);
        let diff = compare_digests(&a, &b).expect("same span");
        for r in &rows {
            let Value::Int(key) = r.values()[0] else { unreachable!() };
            let in_ranges = key_in_ranges(&diff.ranges, key);
            let bucket_touched = touched.contains(&key.div_euclid(span));
            prop_assert_eq!(
                in_ranges, bucket_touched,
                "key {} (bucket {}): diverged={} touched={}",
                key, key.div_euclid(span), in_ranges, bucket_touched
            );
        }
    }
}
