//! Property tests for the columnar delta-batch wire codec: arbitrary value
//! and Op-Delta batches must encode/decode input-equal through
//! [`DeltaBatch::to_bytes_with`]/[`DeltaBatch::from_bytes`], every
//! truncation must fail with a typed error (no panic), and single-bit flips
//! must never silently decode as a different batch — the same contract the
//! WAL record codec proves for its frames.

use proptest::prelude::*;

use delta_core::model::{DeltaBatch, DeltaOp, OpDelta, OpLogRecord, ValueDelta, ValueDeltaRecord};
use delta_sql::ast::{BinOp, Expr, Statement};
use delta_storage::colbatch::DEFAULT_BLOCK_ROWS;
use delta_storage::{Column, DataType, DeltaCodec, Row, Schema, Value};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        any::<i64>().prop_map(Value::Timestamp),
        prop::num::f64::NORMAL.prop_map(Value::Double),
        any::<bool>().prop_map(Value::Bool),
        "\\PC{0,24}"
            .prop_filter("ascii-dump NULL wart", |s| s != "NULL")
            .prop_map(Value::Str),
    ]
}

fn schema() -> Schema {
    Schema::new(vec![
        Column::new("id", DataType::Int).primary_key(),
        Column::new("name", DataType::Varchar),
        Column::new("price", DataType::Double),
        Column::new("ts", DataType::Timestamp),
    ])
    .unwrap()
}

fn arb_row() -> impl Strategy<Value = Row> {
    (
        any::<i64>(),
        prop_oneof![
            Just(Value::Null),
            "\\PC{0,24}"
                .prop_filter("wart", |s| s != "NULL")
                .prop_map(Value::Str)
        ],
        prop_oneof![
            Just(Value::Null),
            prop::num::f64::NORMAL.prop_map(Value::Double)
        ],
        prop_oneof![Just(Value::Null), any::<i64>().prop_map(Value::Timestamp)],
    )
        .prop_map(|(id, name, price, ts)| Row::new(vec![Value::Int(id), name, price, ts]))
}

fn arb_op() -> impl Strategy<Value = DeltaOp> {
    prop_oneof![
        Just(DeltaOp::Insert),
        Just(DeltaOp::Delete),
        Just(DeltaOp::UpdateBefore),
        Just(DeltaOp::UpdateAfter),
    ]
}

fn arb_value_delta() -> impl Strategy<Value = ValueDelta> {
    prop::collection::vec((arb_op(), any::<u64>(), arb_row()), 0..12).prop_map(|records| {
        let mut vd = ValueDelta::new("parts", schema());
        vd.records = records
            .into_iter()
            .map(|(op, txn, row)| ValueDeltaRecord { op, txn, row })
            .collect();
        vd
    })
}

fn lit() -> impl Strategy<Value = Expr> {
    arb_value().prop_map(Expr::Literal)
}

fn arb_statement() -> impl Strategy<Value = Statement> {
    prop_oneof![
        prop::collection::vec(prop::collection::vec(lit(), 4..5), 1..4).prop_map(|rows| {
            Statement::Insert {
                table: "parts".into(),
                columns: None,
                rows,
            }
        }),
        (lit(), any::<i64>()).prop_map(|(v, k)| Statement::Update {
            table: "parts".into(),
            sets: vec![("name".into(), v)],
            predicate: Some(Expr::Binary {
                left: Box::new(Expr::Column("id".into())),
                op: BinOp::Eq,
                right: Box::new(Expr::Literal(Value::Int(k))),
            }),
        }),
        any::<i64>().prop_map(|k| Statement::Delete {
            table: "parts".into(),
            predicate: Some(Expr::Binary {
                left: Box::new(Expr::Column("id".into())),
                op: BinOp::Gt,
                right: Box::new(Expr::Literal(Value::Int(k))),
            }),
        }),
    ]
}

fn arb_op_delta() -> impl Strategy<Value = OpDelta> {
    (
        1u64..1000,
        prop::collection::vec((arb_statement(), prop::option::of(arb_value_delta())), 1..5),
    )
        .prop_map(|(txn, ops)| OpDelta {
            txn,
            ops: ops
                .into_iter()
                .enumerate()
                .map(|(i, (statement, before_image))| OpLogRecord {
                    seq: i as u64 + 1,
                    txn,
                    statement,
                    before_image,
                })
                .collect(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn columnar_batches_round_trip(vd in arb_value_delta(), od in arb_op_delta()) {
        for batch in [DeltaBatch::Value(vd), DeltaBatch::Op(od)] {
            let bytes = batch.to_bytes_with(DeltaCodec::Columnar, DEFAULT_BLOCK_ROWS);
            prop_assert_eq!(DeltaBatch::from_bytes(&bytes).unwrap(), batch);
        }
    }

    #[test]
    fn tiny_blocks_round_trip(vd in arb_value_delta()) {
        // A 1-row block size forces the multi-block path and partial blocks.
        let batch = DeltaBatch::Value(vd);
        let bytes = batch.to_bytes_with(DeltaCodec::Columnar, 1);
        prop_assert_eq!(DeltaBatch::from_bytes(&bytes).unwrap(), batch);
    }

    #[test]
    fn every_truncation_is_a_typed_error(vd in arb_value_delta()) {
        let batch = DeltaBatch::Value(vd);
        let bytes = batch.to_bytes_with(DeltaCodec::Columnar, DEFAULT_BLOCK_ROWS);
        for cut in 0..bytes.len() {
            prop_assert!(
                DeltaBatch::from_bytes(&bytes[..cut]).is_err(),
                "a {cut}-byte prefix of a {}-byte batch must not decode",
                bytes.len()
            );
        }
    }

    #[test]
    fn op_batch_truncations_are_typed_errors(od in arb_op_delta()) {
        let batch = DeltaBatch::Op(od);
        let bytes = batch.to_bytes_with(DeltaCodec::Columnar, DEFAULT_BLOCK_ROWS);
        // Op batches can be large (nested before images): sample the cuts.
        let step = (bytes.len() / 256).max(1);
        for cut in (0..bytes.len()).step_by(step) {
            prop_assert!(
                DeltaBatch::from_bytes(&bytes[..cut]).is_err(),
                "a {cut}-byte prefix of a {}-byte batch must not decode",
                bytes.len()
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected(vd in arb_value_delta()) {
        let batch = DeltaBatch::Value(vd);
        let bytes = batch.to_bytes_with(DeltaCodec::Columnar, DEFAULT_BLOCK_ROWS);
        let step = (bytes.len() * 8 / 512).max(1);
        let mut bit = 0;
        while bit < bytes.len() * 8 {
            let mut dirty = bytes.clone();
            dirty[bit / 8] ^= 1 << (bit % 8);
            match DeltaBatch::from_bytes(&dirty) {
                Err(_) => {}
                // The only tolerated Ok is content identical to the input
                // (e.g. the flip landed in the magic and the payload happens
                // to parse as the legacy text format with equal content —
                // which a flip makes impossible for these batches).
                Ok(back) => prop_assert!(
                    back == batch,
                    "bit flip at {bit} silently decoded a different batch"
                ),
            }
            bit += step;
        }
    }
}
