//! Back-compat fixtures: byte-for-byte copies of the pre-columnar wire and
//! file formats, frozen here as literals. They must keep decoding unchanged
//! after any codec work — the columnar formats are additive (version-tagged
//! magic dispatch), never a rewrite of the old readers.

use delta_core::model::{DeltaBatch, DeltaOp};
use delta_core::snapshot::{diff_snapshots, diff_snapshots_parallel, DiffAlgorithm};
use delta_storage::{Column, DataType, DeltaCodec, Schema, Value};

/// A value-delta text envelope exactly as PR-1's `to_text` produced it.
const VALUE_DELTA_FIXTURE: &str = "VALUE-DELTA\tparts\tid:INT:P,name:VARCHAR,qty:INT\t3\n\
     I\t7\t1|alpha|10\n\
     UB\t8\t2|beta|20\n\
     UA\t8\t2|beta|25\n";

/// An Op-Delta text envelope with a nested before image.
const OP_DELTA_FIXTURE: &str = "OP-DELTA\t9\t2\n\
     STMT\t1\tUPDATE parts SET qty = 25 WHERE id = 2\n\
     > VALUE-DELTA\tparts\tid:INT:P,name:VARCHAR,qty:INT\t1\n\
     > UB\t9\t2|beta|20\n\
     STMT\t2\tDELETE FROM parts WHERE id = 1\n";

/// ASCII snapshot dumps exactly as `ascii_dump` wrote them before the
/// columnar snapshot format existed.
const OLD_SNAPSHOT_FIXTURE: &str = "1|alpha|10\n2|beta|20\n3|gamma|30\n";
const NEW_SNAPSHOT_FIXTURE: &str = "1|alpha|10\n2|beta|25\n4|delta|40\n";

fn schema() -> Schema {
    Schema::new(vec![
        Column::new("id", DataType::Int).primary_key(),
        Column::new("name", DataType::Varchar),
        Column::new("qty", DataType::Int),
    ])
    .unwrap()
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "delta-backcompat-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn legacy_value_delta_envelope_decodes_unchanged() {
    let batch = DeltaBatch::from_bytes(VALUE_DELTA_FIXTURE.as_bytes()).unwrap();
    let DeltaBatch::Value(vd) = batch else {
        panic!("fixture is a value delta");
    };
    assert_eq!(vd.table, "parts");
    assert_eq!(vd.records.len(), 3);
    assert_eq!(vd.records[0].op, DeltaOp::Insert);
    assert_eq!(vd.records[0].txn, 7);
    assert_eq!(
        vd.records[0].row.values(),
        &[Value::Int(1), Value::Str("alpha".into()), Value::Int(10)]
    );
    assert_eq!(vd.records[1].op, DeltaOp::UpdateBefore);
    assert_eq!(vd.records[2].op, DeltaOp::UpdateAfter);
    assert_eq!(vd.records[2].row.values()[2], Value::Int(25));
    // Re-encoding at Raw reproduces the fixture bytes exactly.
    let reencoded = DeltaBatch::Value(vd).to_bytes_with(DeltaCodec::Raw, 1024);
    assert_eq!(reencoded, VALUE_DELTA_FIXTURE.as_bytes());
}

#[test]
fn legacy_op_delta_envelope_decodes_unchanged() {
    let batch = DeltaBatch::from_bytes(OP_DELTA_FIXTURE.as_bytes()).unwrap();
    let DeltaBatch::Op(od) = batch else {
        panic!("fixture is an op delta");
    };
    assert_eq!(od.txn, 9);
    assert_eq!(od.ops.len(), 2);
    assert_eq!(od.ops[0].seq, 1);
    let bi = od.ops[0].before_image.as_ref().expect("before image");
    assert_eq!(bi.records.len(), 1);
    assert_eq!(bi.records[0].op, DeltaOp::UpdateBefore);
    assert!(od.ops[1].before_image.is_none());
    assert_eq!(
        od.ops[1].statement.to_string(),
        "DELETE FROM parts WHERE (id = 1)"
    );
}

#[test]
fn legacy_ascii_snapshots_diff_unchanged() {
    let old_p = tmp("old.snap");
    let new_p = tmp("new.snap");
    std::fs::write(&old_p, OLD_SNAPSHOT_FIXTURE).unwrap();
    std::fs::write(&new_p, NEW_SNAPSHOT_FIXTURE).unwrap();
    for workers in [1, 3] {
        let (delta, stats) = diff_snapshots_parallel(
            "parts",
            &schema(),
            &[0],
            &old_p,
            &new_p,
            DiffAlgorithm::SortMerge { run_size: 2 },
            workers,
        )
        .unwrap();
        assert_eq!(stats.rows_read, 6, "workers={workers}");
        // 2 updated (UB+UA), 3 deleted, 4 inserted.
        assert_eq!(delta.records.len(), 4, "workers={workers}");
        let ops: Vec<DeltaOp> = delta.records.iter().map(|r| r.op).collect();
        assert!(ops.contains(&DeltaOp::Insert));
        assert!(ops.contains(&DeltaOp::Delete));
        assert!(ops.contains(&DeltaOp::UpdateBefore));
        assert!(ops.contains(&DeltaOp::UpdateAfter));
    }
    // The windowed differ streams the same legacy files too.
    let (delta, _) = diff_snapshots(
        "parts",
        &schema(),
        &[0],
        &old_p,
        &new_p,
        DiffAlgorithm::Window { size: 8 },
    )
    .unwrap();
    assert_eq!(delta.records.len(), 4);
}

#[test]
fn mixed_format_snapshots_diff_against_each_other() {
    use delta_storage::colbatch::{RowSink, SnapshotFormat};
    use delta_storage::Row;
    // Old side: legacy ASCII fixture. New side: columnar, same logical rows
    // as NEW_SNAPSHOT_FIXTURE — the upgrade-in-flight scenario where one
    // snapshot predates the codec switch.
    let old_p = tmp("mixed-old.snap");
    let new_p = tmp("mixed-new.snap");
    std::fs::write(&old_p, OLD_SNAPSHOT_FIXTURE).unwrap();
    let mut sink = RowSink::create(&new_p, SnapshotFormat::Columnar, 2).unwrap();
    for (id, name, qty) in [(1, "alpha", 10), (2, "beta", 25), (4, "delta", 40)] {
        sink.write_row(&Row::new(vec![
            Value::Int(id),
            Value::Str(name.into()),
            Value::Int(qty),
        ]))
        .unwrap();
    }
    sink.finish().unwrap();
    let (delta, stats) = diff_snapshots(
        "parts",
        &schema(),
        &[0],
        &old_p,
        &new_p,
        DiffAlgorithm::SortMerge { run_size: 2 },
    )
    .unwrap();
    assert_eq!(stats.rows_read, 6);
    assert_eq!(delta.records.len(), 4);
}
