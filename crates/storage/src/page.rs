//! 8 KiB slotted pages.
//!
//! Classic slotted layout: a fixed header, a slot directory growing down from
//! the header, and record payloads growing up from the end of the page.
//! Deleting a record leaves a tombstone slot (so `RecordId`s of other records
//! stay stable); the space is reclaimed by compaction when an insert would
//! otherwise fail despite sufficient total free space.
//!
//! ```text
//! +-----------+-----------------+...free...+-----------+-----------+
//! | header    | slot directory  |          | record 1  | record 0  |
//! +-----------+-----------------+...free...+-----------+-----------+
//! ```

use crate::error::{StorageError, StorageResult};
use crate::file::PAGE_SIZE;

/// Byte offset where the slot directory begins.
const HEADER_SIZE: usize = 16;
/// Bytes per slot directory entry: u16 offset + u16 length.
const SLOT_SIZE: usize = 4;
/// Sentinel offset marking a dead (deleted) slot.
const DEAD: u16 = u16::MAX;

/// Largest record payload a fresh page can hold.
pub const MAX_RECORD_SIZE: usize = PAGE_SIZE - HEADER_SIZE - SLOT_SIZE;

/// An owned 8 KiB slotted page.
///
/// Header layout (little-endian):
/// * bytes 0..8  — page LSN (last WAL record that touched this page),
/// * bytes 8..10 — slot count,
/// * bytes 10..12 — free-space pointer (offset of the lowest record byte),
/// * bytes 12..16 — reserved.
#[derive(Clone)]
pub struct SlottedPage {
    data: Box<[u8; PAGE_SIZE]>,
}

impl Default for SlottedPage {
    fn default() -> Self {
        Self::new()
    }
}

impl SlottedPage {
    /// A freshly formatted, empty page.
    pub fn new() -> SlottedPage {
        let mut p = SlottedPage {
            data: Box::new([0u8; PAGE_SIZE]),
        };
        p.set_slot_count(0);
        p.set_free_ptr(PAGE_SIZE as u16);
        p
    }

    /// Wrap raw page bytes read from disk.
    pub fn from_bytes(bytes: &[u8]) -> StorageResult<SlottedPage> {
        if bytes.len() != PAGE_SIZE {
            return Err(StorageError::Corrupt(format!(
                "page must be {PAGE_SIZE} bytes, got {}",
                bytes.len()
            )));
        }
        let mut data = Box::new([0u8; PAGE_SIZE]);
        data.copy_from_slice(bytes);
        let p = SlottedPage { data };
        // Sanity-check the header so corrupt pages fail fast.
        let n = p.slot_count() as usize;
        if HEADER_SIZE + n * SLOT_SIZE > PAGE_SIZE || (p.free_ptr() as usize) > PAGE_SIZE {
            return Err(StorageError::Corrupt("page header out of range".into()));
        }
        Ok(p)
    }

    /// The raw page bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data[..]
    }

    fn read_u16(&self, at: usize) -> u16 {
        u16::from_le_bytes([self.data[at], self.data[at + 1]])
    }

    fn write_u16(&mut self, at: usize, v: u16) {
        self.data[at..at + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// The LSN of the last WAL record applied to this page.
    pub fn lsn(&self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.data[0..8]);
        u64::from_le_bytes(b)
    }

    /// Stamp the page LSN.
    pub fn set_lsn(&mut self, lsn: u64) {
        self.data[0..8].copy_from_slice(&lsn.to_le_bytes());
    }

    /// Number of slots (live + dead).
    pub fn slot_count(&self) -> u16 {
        self.read_u16(8)
    }

    fn set_slot_count(&mut self, n: u16) {
        self.write_u16(8, n);
    }

    fn free_ptr(&self) -> u16 {
        self.read_u16(10)
    }

    fn set_free_ptr(&mut self, p: u16) {
        self.write_u16(10, p);
    }

    fn slot(&self, idx: u16) -> (u16, u16) {
        let at = HEADER_SIZE + idx as usize * SLOT_SIZE;
        (self.read_u16(at), self.read_u16(at + 2))
    }

    fn set_slot(&mut self, idx: u16, offset: u16, len: u16) {
        let at = HEADER_SIZE + idx as usize * SLOT_SIZE;
        self.write_u16(at, offset);
        self.write_u16(at + 2, len);
    }

    /// Contiguous free bytes between the slot directory and the record area.
    pub fn contiguous_free(&self) -> usize {
        let dir_end = HEADER_SIZE + self.slot_count() as usize * SLOT_SIZE;
        (self.free_ptr() as usize).saturating_sub(dir_end)
    }

    /// Total reclaimable free bytes (contiguous + dead-record space).
    pub fn total_free(&self) -> usize {
        let mut dead = 0usize;
        for i in 0..self.slot_count() {
            let (off, len) = self.slot(i);
            if off == DEAD {
                dead += len as usize;
            }
        }
        self.contiguous_free() + dead
    }

    /// Whether a record of `len` bytes fits (possibly after compaction),
    /// reusing a dead slot when one exists.
    pub fn fits(&self, len: usize) -> bool {
        let slot_cost = if self.first_dead_slot().is_some() {
            0
        } else {
            SLOT_SIZE
        };
        self.total_free() >= len + slot_cost
    }

    fn first_dead_slot(&self) -> Option<u16> {
        (0..self.slot_count()).find(|&i| self.slot(i).0 == DEAD)
    }

    /// Insert a record, returning its slot number.
    pub fn insert(&mut self, record: &[u8]) -> StorageResult<u16> {
        if record.len() > MAX_RECORD_SIZE {
            return Err(StorageError::RecordTooLarge {
                size: record.len(),
                max: MAX_RECORD_SIZE,
            });
        }
        if !self.fits(record.len()) {
            return Err(StorageError::PageFull);
        }
        let reuse = self.first_dead_slot();
        let slot_cost = if reuse.is_some() { 0 } else { SLOT_SIZE };
        if self.contiguous_free() < record.len() + slot_cost {
            self.compact();
        }
        debug_assert!(self.contiguous_free() >= record.len() + slot_cost);
        let new_free = self.free_ptr() as usize - record.len();
        self.data[new_free..new_free + record.len()].copy_from_slice(record);
        self.set_free_ptr(new_free as u16);
        let slot = match reuse {
            Some(s) => s,
            None => {
                let s = self.slot_count();
                self.set_slot_count(s + 1);
                s
            }
        };
        self.set_slot(slot, new_free as u16, record.len() as u16);
        Ok(slot)
    }

    /// Read the record in `slot`, if live.
    pub fn get(&self, slot: u16) -> Option<&[u8]> {
        if slot >= self.slot_count() {
            return None;
        }
        let (off, len) = self.slot(slot);
        if off == DEAD {
            return None;
        }
        Some(&self.data[off as usize..off as usize + len as usize])
    }

    /// Tombstone the record in `slot`. The slot number remains allocated so
    /// other records' ids stay stable.
    pub fn delete(&mut self, slot: u16) -> StorageResult<()> {
        if slot >= self.slot_count() || self.slot(slot).0 == DEAD {
            return Err(StorageError::NotFound(format!("slot {slot}")));
        }
        let (_, len) = self.slot(slot);
        self.set_slot(slot, DEAD, len);
        Ok(())
    }

    /// Replace the record in `slot`. Fails with [`StorageError::PageFull`] if
    /// the new payload cannot fit even after compaction (the caller then
    /// relocates the record to another page).
    pub fn update(&mut self, slot: u16, record: &[u8]) -> StorageResult<()> {
        if slot >= self.slot_count() || self.slot(slot).0 == DEAD {
            return Err(StorageError::NotFound(format!("slot {slot}")));
        }
        let (off, len) = self.slot(slot);
        if record.len() <= len as usize {
            // Shrinking or same size: overwrite in place, keep slot offset.
            let off = off as usize;
            self.data[off..off + record.len()].copy_from_slice(record);
            self.set_slot(slot, off as u16, record.len() as u16);
            return Ok(());
        }
        // Growing: free the old payload, then place the new one.
        self.set_slot(slot, DEAD, len);
        if self.total_free() < record.len() {
            // Restore and report full.
            self.set_slot(slot, off, len);
            return Err(StorageError::PageFull);
        }
        if self.contiguous_free() < record.len() {
            self.compact();
        }
        let new_free = self.free_ptr() as usize - record.len();
        self.data[new_free..new_free + record.len()].copy_from_slice(record);
        self.set_free_ptr(new_free as u16);
        self.set_slot(slot, new_free as u16, record.len() as u16);
        Ok(())
    }

    /// Iterate the live records as `(slot, payload)`.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &[u8])> {
        (0..self.slot_count()).filter_map(move |s| self.get(s).map(|r| (s, r)))
    }

    /// Number of live records.
    pub fn live_count(&self) -> usize {
        self.iter().count()
    }

    /// Squeeze out dead-record space. Slot numbers are preserved.
    pub fn compact(&mut self) {
        let mut live: Vec<(u16, Vec<u8>)> = self.iter().map(|(s, r)| (s, r.to_vec())).collect();
        // Pack from the end of the page.
        let mut free = PAGE_SIZE;
        // Stable layout: place larger offsets first is unnecessary; any order works.
        for (slot, rec) in live.drain(..) {
            free -= rec.len();
            self.data[free..free + rec.len()].copy_from_slice(&rec);
            self.set_slot(slot, free as u16, rec.len() as u16);
        }
        self.set_free_ptr(free as u16);
    }
}

impl std::fmt::Debug for SlottedPage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlottedPage")
            .field("lsn", &self.lsn())
            .field("slots", &self.slot_count())
            .field("live", &self.live_count())
            .field("free", &self.contiguous_free())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_round_trip() {
        let mut p = SlottedPage::new();
        let s0 = p.insert(b"hello").unwrap();
        let s1 = p.insert(b"world!").unwrap();
        assert_eq!(p.get(s0), Some(&b"hello"[..]));
        assert_eq!(p.get(s1), Some(&b"world!"[..]));
        assert_eq!(p.live_count(), 2);
    }

    #[test]
    fn delete_leaves_stable_slots() {
        let mut p = SlottedPage::new();
        let s0 = p.insert(b"aaa").unwrap();
        let s1 = p.insert(b"bbb").unwrap();
        p.delete(s0).unwrap();
        assert_eq!(p.get(s0), None);
        assert_eq!(p.get(s1), Some(&b"bbb"[..]));
        assert!(p.delete(s0).is_err(), "double delete must fail");
    }

    #[test]
    fn dead_slot_is_reused() {
        let mut p = SlottedPage::new();
        let s0 = p.insert(b"aaa").unwrap();
        p.insert(b"bbb").unwrap();
        p.delete(s0).unwrap();
        let s2 = p.insert(b"ccc").unwrap();
        assert_eq!(s2, s0);
        assert_eq!(p.get(s2), Some(&b"ccc"[..]));
    }

    #[test]
    fn fills_up_and_reports_full() {
        let mut p = SlottedPage::new();
        let rec = [7u8; 100];
        let mut inserted = 0;
        loop {
            match p.insert(&rec) {
                Ok(_) => inserted += 1,
                Err(StorageError::PageFull) => break,
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        // 100-byte records + 4-byte slots in (8192-16) usable bytes.
        assert_eq!(inserted, (PAGE_SIZE - HEADER_SIZE) / (100 + SLOT_SIZE));
        assert!(!p.fits(100));
    }

    #[test]
    fn rejects_oversized_record() {
        let mut p = SlottedPage::new();
        let huge = vec![0u8; PAGE_SIZE];
        assert!(matches!(
            p.insert(&huge),
            Err(StorageError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn compaction_reclaims_dead_space() {
        let mut p = SlottedPage::new();
        let rec = [1u8; 512];
        let mut slots = vec![];
        while let Ok(s) = p.insert(&rec) {
            slots.push(s);
        }
        // Free every other record, then insert one of double size: only
        // possible via compaction.
        for s in slots.iter().step_by(2) {
            p.delete(*s).unwrap();
        }
        let big = [2u8; 1024];
        let s = p.insert(&big).unwrap();
        assert_eq!(p.get(s), Some(&big[..]));
    }

    #[test]
    fn update_in_place_and_grow() {
        let mut p = SlottedPage::new();
        let s = p.insert(&[1u8; 64]).unwrap();
        let other = p.insert(&[9u8; 64]).unwrap();
        p.update(s, &[2u8; 32]).unwrap();
        assert_eq!(p.get(s), Some(&[2u8; 32][..]));
        p.update(s, &[3u8; 128]).unwrap();
        assert_eq!(p.get(s), Some(&[3u8; 128][..]));
        assert_eq!(p.get(other), Some(&[9u8; 64][..]));
    }

    #[test]
    fn update_too_big_restores_original() {
        let mut p = SlottedPage::new();
        let s = p.insert(&[1u8; 64]).unwrap();
        // Fill the page so a large growth cannot fit.
        while p.insert(&[0u8; 256]).is_ok() {}
        let huge = vec![5u8; 4000];
        assert!(matches!(p.update(s, &huge), Err(StorageError::PageFull)));
        assert_eq!(p.get(s), Some(&[1u8; 64][..]), "original must survive");
    }

    #[test]
    fn bytes_round_trip() {
        let mut p = SlottedPage::new();
        p.insert(b"persist me").unwrap();
        p.set_lsn(777);
        let q = SlottedPage::from_bytes(p.as_bytes()).unwrap();
        assert_eq!(q.lsn(), 777);
        assert_eq!(q.get(0), Some(&b"persist me"[..]));
    }

    #[test]
    fn from_bytes_rejects_bad_sizes_and_headers() {
        assert!(SlottedPage::from_bytes(&[0u8; 16]).is_err());
        let mut raw = vec![0u8; PAGE_SIZE];
        raw[8] = 0xFF;
        raw[9] = 0xFF; // absurd slot count
        assert!(SlottedPage::from_bytes(&raw).is_err());
    }

    #[test]
    fn empty_page_iter_is_empty() {
        let p = SlottedPage::new();
        assert_eq!(p.iter().count(), 0);
        assert_eq!(p.contiguous_free(), PAGE_SIZE - HEADER_SIZE);
    }
}
