//! # delta-storage
//!
//! Storage substrate for the DeltaForge reproduction of *"Extracting Delta for
//! Incremental Data Warehouse Maintenance"* (Ram & Do, ICDE 2000).
//!
//! This crate provides the building blocks the mini-DBMS (`delta-engine`) is
//! assembled from:
//!
//! * [`value`] — dynamically typed column values and data types,
//! * [`schema`] — table schemas,
//! * [`record`] — the binary row codec (schema-directed),
//! * [`page`] — 8 KiB slotted pages,
//! * [`mod@file`] — page-granular disk files,
//! * [`buffer`] — a clock-eviction buffer pool with I/O statistics,
//! * [`heap`] — heap files (unordered row storage) on top of the buffer pool,
//! * [`codec`] — the ASCII dump format (consumed by the "DBMS Loader") and the
//!   proprietary, product/version-tagged binary Export format whose
//!   incompatibility across products the paper discusses in §3.
//!
//! Everything here is deliberately structured like the storage layer of a
//! classical disk-based RDBMS, because the experiments in the paper measure
//! costs (extra inserts, extra page I/O, WAL traffic) that only arise when the
//! real mechanisms are present.

pub mod buffer;
pub mod codec;
pub mod colbatch;
pub mod error;
pub mod fault;
pub mod file;
pub mod heap;
pub mod invariant;
pub mod page;
pub mod pressure;
pub mod record;
pub mod schema;
pub mod scrub;
pub mod value;

pub use buffer::{BufferPool, BufferPoolStats};
pub use colbatch::DeltaCodec;
pub use error::{IoOp, StorageError, StorageResult};
pub use fault::{FaultAction, FaultInjector, FaultPlan, FaultStats, ScheduledFault};
pub use file::{DiskFile, FileId, PageId, PAGE_SIZE};
pub use heap::{HeapFile, RecordId};
pub use page::SlottedPage;
pub use pressure::{Admission, BudgetStats, DiskBudget};
pub use record::Row;
pub use schema::{Column, Schema};
pub use scrub::{scrub_page_file, PageCheck, PageScrubOutcome};
pub use value::{DataType, Value};
