//! Page-granular disk files.
//!
//! Each table heap and each index lives in its own file of 8 KiB pages. A
//! [`DiskFile`] hands out whole pages and counts physical reads/writes so the
//! benchmark harness can report I/O alongside wall time (the paper explains
//! the Import-vs-Loader gap by "extra I/O", which we make observable).

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{IoOp, StorageError, StorageResult};
use crate::fault::{FaultAction, FaultInjector};
use crate::pressure::DiskBudget;

/// Size of every page in the system.
pub const PAGE_SIZE: usize = 8192;

/// Identifies a paged file (assigned by the engine's catalog).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u32);

/// Identifies a page within the whole database: (file, page number).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId {
    pub file: FileId,
    pub page_no: u32,
}

impl PageId {
    pub fn new(file: FileId, page_no: u32) -> PageId {
        PageId { file, page_no }
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.file.0, self.page_no)
    }
}

/// A file of fixed-size pages with physical I/O counters.
pub struct DiskFile {
    path: PathBuf,
    file: Mutex<File>,
    /// Number of pages currently allocated.
    page_count: AtomicU64,
    reads: AtomicU64,
    writes: AtomicU64,
    /// Armed fault plan; every physical operation consults it first.
    faults: Option<Arc<FaultInjector>>,
    /// Armed disk budget; page allocations (the only operations that grow
    /// the file) ask it for space first.
    budget: Option<Arc<DiskBudget>>,
}

impl DiskFile {
    /// Open (creating if absent) the paged file at `path`.
    pub fn open(path: impl AsRef<Path>) -> StorageResult<DiskFile> {
        DiskFile::open_with_faults(path, None)
    }

    /// Open with an armed fault injector consulted on every physical
    /// operation (deterministic torture testing; `None` is a clean file).
    pub fn open_with_faults(
        path: impl AsRef<Path>,
        faults: Option<Arc<FaultInjector>>,
    ) -> StorageResult<DiskFile> {
        DiskFile::open_with_io(path, faults, None)
    }

    /// Open with both a fault injector and a disk budget armed. Page
    /// allocations — the only operation that grows the file — ask the
    /// budget for space first; exhaustion surfaces as a typed
    /// [`StorageError::DiskFull`] with the file unchanged (a partially
    /// allocated page would fail the page-multiple check on reopen, so
    /// allocation is all-or-nothing).
    pub fn open_with_io(
        path: impl AsRef<Path>,
        faults: Option<Arc<FaultInjector>>,
        budget: Option<Arc<DiskBudget>>,
    ) -> StorageResult<DiskFile> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(StorageError::Corrupt(format!(
                "file {} length {len} is not a multiple of the page size",
                path.display()
            )));
        }
        Ok(DiskFile {
            path,
            file: Mutex::new(file),
            page_count: AtomicU64::new(len / PAGE_SIZE as u64),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            faults,
            budget,
        })
    }

    /// A real I/O failure, enriched with operation, path and page context.
    fn page_io(&self, op: IoOp, page: Option<u32>, source: io::Error) -> StorageError {
        StorageError::PageIo {
            op,
            path: self.path.display().to_string(),
            page,
            source,
        }
    }

    /// Path this file lives at.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of allocated pages.
    pub fn page_count(&self) -> u32 {
        self.page_count.load(Ordering::Acquire) as u32
    }

    /// Physical page reads performed.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Physical page writes performed.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Consult the fault injector for `op`. `Ok(None)` is a clean
    /// pass-through; `Ok(Some(action))` is a fault the caller must act out
    /// (torn write, dropped sync); `Err` is an injected hard failure.
    fn consult(&self, op: IoOp) -> StorageResult<Option<FaultAction>> {
        let Some(inj) = &self.faults else {
            return Ok(None);
        };
        match inj.decide(op) {
            None => Ok(None),
            Some(a @ (FaultAction::Error | FaultAction::Crash)) => {
                Err(inj.error(op, &self.path, a))
            }
            Some(a) => Ok(Some(a)),
        }
    }

    /// Append a fresh zeroed page, returning its page number.
    pub fn allocate_page(&self) -> StorageResult<u32> {
        self.consult(IoOp::Allocate)?;
        if let Some(b) = &self.budget {
            b.admit_full(&self.path, PAGE_SIZE as u64)?;
        }
        // lint: allow(lock_hygiene) -- the mutex *is* the file handle; seek+write must be atomic
        let mut f = self.file.lock();
        let page_no = self.page_count.load(Ordering::Acquire);
        f.seek(SeekFrom::Start(page_no * PAGE_SIZE as u64))
            .map_err(|e| self.page_io(IoOp::Allocate, Some(page_no as u32), e))?;
        f.write_all(&[0u8; PAGE_SIZE])
            .map_err(|e| self.page_io(IoOp::Allocate, Some(page_no as u32), e))?;
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.page_count.store(page_no + 1, Ordering::Release);
        Ok(page_no as u32)
    }

    /// Read page `page_no` into `buf` (must be `PAGE_SIZE` bytes).
    pub fn read_page(&self, page_no: u32, buf: &mut [u8]) -> StorageResult<()> {
        assert_eq!(buf.len(), PAGE_SIZE);
        if page_no as u64 >= self.page_count.load(Ordering::Acquire) {
            return Err(StorageError::NotFound(format!(
                "page {page_no} of {}",
                self.path.display()
            )));
        }
        self.consult(IoOp::Read)?;
        // lint: allow(lock_hygiene) -- the mutex *is* the file handle; seek+read must be atomic
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(page_no as u64 * PAGE_SIZE as u64))
            .map_err(|e| self.page_io(IoOp::Read, Some(page_no), e))?;
        f.read_exact(buf)
            .map_err(|e| self.page_io(IoOp::Read, Some(page_no), e))?;
        self.reads.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Write `buf` (must be `PAGE_SIZE` bytes) to page `page_no`. The image
    /// that reaches disk carries a whole-page CRC stamped into the header's
    /// reserved word (see [`crate::scrub`]), verified only by the scrubber —
    /// the hot read path stays CRC-free.
    pub fn write_page(&self, page_no: u32, buf: &[u8]) -> StorageResult<()> {
        assert_eq!(buf.len(), PAGE_SIZE);
        if page_no as u64 >= self.page_count.load(Ordering::Acquire) {
            return Err(StorageError::NotFound(format!(
                "page {page_no} of {}",
                self.path.display()
            )));
        }
        let action = self.consult(IoOp::Write)?;
        let mut stamped = [0u8; PAGE_SIZE];
        stamped.copy_from_slice(buf);
        crate::scrub::stamp_page_crc(&mut stamped);
        let buf = &stamped[..];
        // lint: allow(lock_hygiene) -- the mutex *is* the file handle; seek+write must be atomic
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(page_no as u64 * PAGE_SIZE as u64))
            .map_err(|e| self.page_io(IoOp::Write, Some(page_no), e))?;
        if let (Some(a @ FaultAction::TornWrite { keep }), Some(inj)) = (action, &self.faults) {
            // Act out the tear: the prefix reaches the file, the caller
            // sees a typed error. The page now holds mixed old/new bytes,
            // exactly like a power cut mid-write.
            let keep = (keep as usize).min(buf.len());
            f.write_all(&buf[..keep])
                .map_err(|e| self.page_io(IoOp::Write, Some(page_no), e))?;
            self.writes.fetch_add(1, Ordering::Relaxed);
            return Err(inj.error(IoOp::Write, &self.path, a));
        }
        f.write_all(buf)
            .map_err(|e| self.page_io(IoOp::Write, Some(page_no), e))?;
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Flush OS buffers to stable storage.
    pub fn sync(&self) -> StorageResult<()> {
        if let Some(FaultAction::DropSync) = self.consult(IoOp::Sync)? {
            // Lying fsync: report success without syncing.
            return Ok(());
        }
        // lint: allow(lock_hygiene) -- the mutex *is* the file handle
        let f = self.file.lock();
        f.sync_data()
            .map_err(|e| self.page_io(IoOp::Sync, None, e))?;
        Ok(())
    }

    /// Truncate back to zero pages (used by the Loader's `REPLACE` mode).
    pub fn truncate(&self) -> StorageResult<()> {
        self.consult(IoOp::Truncate)?;
        // lint: allow(lock_hygiene) -- the mutex *is* the file handle; truncate+reset must be atomic
        let f = self.file.lock();
        f.set_len(0)
            .map_err(|e| self.page_io(IoOp::Truncate, None, e))?;
        let freed = self.page_count.swap(0, Ordering::AcqRel);
        if let Some(b) = &self.budget {
            b.credit(&self.path, freed * PAGE_SIZE as u64);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "delta-storage-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn allocate_write_read() {
        let p = tmpdir().join("t1.db");
        let _ = std::fs::remove_file(&p);
        let f = DiskFile::open(&p).unwrap();
        assert_eq!(f.page_count(), 0);
        let n0 = f.allocate_page().unwrap();
        let n1 = f.allocate_page().unwrap();
        assert_eq!((n0, n1), (0, 1));
        let mut page = vec![0u8; PAGE_SIZE];
        page[0] = 0xAB;
        f.write_page(1, &page).unwrap();
        let mut back = vec![0u8; PAGE_SIZE];
        f.read_page(1, &mut back).unwrap();
        assert_eq!(back[0], 0xAB);
        assert!(f.reads() >= 1 && f.writes() >= 3);
    }

    #[test]
    fn rejects_out_of_range_pages() {
        let p = tmpdir().join("t2.db");
        let _ = std::fs::remove_file(&p);
        let f = DiskFile::open(&p).unwrap();
        let mut buf = vec![0u8; PAGE_SIZE];
        assert!(f.read_page(0, &mut buf).is_err());
        assert!(f.write_page(0, &buf).is_err());
    }

    #[test]
    fn reopen_preserves_pages() {
        let p = tmpdir().join("t3.db");
        let _ = std::fs::remove_file(&p);
        {
            let f = DiskFile::open(&p).unwrap();
            f.allocate_page().unwrap();
            let mut page = vec![0u8; PAGE_SIZE];
            page[100] = 7;
            f.write_page(0, &page).unwrap();
            f.sync().unwrap();
        }
        let f = DiskFile::open(&p).unwrap();
        assert_eq!(f.page_count(), 1);
        let mut back = vec![0u8; PAGE_SIZE];
        f.read_page(0, &mut back).unwrap();
        assert_eq!(back[100], 7);
    }

    #[test]
    fn open_rejects_torn_file() {
        let p = tmpdir().join("t4.db");
        std::fs::write(&p, vec![0u8; PAGE_SIZE + 17]).unwrap();
        assert!(DiskFile::open(&p).is_err());
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn injected_eio_on_nth_write_is_typed() {
        use crate::fault::{FaultInjector, FaultPlan};
        let p = tmpdir().join("t6.db");
        let _ = std::fs::remove_file(&p);
        // allocate_page counts as Allocate, so Write #0 is the first write_page.
        let inj = Arc::new(FaultInjector::new(FaultPlan::new(5).fail(IoOp::Write, 1)));
        let f = DiskFile::open_with_faults(&p, Some(inj.clone())).unwrap();
        f.allocate_page().unwrap();
        f.allocate_page().unwrap();
        let page = vec![1u8; PAGE_SIZE];
        f.write_page(0, &page).unwrap();
        match f.write_page(1, &page) {
            Err(StorageError::InjectedFault { op, .. }) => assert_eq!(op, IoOp::Write),
            other => panic!("expected InjectedFault, got {other:?}"),
        }
        assert_eq!(inj.stats().injected, 1);
        // Next write is clean again.
        f.write_page(1, &page).unwrap();
    }

    #[test]
    fn torn_write_keeps_prefix_and_errors() {
        use crate::fault::{FaultInjector, FaultPlan};
        let p = tmpdir().join("t7.db");
        let _ = std::fs::remove_file(&p);
        let inj = Arc::new(FaultInjector::new(FaultPlan::new(6).torn_write(0, 100)));
        let f = DiskFile::open_with_faults(&p, Some(inj)).unwrap();
        f.allocate_page().unwrap();
        let page = vec![0xCCu8; PAGE_SIZE];
        assert!(matches!(
            f.write_page(0, &page),
            Err(StorageError::InjectedFault { .. })
        ));
        let mut back = vec![0u8; PAGE_SIZE];
        f.read_page(0, &mut back).unwrap();
        // Bytes 12..16 hold the stamped page CRC, so compare around them.
        assert_eq!(&back[..12], &page[..12], "prefix reached the file");
        assert_eq!(&back[16..100], &page[16..100], "prefix reached the file");
        assert_eq!(back[100], 0, "tail kept the old (zeroed) bytes");
    }

    #[test]
    fn dropped_sync_lies_successfully() {
        use crate::fault::{FaultInjector, FaultPlan};
        let p = tmpdir().join("t8.db");
        let _ = std::fs::remove_file(&p);
        let inj = Arc::new(FaultInjector::new(FaultPlan::new(7).drop_sync(0)));
        let f = DiskFile::open_with_faults(&p, Some(inj.clone())).unwrap();
        f.sync().unwrap(); // dropped, but reports success
        assert_eq!(inj.stats().injected, 1);
        f.sync().unwrap(); // real
    }

    #[test]
    fn crash_fails_everything_until_disarm() {
        use crate::fault::{FaultInjector, FaultPlan};
        let p = tmpdir().join("t9.db");
        let _ = std::fs::remove_file(&p);
        let inj = Arc::new(FaultInjector::new(FaultPlan::new(8).crash(IoOp::Read, 0)));
        let f = DiskFile::open_with_faults(&p, Some(inj.clone())).unwrap();
        f.allocate_page().unwrap();
        let mut buf = vec![0u8; PAGE_SIZE];
        assert!(f.read_page(0, &mut buf).is_err());
        assert!(f.write_page(0, &buf).is_err());
        assert!(f.sync().is_err());
        inj.disarm();
        f.read_page(0, &mut buf).unwrap();
    }

    #[test]
    fn budget_exhaustion_on_allocate_is_typed_and_recoverable() {
        use crate::pressure::DiskBudget;
        let p = tmpdir().join("t10.db");
        let _ = std::fs::remove_file(&p);
        let budget = Arc::new(DiskBudget::bytes(PAGE_SIZE as u64 * 2));
        let f = DiskFile::open_with_io(&p, None, Some(budget.clone())).unwrap();
        f.allocate_page().unwrap();
        f.allocate_page().unwrap();
        match f.allocate_page() {
            Err(StorageError::DiskFull { needed, .. }) => {
                assert_eq!(needed, PAGE_SIZE as u64)
            }
            other => panic!("expected DiskFull, got {other:?}"),
        }
        drop(f);
        // The denied allocation wrote nothing: the file reopens clean.
        let f = DiskFile::open_with_io(&p, None, Some(budget)).unwrap();
        assert_eq!(f.page_count(), 2);
        // Truncation credits the space back; allocation succeeds again.
        f.truncate().unwrap();
        f.allocate_page().unwrap();
    }

    #[test]
    fn truncate_resets() {
        let p = tmpdir().join("t5.db");
        let _ = std::fs::remove_file(&p);
        let f = DiskFile::open(&p).unwrap();
        f.allocate_page().unwrap();
        f.truncate().unwrap();
        assert_eq!(f.page_count(), 0);
        let n = f.allocate_page().unwrap();
        assert_eq!(n, 0);
    }
}
