//! Page-granular disk files.
//!
//! Each table heap and each index lives in its own file of 8 KiB pages. A
//! [`DiskFile`] hands out whole pages and counts physical reads/writes so the
//! benchmark harness can report I/O alongside wall time (the paper explains
//! the Import-vs-Loader gap by "extra I/O", which we make observable).

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::error::{StorageError, StorageResult};

/// Size of every page in the system.
pub const PAGE_SIZE: usize = 8192;

/// Identifies a paged file (assigned by the engine's catalog).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u32);

/// Identifies a page within the whole database: (file, page number).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId {
    pub file: FileId,
    pub page_no: u32,
}

impl PageId {
    pub fn new(file: FileId, page_no: u32) -> PageId {
        PageId { file, page_no }
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.file.0, self.page_no)
    }
}

/// A file of fixed-size pages with physical I/O counters.
pub struct DiskFile {
    path: PathBuf,
    file: Mutex<File>,
    /// Number of pages currently allocated.
    page_count: AtomicU64,
    reads: AtomicU64,
    writes: AtomicU64,
}

impl DiskFile {
    /// Open (creating if absent) the paged file at `path`.
    pub fn open(path: impl AsRef<Path>) -> StorageResult<DiskFile> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(StorageError::Corrupt(format!(
                "file {} length {len} is not a multiple of the page size",
                path.display()
            )));
        }
        Ok(DiskFile {
            path,
            file: Mutex::new(file),
            page_count: AtomicU64::new(len / PAGE_SIZE as u64),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        })
    }

    /// Path this file lives at.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of allocated pages.
    pub fn page_count(&self) -> u32 {
        self.page_count.load(Ordering::Acquire) as u32
    }

    /// Physical page reads performed.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Physical page writes performed.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Append a fresh zeroed page, returning its page number.
    pub fn allocate_page(&self) -> StorageResult<u32> {
        // lint: allow(lock_hygiene) -- the mutex *is* the file handle; seek+write must be atomic
        let mut f = self.file.lock();
        let page_no = self.page_count.load(Ordering::Acquire);
        f.seek(SeekFrom::Start(page_no * PAGE_SIZE as u64))?;
        f.write_all(&[0u8; PAGE_SIZE])?;
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.page_count.store(page_no + 1, Ordering::Release);
        Ok(page_no as u32)
    }

    /// Read page `page_no` into `buf` (must be `PAGE_SIZE` bytes).
    pub fn read_page(&self, page_no: u32, buf: &mut [u8]) -> StorageResult<()> {
        assert_eq!(buf.len(), PAGE_SIZE);
        if page_no as u64 >= self.page_count.load(Ordering::Acquire) {
            return Err(StorageError::NotFound(format!(
                "page {page_no} of {}",
                self.path.display()
            )));
        }
        // lint: allow(lock_hygiene) -- the mutex *is* the file handle; seek+read must be atomic
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(page_no as u64 * PAGE_SIZE as u64))?;
        f.read_exact(buf)?;
        self.reads.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Write `buf` (must be `PAGE_SIZE` bytes) to page `page_no`.
    pub fn write_page(&self, page_no: u32, buf: &[u8]) -> StorageResult<()> {
        assert_eq!(buf.len(), PAGE_SIZE);
        if page_no as u64 >= self.page_count.load(Ordering::Acquire) {
            return Err(StorageError::NotFound(format!(
                "page {page_no} of {}",
                self.path.display()
            )));
        }
        // lint: allow(lock_hygiene) -- the mutex *is* the file handle; seek+write must be atomic
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(page_no as u64 * PAGE_SIZE as u64))?;
        f.write_all(buf)?;
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Flush OS buffers to stable storage.
    pub fn sync(&self) -> StorageResult<()> {
        // lint: allow(lock_hygiene) -- the mutex *is* the file handle
        self.file.lock().sync_data()?;
        Ok(())
    }

    /// Truncate back to zero pages (used by the Loader's `REPLACE` mode).
    pub fn truncate(&self) -> StorageResult<()> {
        // lint: allow(lock_hygiene) -- the mutex *is* the file handle; truncate+reset must be atomic
        let f = self.file.lock();
        f.set_len(0)?;
        self.page_count.store(0, Ordering::Release);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "delta-storage-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn allocate_write_read() {
        let p = tmpdir().join("t1.db");
        let _ = std::fs::remove_file(&p);
        let f = DiskFile::open(&p).unwrap();
        assert_eq!(f.page_count(), 0);
        let n0 = f.allocate_page().unwrap();
        let n1 = f.allocate_page().unwrap();
        assert_eq!((n0, n1), (0, 1));
        let mut page = vec![0u8; PAGE_SIZE];
        page[0] = 0xAB;
        f.write_page(1, &page).unwrap();
        let mut back = vec![0u8; PAGE_SIZE];
        f.read_page(1, &mut back).unwrap();
        assert_eq!(back[0], 0xAB);
        assert!(f.reads() >= 1 && f.writes() >= 3);
    }

    #[test]
    fn rejects_out_of_range_pages() {
        let p = tmpdir().join("t2.db");
        let _ = std::fs::remove_file(&p);
        let f = DiskFile::open(&p).unwrap();
        let mut buf = vec![0u8; PAGE_SIZE];
        assert!(f.read_page(0, &mut buf).is_err());
        assert!(f.write_page(0, &buf).is_err());
    }

    #[test]
    fn reopen_preserves_pages() {
        let p = tmpdir().join("t3.db");
        let _ = std::fs::remove_file(&p);
        {
            let f = DiskFile::open(&p).unwrap();
            f.allocate_page().unwrap();
            let mut page = vec![0u8; PAGE_SIZE];
            page[100] = 7;
            f.write_page(0, &page).unwrap();
            f.sync().unwrap();
        }
        let f = DiskFile::open(&p).unwrap();
        assert_eq!(f.page_count(), 1);
        let mut back = vec![0u8; PAGE_SIZE];
        f.read_page(0, &mut back).unwrap();
        assert_eq!(back[100], 7);
    }

    #[test]
    fn open_rejects_torn_file() {
        let p = tmpdir().join("t4.db");
        std::fs::write(&p, vec![0u8; PAGE_SIZE + 17]).unwrap();
        assert!(DiskFile::open(&p).is_err());
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn truncate_resets() {
        let p = tmpdir().join("t5.db");
        let _ = std::fs::remove_file(&p);
        let f = DiskFile::open(&p).unwrap();
        f.allocate_page().unwrap();
        f.truncate().unwrap();
        assert_eq!(f.page_count(), 0);
        let n = f.allocate_page().unwrap();
        assert_eq!(n, 0);
    }
}
