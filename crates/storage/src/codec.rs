//! Dump-file codecs.
//!
//! Two interchange formats, mirroring §3 of the paper:
//!
//! * [`ascii`] — a plain-text, pipe-delimited dump. This is what the
//!   timestamp extractor's "output to file" produces and what the "DBMS
//!   Loader" consumes. Portable across products.
//! * [`export`] — the *proprietary* binary Export format. It is tagged with a
//!   product name and format version; `Import` refuses files produced by a
//!   different product or version, reproducing the restrictive constraint the
//!   paper calls out ("the same database product must exist in the source and
//!   in the data warehouse").

pub mod ascii {
    //! Pipe-delimited ASCII rows: `123|'text'|NULL|4.5`.
    //!
    //! Escapes: backslash-escape of `|`, `\n`, `\r` and `\` inside strings;
    //! NULL is the bare token `NULL`; strings are *not* quoted on disk (the
    //! schema drives parsing), matching classic loader control-file behaviour.

    use std::io::{BufRead, Write};

    use crate::error::{StorageError, StorageResult};
    use crate::record::Row;
    use crate::schema::Schema;
    use crate::value::{DataType, Value};

    const NULL_TOKEN: &str = "NULL";

    fn escape_into(s: &str, out: &mut String) {
        for c in s.chars() {
            match c {
                '|' => out.push_str("\\p"),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                c => out.push(c),
            }
        }
    }

    fn unescape(s: &str) -> StorageResult<String> {
        let mut out = String::with_capacity(s.len());
        let mut it = s.chars();
        while let Some(c) = it.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match it.next() {
                Some('p') => out.push('|'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                other => {
                    return Err(StorageError::Corrupt(format!(
                        "bad escape \\{} in ascii dump",
                        other.map(String::from).unwrap_or_default()
                    )))
                }
            }
        }
        Ok(out)
    }

    /// Format one row as a dump line (no trailing newline).
    pub fn format_row(row: &Row) -> String {
        let mut line = String::with_capacity(row.len() * 12);
        for (i, v) in row.values().iter().enumerate() {
            if i > 0 {
                line.push('|');
            }
            match v {
                Value::Null => line.push_str(NULL_TOKEN),
                Value::Int(x) => line.push_str(&x.to_string()),
                Value::Timestamp(x) => line.push_str(&x.to_string()),
                Value::Double(x) => line.push_str(&format!("{x:?}")),
                Value::Bool(b) => line.push_str(if *b { "true" } else { "false" }),
                Value::Str(s) => escape_into(s, &mut line),
            }
        }
        line
    }

    /// Parse one dump line against `schema`.
    pub fn parse_row(line: &str, schema: &Schema) -> StorageResult<Row> {
        // Split on unescaped '|'. Escapes never produce a bare '|', so a
        // plain split is correct.
        let fields: Vec<&str> = line.split('|').collect();
        if fields.len() != schema.len() {
            return Err(StorageError::Corrupt(format!(
                "ascii row has {} fields, schema has {} columns",
                fields.len(),
                schema.len()
            )));
        }
        let mut values = Vec::with_capacity(fields.len());
        for (field, col) in fields.iter().zip(schema.columns()) {
            if *field == NULL_TOKEN && col.data_type != DataType::Varchar {
                values.push(Value::Null);
                continue;
            }
            let v = match col.data_type {
                DataType::Int => Value::Int(
                    field
                        .parse()
                        .map_err(|_| StorageError::Corrupt(format!("bad INT field '{field}'")))?,
                ),
                DataType::Timestamp => Value::Timestamp(field.parse().map_err(|_| {
                    StorageError::Corrupt(format!("bad TIMESTAMP field '{field}'"))
                })?),
                DataType::Double => {
                    Value::Double(field.parse().map_err(|_| {
                        StorageError::Corrupt(format!("bad DOUBLE field '{field}'"))
                    })?)
                }
                DataType::Bool => match *field {
                    "true" => Value::Bool(true),
                    "false" => Value::Bool(false),
                    _ => return Err(StorageError::Corrupt(format!("bad BOOL field '{field}'"))),
                },
                DataType::Varchar => {
                    if *field == NULL_TOKEN {
                        // A string column storing the literal text "NULL" is
                        // indistinguishable; classic loaders have the same
                        // wart. Treat as SQL NULL only when nullable.
                        if col.nullable {
                            Value::Null
                        } else {
                            Value::Str(unescape(field)?)
                        }
                    } else {
                        Value::Str(unescape(field)?)
                    }
                }
            };
            values.push(v);
        }
        Ok(Row::new(values))
    }

    /// Stream rows to `w`, one line each. Returns the number of rows written.
    pub fn write_rows<'a>(
        w: &mut impl Write,
        rows: impl IntoIterator<Item = &'a Row>,
    ) -> StorageResult<u64> {
        let mut n = 0;
        for row in rows {
            writeln!(w, "{}", format_row(row))?;
            n += 1;
        }
        Ok(n)
    }

    /// Read every row from `r` against `schema`.
    pub fn read_rows(r: &mut impl BufRead, schema: &Schema) -> StorageResult<Vec<Row>> {
        let mut rows = Vec::new();
        let mut line = String::new();
        loop {
            line.clear();
            if r.read_line(&mut line)? == 0 {
                break;
            }
            let trimmed = line.trim_end_matches(['\n', '\r']);
            if trimmed.is_empty() {
                continue;
            }
            rows.push(parse_row(trimmed, schema)?);
        }
        Ok(rows)
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::schema::Column;

        fn schema() -> Schema {
            Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::new("name", DataType::Varchar),
                Column::new("price", DataType::Double),
                Column::new("ts", DataType::Timestamp),
                Column::new("live", DataType::Bool),
            ])
            .unwrap()
        }

        #[test]
        fn round_trip_plain() {
            let s = schema();
            let row = Row::new(vec![
                Value::Int(1),
                Value::Str("washer".into()),
                Value::Double(0.25),
                Value::Timestamp(123456),
                Value::Bool(true),
            ]);
            let line = format_row(&row);
            assert_eq!(parse_row(&line, &s).unwrap(), row);
        }

        #[test]
        fn round_trip_awkward_strings() {
            let s = schema();
            for text in ["a|b", "a\\b", "line1\nline2", "tab\there", "", "NULL-ish"] {
                let row = Row::new(vec![
                    Value::Int(1),
                    Value::Str(text.into()),
                    Value::Null,
                    Value::Null,
                    Value::Null,
                ]);
                let line = format_row(&row);
                assert!(!line.contains('\n'), "escaped line must be single-line");
                assert_eq!(parse_row(&line, &s).unwrap(), row, "text={text:?}");
            }
        }

        #[test]
        fn null_round_trips_for_non_string_columns() {
            let s = schema();
            let row = Row::new(vec![
                Value::Null,
                Value::Str("x".into()),
                Value::Null,
                Value::Null,
                Value::Null,
            ]);
            let line = format_row(&row);
            assert_eq!(parse_row(&line, &s).unwrap(), row);
        }

        #[test]
        fn rejects_wrong_arity_and_bad_fields() {
            let s = schema();
            assert!(parse_row("1|too|few", &s).is_err());
            assert!(parse_row("notanint|x|1.0|5|true", &s).is_err());
            assert!(parse_row("1|x|1.0|5|maybe", &s).is_err());
        }

        #[test]
        fn stream_round_trip() {
            let s = schema();
            let rows: Vec<Row> = (0..50)
                .map(|i| {
                    Row::new(vec![
                        Value::Int(i),
                        Value::Str(format!("part-{i}|x")),
                        Value::Double(i as f64 / 3.0),
                        Value::Timestamp(i * 1000),
                        Value::Bool(i % 2 == 0),
                    ])
                })
                .collect();
            let mut buf = Vec::new();
            assert_eq!(write_rows(&mut buf, &rows).unwrap(), 50);
            let back = read_rows(&mut &buf[..], &s).unwrap();
            assert_eq!(back, rows);
        }

        #[test]
        fn doubles_round_trip_exactly() {
            let s = schema();
            let row = Row::new(vec![
                Value::Int(0),
                Value::Str(String::new()),
                Value::Double(0.1 + 0.2),
                Value::Null,
                Value::Null,
            ]);
            let line = format_row(&row);
            assert_eq!(parse_row(&line, &s).unwrap(), row);
        }
    }
}

pub mod export {
    //! The proprietary binary Export format.
    //!
    //! Layout: magic, product tag, format version, schema string, row count,
    //! then length-prefixed binary rows, then an XOR-fold checksum. The
    //! product tag and version are verified by `Import`; see
    //! [`crate::error::StorageError::IncompatibleFormat`].

    use std::io::{Read, Write};

    use bytes::{Buf, BufMut};

    use crate::error::{StorageError, StorageResult};
    use crate::record::Row;
    use crate::schema::Schema;

    const MAGIC: &[u8; 4] = b"DFEX";

    /// Identifies the producing DBMS product and its export format version.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct ProductTag {
        pub product: String,
        pub version: u32,
    }

    impl ProductTag {
        pub fn new(product: impl Into<String>, version: u32) -> ProductTag {
            ProductTag {
                product: product.into(),
                version,
            }
        }
    }

    impl std::fmt::Display for ProductTag {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}/{}", self.product, self.version)
        }
    }

    fn checksum(acc: u64, bytes: &[u8]) -> u64 {
        // FNV-1a style fold; fast and good enough to detect torn dumps.
        let mut h = acc;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Streaming writer for an export dump.
    pub struct ExportWriter<W: Write> {
        out: W,
        rows: u64,
        sum: u64,
    }

    impl<W: Write> ExportWriter<W> {
        /// Write the header and return a writer ready for rows.
        pub fn new(mut out: W, tag: &ProductTag, schema: &Schema) -> StorageResult<Self> {
            let mut header = Vec::new();
            header.put_slice(MAGIC);
            let product = tag.product.as_bytes();
            header.put_u16(product.len() as u16);
            header.put_slice(product);
            header.put_u32(tag.version);
            let schema_s = schema.to_catalog_string();
            header.put_u32(schema_s.len() as u32);
            header.put_slice(schema_s.as_bytes());
            out.write_all(&header)?;
            Ok(ExportWriter {
                out,
                rows: 0,
                sum: checksum(0xcbf29ce484222325, &header),
            })
        }

        /// Append one row.
        pub fn write_row(&mut self, row: &Row) -> StorageResult<()> {
            let bytes = row.to_bytes();
            let mut frame = Vec::with_capacity(4 + bytes.len());
            frame.put_u32(bytes.len() as u32);
            frame.put_slice(&bytes);
            self.out.write_all(&frame)?;
            self.sum = checksum(self.sum, &frame);
            self.rows += 1;
            Ok(())
        }

        /// Write the trailer (row count + checksum) and flush.
        pub fn finish(mut self) -> StorageResult<u64> {
            let mut trailer = Vec::with_capacity(20);
            trailer.put_u32(u32::MAX); // row sentinel
            trailer.put_u64(self.rows);
            trailer.put_u64(self.sum);
            self.out.write_all(&trailer)?;
            self.out.flush()?;
            Ok(self.rows)
        }
    }

    /// Streaming reader for an export dump.
    pub struct ExportReader<R: Read> {
        input: R,
        pub tag: ProductTag,
        pub schema: Schema,
        sum: u64,
        done: bool,
    }

    impl<R: Read> ExportReader<R> {
        /// Read and validate the header. `expected` (when given) enforces the
        /// paper's same-product constraint.
        pub fn new(mut input: R, expected: Option<&ProductTag>) -> StorageResult<Self> {
            let mut magic = [0u8; 4];
            input.read_exact(&mut magic)?;
            if &magic != MAGIC {
                return Err(StorageError::Corrupt("not an export file".into()));
            }
            let mut sum = checksum(0xcbf29ce484222325, &magic);

            let read_bytes = |input: &mut R, n: usize, sum: &mut u64| -> StorageResult<Vec<u8>> {
                let mut buf = vec![0u8; n];
                input.read_exact(&mut buf)?;
                *sum = checksum(*sum, &buf);
                Ok(buf)
            };

            let len = {
                let b = read_bytes(&mut input, 2, &mut sum)?;
                u16::from_be_bytes([b[0], b[1]]) as usize
            };
            let product = String::from_utf8(read_bytes(&mut input, len, &mut sum)?)
                .map_err(|_| StorageError::Corrupt("product tag not UTF-8".into()))?;
            let version = {
                let b = read_bytes(&mut input, 4, &mut sum)?;
                u32::from_be_bytes(b.try_into().unwrap())
            };
            let tag = ProductTag { product, version };
            if let Some(exp) = expected {
                if *exp != tag {
                    return Err(StorageError::IncompatibleFormat {
                        expected: exp.to_string(),
                        found: tag.to_string(),
                    });
                }
            }
            let slen = {
                let b = read_bytes(&mut input, 4, &mut sum)?;
                u32::from_be_bytes(b.try_into().unwrap()) as usize
            };
            let schema_s = String::from_utf8(read_bytes(&mut input, slen, &mut sum)?)
                .map_err(|_| StorageError::Corrupt("schema not UTF-8".into()))?;
            let schema = Schema::from_catalog_string(&schema_s)?;
            Ok(ExportReader {
                input,
                tag,
                schema,
                sum,
                done: false,
            })
        }

        /// Read the next row, or `None` at the (validated) trailer.
        pub fn next_row(&mut self) -> StorageResult<Option<Row>> {
            if self.done {
                return Ok(None);
            }
            let mut lenb = [0u8; 4];
            self.input.read_exact(&mut lenb)?;
            let len = u32::from_be_bytes(lenb);
            if len == u32::MAX {
                // Trailer.
                let mut t = [0u8; 16];
                self.input.read_exact(&mut t)?;
                let mut buf = &t[..];
                let _rows = buf.get_u64();
                let sum = buf.get_u64();
                if sum != self.sum {
                    return Err(StorageError::Corrupt("export checksum mismatch".into()));
                }
                self.done = true;
                return Ok(None);
            }
            self.sum = checksum(self.sum, &lenb);
            let mut body = vec![0u8; len as usize];
            self.input.read_exact(&mut body)?;
            self.sum = checksum(self.sum, &body);
            Ok(Some(Row::from_bytes(&body)?))
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::schema::Column;
        use crate::value::{DataType, Value};

        fn schema() -> Schema {
            Schema::new(vec![
                Column::new("id", DataType::Int).primary_key(),
                Column::new("payload", DataType::Varchar),
            ])
            .unwrap()
        }

        fn tag() -> ProductTag {
            ProductTag::new("cotsdb", 3)
        }

        fn dump(rows: &[Row]) -> Vec<u8> {
            let mut buf = Vec::new();
            let mut w = ExportWriter::new(&mut buf, &tag(), &schema()).unwrap();
            for r in rows {
                w.write_row(r).unwrap();
            }
            w.finish().unwrap();
            buf
        }

        fn rows(n: i64) -> Vec<Row> {
            (0..n)
                .map(|i| Row::new(vec![Value::Int(i), Value::Str(format!("row {i}"))]))
                .collect()
        }

        #[test]
        fn round_trip() {
            let rs = rows(25);
            let buf = dump(&rs);
            let mut r = ExportReader::new(&buf[..], Some(&tag())).unwrap();
            assert_eq!(r.schema, schema());
            let mut back = Vec::new();
            while let Some(row) = r.next_row().unwrap() {
                back.push(row);
            }
            assert_eq!(back, rs);
        }

        #[test]
        fn empty_dump_round_trips() {
            let buf = dump(&[]);
            let mut r = ExportReader::new(&buf[..], None).unwrap();
            assert!(r.next_row().unwrap().is_none());
        }

        #[test]
        fn wrong_product_is_rejected() {
            let buf = dump(&rows(1));
            let other = ProductTag::new("otherdb", 3);
            match ExportReader::new(&buf[..], Some(&other)) {
                Err(StorageError::IncompatibleFormat { .. }) => {}
                Err(e) => panic!("wrong error: {e}"),
                Ok(_) => panic!("expected rejection"),
            }
        }

        #[test]
        fn wrong_version_is_rejected() {
            let buf = dump(&rows(1));
            let older = ProductTag::new("cotsdb", 2);
            match ExportReader::new(&buf[..], Some(&older)) {
                Err(StorageError::IncompatibleFormat { .. }) => {}
                Err(e) => panic!("wrong error: {e}"),
                Ok(_) => panic!("expected rejection"),
            }
        }

        #[test]
        fn corruption_is_detected_by_checksum() {
            let mut buf = dump(&rows(10));
            // Flip a byte in a row body (past the header).
            let idx = buf.len() - 30;
            buf[idx] ^= 0x5A;
            let mut r = ExportReader::new(&buf[..], Some(&tag())).unwrap();
            let mut result = Ok(());
            loop {
                match r.next_row() {
                    Ok(Some(_)) => continue,
                    Ok(None) => break,
                    Err(e) => {
                        result = Err(e);
                        break;
                    }
                }
            }
            assert!(result.is_err(), "corruption must surface as an error");
        }

        #[test]
        fn truncated_file_errors() {
            let buf = dump(&rows(10));
            let cut = &buf[..buf.len() - 5];
            let mut r = ExportReader::new(cut, Some(&tag())).unwrap();
            let mut errored = false;
            loop {
                match r.next_row() {
                    Ok(Some(_)) => continue,
                    Ok(None) => break,
                    Err(_) => {
                        errored = true;
                        break;
                    }
                }
            }
            assert!(errored);
        }

        #[test]
        fn not_an_export_file() {
            assert!(ExportReader::new(&b"GARBAGE!"[..], None).is_err());
        }
    }
}
