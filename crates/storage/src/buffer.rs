//! Clock-eviction buffer pool.
//!
//! All regular engine page access goes through here, which is what makes the
//! paper's cost distinctions observable: the transactional Import path pays
//! buffer-pool traffic and write-backs, while the ASCII Loader bypasses the
//! pool entirely and writes packed pages straight to disk.
//!
//! Pages are accessed under short closures (`with_page` / `with_page_mut`),
//! so frames are never held across calls and eviction never races with use.
//! Higher-level isolation is provided by the engine's table locks.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::error::{StorageError, StorageResult};
use crate::file::{DiskFile, FileId, PageId, PAGE_SIZE};
use crate::invariant;
use crate::page::SlottedPage;

/// Cumulative buffer-pool statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferPoolStats {
    /// Page requests satisfied from memory.
    pub hits: u64,
    /// Page requests that required a disk read.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Dirty pages written back (by eviction or flush).
    pub writebacks: u64,
}

struct Frame {
    id: PageId,
    page: SlottedPage,
    dirty: bool,
    referenced: bool,
}

struct PoolInner {
    frames: Vec<Option<Frame>>,
    map: HashMap<PageId, usize>,
    clock: usize,
}

/// A fixed-capacity page cache shared by every table and index file.
pub struct BufferPool {
    capacity: usize,
    files: RwLock<HashMap<FileId, Arc<DiskFile>>>,
    inner: Mutex<PoolInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    writebacks: AtomicU64,
}

impl BufferPool {
    /// Create a pool that caches at most `capacity` pages.
    pub fn new(capacity: usize) -> BufferPool {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            capacity,
            files: RwLock::new(HashMap::new()),
            inner: Mutex::new(PoolInner {
                frames: (0..capacity).map(|_| None).collect(),
                map: HashMap::new(),
                clock: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            writebacks: AtomicU64::new(0),
        }
    }

    /// Register the disk file backing `id`. Must be called before any page of
    /// that file is requested.
    pub fn register_file(&self, id: FileId, file: Arc<DiskFile>) {
        self.files.write().insert(id, file);
    }

    /// Forget a file (e.g. DROP TABLE). Cached pages are discarded unwritten,
    /// so callers must flush first if they care.
    pub fn deregister_file(&self, id: FileId) {
        self.files.write().remove(&id);
        let mut inner = self.inner.lock();
        let stale: Vec<PageId> = inner.map.keys().filter(|p| p.file == id).copied().collect();
        for pid in stale {
            if let Some(slot) = inner.map.remove(&pid) {
                inner.frames[slot] = None;
            }
        }
    }

    /// The registered disk file for `id`.
    pub fn file(&self, id: FileId) -> StorageResult<Arc<DiskFile>> {
        self.files
            .read()
            .get(&id)
            .cloned()
            .ok_or_else(|| StorageError::NotFound(format!("file {}", id.0)))
    }

    /// Snapshot of pool counters.
    pub fn stats(&self) -> BufferPoolStats {
        BufferPoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            writebacks: self.writebacks.load(Ordering::Relaxed),
        }
    }

    /// Reset counters (used between benchmark phases).
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.writebacks.store(0, Ordering::Relaxed);
    }

    fn locate(&self, inner: &mut PoolInner, pid: PageId) -> StorageResult<usize> {
        if let Some(&slot) = inner.map.get(&pid) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if let Some(f) = inner.frames[slot].as_mut() {
                f.referenced = true;
            }
            return Ok(slot);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let file = self.file(pid.file)?;
        let mut buf = vec![0u8; PAGE_SIZE];
        file.read_page(pid.page_no, &mut buf)?;
        let page = SlottedPage::from_bytes(&buf)?;
        let slot = self.find_victim(inner)?;
        inner.frames[slot] = Some(Frame {
            id: pid,
            page,
            dirty: false,
            referenced: true,
        });
        inner.map.insert(pid, slot);
        Ok(slot)
    }

    /// Find a free frame, evicting via the clock algorithm if necessary.
    fn find_victim(&self, inner: &mut PoolInner) -> StorageResult<usize> {
        if let Some(free) = inner.frames.iter().position(|f| f.is_none()) {
            return Ok(free);
        }
        // Clock sweep: clear reference bits until an unreferenced frame shows.
        for _ in 0..2 * self.capacity + 1 {
            let slot = inner.clock;
            inner.clock = (inner.clock + 1) % self.capacity;
            let evict = match inner.frames[slot].as_mut() {
                Some(f) if f.referenced => {
                    f.referenced = false;
                    false
                }
                Some(_) => true,
                None => return Ok(slot),
            };
            if evict {
                if let Some(frame) = inner.frames[slot].take() {
                    inner.map.remove(&frame.id);
                    let mut wrote_back = false;
                    if frame.dirty {
                        let file = self.file(frame.id.file)?;
                        file.write_page(frame.id.page_no, frame.page.as_bytes())?;
                        self.writebacks.fetch_add(1, Ordering::Relaxed);
                        wrote_back = true;
                    }
                    invariant!(
                        wrote_back == frame.dirty,
                        "clock eviction dropped dirty page {:?} without writeback",
                        frame.id
                    );
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                return Ok(slot);
            }
        }
        Err(StorageError::PoolExhausted)
    }

    /// Run `f` with shared access to the page.
    pub fn with_page<R>(&self, pid: PageId, f: impl FnOnce(&SlottedPage) -> R) -> StorageResult<R> {
        let mut inner = self.inner.lock();
        let slot = self.locate(&mut inner, pid)?;
        match inner.frames[slot].as_ref() {
            Some(frame) => Ok(f(&frame.page)),
            None => Err(StorageError::NotFound(format!("frame for page {pid:?}"))),
        }
    }

    /// Run `f` with exclusive access to the page; the page is marked dirty.
    pub fn with_page_mut<R>(
        &self,
        pid: PageId,
        f: impl FnOnce(&mut SlottedPage) -> R,
    ) -> StorageResult<R> {
        let mut inner = self.inner.lock();
        let slot = self.locate(&mut inner, pid)?;
        match inner.frames[slot].as_mut() {
            Some(frame) => {
                frame.dirty = true;
                Ok(f(&mut frame.page))
            }
            None => Err(StorageError::NotFound(format!("frame for page {pid:?}"))),
        }
    }

    /// Allocate a fresh page at the end of `file`, install it in the pool
    /// formatted as an empty slotted page, and return its id.
    pub fn allocate_page(&self, file_id: FileId) -> StorageResult<PageId> {
        let file = self.file(file_id)?;
        let page_no = file.allocate_page()?;
        let pid = PageId::new(file_id, page_no);
        let mut inner = self.inner.lock();
        let slot = self.find_victim(&mut inner)?;
        inner.frames[slot] = Some(Frame {
            id: pid,
            page: SlottedPage::new(),
            dirty: true,
            referenced: true,
        });
        inner.map.insert(pid, slot);
        Ok(pid)
    }

    /// Write back every dirty page of `file_id` (or all files when `None`).
    pub fn flush(&self, file_id: Option<FileId>) -> StorageResult<()> {
        let mut inner = self.inner.lock();
        for frame in inner.frames.iter_mut().flatten() {
            if frame.dirty && file_id.is_none_or(|f| frame.id.file == f) {
                let file = self.file(frame.id.file)?;
                file.write_page(frame.id.page_no, frame.page.as_bytes())?;
                frame.dirty = false;
                self.writebacks.fetch_add(1, Ordering::Relaxed);
            }
        }
        invariant!(
            inner
                .frames
                .iter()
                .flatten()
                .all(|fr| !fr.dirty || file_id.is_some_and(|f| fr.id.file != f)),
            "flush left a dirty page behind"
        );
        Ok(())
    }

    /// Flush everything and fsync every registered file.
    pub fn flush_and_sync_all(&self) -> StorageResult<()> {
        self.flush(None)?;
        for file in self.files.read().values() {
            file.sync()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(capacity: usize) -> (BufferPool, FileId, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "delta-pool-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pool.db");
        let _ = std::fs::remove_file(&path);
        let pool = BufferPool::new(capacity);
        let fid = FileId(1);
        pool.register_file(fid, Arc::new(DiskFile::open(&path).unwrap()));
        (pool, fid, path)
    }

    #[test]
    fn allocate_and_modify_round_trip() {
        let (pool, fid, _) = setup(4);
        let pid = pool.allocate_page(fid).unwrap();
        pool.with_page_mut(pid, |p| p.insert(b"data").unwrap())
            .unwrap();
        let got = pool
            .with_page(pid, |p| p.get(0).map(|r| r.to_vec()))
            .unwrap();
        assert_eq!(got.as_deref(), Some(&b"data"[..]));
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let (pool, fid, _) = setup(2);
        let mut pids = vec![];
        for i in 0..6 {
            let pid = pool.allocate_page(fid).unwrap();
            pool.with_page_mut(pid, |p| p.insert(format!("page-{i}").as_bytes()).unwrap())
                .unwrap();
            pids.push(pid);
        }
        // Earlier pages must have been evicted (pool holds 2) and written back.
        let s = pool.stats();
        assert!(s.evictions >= 4, "evictions: {}", s.evictions);
        assert!(s.writebacks >= 4, "writebacks: {}", s.writebacks);
        // And must read back correctly from disk.
        for (i, pid) in pids.iter().enumerate() {
            let got = pool
                .with_page(*pid, |p| p.get(0).map(|r| r.to_vec()))
                .unwrap();
            assert_eq!(got.unwrap(), format!("page-{i}").into_bytes());
        }
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let (pool, fid, _) = setup(4);
        let pid = pool.allocate_page(fid).unwrap();
        pool.with_page(pid, |_| ()).unwrap();
        pool.with_page(pid, |_| ()).unwrap();
        let s = pool.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 0);
    }

    #[test]
    fn flush_persists_without_eviction() {
        let (pool, fid, path) = setup(8);
        let pid = pool.allocate_page(fid).unwrap();
        pool.with_page_mut(pid, |p| p.insert(b"flushed").unwrap())
            .unwrap();
        pool.flush(Some(fid)).unwrap();
        // Re-open the file cold and check the bytes are there.
        let file = DiskFile::open(&path).unwrap();
        let mut buf = vec![0u8; PAGE_SIZE];
        file.read_page(pid.page_no, &mut buf).unwrap();
        let page = SlottedPage::from_bytes(&buf).unwrap();
        assert_eq!(page.get(0), Some(&b"flushed"[..]));
    }

    #[test]
    fn unknown_file_is_an_error() {
        let pool = BufferPool::new(2);
        let pid = PageId::new(FileId(99), 0);
        assert!(pool.with_page(pid, |_| ()).is_err());
    }

    #[test]
    fn deregister_discards_cached_pages() {
        let (pool, fid, _) = setup(4);
        let pid = pool.allocate_page(fid).unwrap();
        pool.deregister_file(fid);
        assert!(pool.with_page(pid, |_| ()).is_err());
    }

    #[test]
    fn concurrent_readers_and_writers_stay_consistent() {
        let (pool, fid, _) = setup(8);
        let pool = std::sync::Arc::new(pool);
        // Pre-allocate pages, one per worker.
        let pids: Vec<PageId> = (0..4).map(|_| pool.allocate_page(fid).unwrap()).collect();
        let mut handles = Vec::new();
        for (w, pid) in pids.iter().enumerate() {
            let pool = pool.clone();
            let pid = *pid;
            handles.push(std::thread::spawn(move || {
                for i in 0..200u32 {
                    pool.with_page_mut(pid, |p| {
                        p.insert(format!("w{w}-i{i}").as_bytes()).ok();
                    })
                    .unwrap();
                    let n = pool.with_page(pid, |p| p.live_count()).unwrap();
                    assert!(n > 0);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Every worker's page holds exactly its own records.
        for (w, pid) in pids.iter().enumerate() {
            let ok = pool
                .with_page(*pid, |p| {
                    p.iter()
                        .all(|(_, r)| r.starts_with(format!("w{w}-").as_bytes()))
                })
                .unwrap();
            assert!(ok, "worker {w} saw foreign data");
        }
    }

    #[test]
    fn reset_stats_zeroes() {
        let (pool, fid, _) = setup(4);
        let pid = pool.allocate_page(fid).unwrap();
        pool.with_page(pid, |_| ()).unwrap();
        pool.reset_stats();
        assert_eq!(pool.stats(), BufferPoolStats::default());
    }
}
