//! Sharded clock-eviction buffer pool with off-lock disk I/O.
//!
//! All regular engine page access goes through here, which is what makes the
//! paper's cost distinctions observable: the transactional Import path pays
//! buffer-pool traffic and write-backs, while the ASCII Loader bypasses the
//! pool entirely and writes packed pages straight to disk.
//!
//! Frames are partitioned by `PageId` hash into power-of-two shards, each
//! with its own mutex, frame array, page map, and clock hand, so concurrent
//! scans of different pages contend only when they land on the same shard.
//! Disk I/O never happens under a shard lock:
//!
//! * On a **miss** the lock is dropped around the read. The page id is
//!   claimed in the shard's in-flight table first; a concurrent reader of
//!   the same page joins the claim, fetches independently, and whoever
//!   re-locks first installs — the loser finds the page mapped and keeps
//!   the installed copy, discarding its own. A claim token detects the
//!   page having been installed *and evicted again* behind a slow read, in
//!   which case the stale bytes are thrown away and the read retried.
//! * On **eviction** the victim frame is taken out of the shard under the
//!   lock but written back after release. Its id stays in the in-flight
//!   table until the write completes, so a concurrent reader waits for the
//!   writeback (then re-reads from disk) rather than racing `write_page`.
//!
//! Pages are accessed under short closures (`with_page` / `with_page_mut`),
//! so frames are never held across calls. Higher-level isolation is provided
//! by the engine's table locks.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, MutexGuard, RwLock};

use crate::error::{StorageError, StorageResult};
use crate::file::{DiskFile, FileId, PageId, PAGE_SIZE};
use crate::invariant;
use crate::page::SlottedPage;

/// Bound on re-tries when every frame of a shard is pinned by in-flight I/O
/// (e.g. a flush snapshot of a fully dirty shard). Each retry yields, so the
/// pinning flush gets scheduled; only a genuinely undersized shard exhausts
/// the bound.
const VICTIM_RETRIES: usize = 10_000;

/// Cumulative buffer-pool statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferPoolStats {
    /// Page requests satisfied from memory.
    pub hits: u64,
    /// Page requests that required a disk read.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Dirty pages written back (by eviction or flush).
    pub writebacks: u64,
}

impl BufferPoolStats {
    /// Total page requests (hits + misses).
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of requests served from memory; `1.0` for an idle pool.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            1.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }
}

struct Frame {
    id: PageId,
    page: SlottedPage,
    dirty: bool,
    referenced: bool,
}

/// Why a page id sits in a shard's in-flight table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IoKind {
    /// A miss is fetching the page from disk off-lock.
    Read,
    /// An eviction or flush is writing the page out off-lock.
    Writeback,
}

/// An in-flight I/O registration. The token is unique per shard, which lets
/// a reader returning from disk verify its claim was held *continuously* —
/// a removed-and-recreated entry (page installed, dirtied, evicted again
/// behind the read) carries a different token and invalidates the bytes.
#[derive(Debug, Clone, Copy)]
struct IoEntry {
    kind: IoKind,
    token: u64,
}

/// A dirty victim handed out of a shard, to be written after the lock drops.
struct WritebackJob {
    pid: PageId,
    page: SlottedPage,
}

struct ShardInner {
    frames: Vec<Option<Frame>>,
    map: HashMap<PageId, usize>,
    clock: usize,
    /// Pages with disk I/O in progress outside the shard lock. Misses on a
    /// `Writeback` entry wait for it; misses on a `Read` entry join it.
    /// Frames whose id is registered here are never chosen as victims.
    in_flight: HashMap<PageId, IoEntry>,
    next_token: u64,
}

impl ShardInner {
    fn claim(&mut self, pid: PageId, kind: IoKind) -> u64 {
        let token = self.next_token;
        self.next_token += 1;
        self.in_flight.insert(pid, IoEntry { kind, token });
        token
    }
}

struct Shard {
    inner: Mutex<ShardInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    writebacks: AtomicU64,
}

impl Shard {
    fn with_frames(frames: usize) -> Shard {
        Shard {
            inner: Mutex::new(ShardInner {
                frames: (0..frames).map(|_| None).collect(),
                map: HashMap::new(),
                clock: 0,
                in_flight: HashMap::new(),
                next_token: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            writebacks: AtomicU64::new(0),
        }
    }

    fn stats(&self) -> BufferPoolStats {
        BufferPoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            writebacks: self.writebacks.load(Ordering::Relaxed),
        }
    }

    /// Atomically drain this shard's counters into zero, returning what was
    /// drained. `swap` makes a racing increment land either in the drained
    /// epoch or the fresh one — never in neither.
    fn drain_stats(&self) -> BufferPoolStats {
        BufferPoolStats {
            hits: self.hits.swap(0, Ordering::Relaxed),
            misses: self.misses.swap(0, Ordering::Relaxed),
            evictions: self.evictions.swap(0, Ordering::Relaxed),
            writebacks: self.writebacks.swap(0, Ordering::Relaxed),
        }
    }
}

/// Default shard count: the next power of two at or above the machine's
/// available parallelism.
fn default_shards() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .next_power_of_two()
}

/// A fixed-capacity page cache shared by every table and index file,
/// partitioned into independently locked shards.
pub struct BufferPool {
    shards: Vec<Shard>,
    shard_mask: u64,
    files: RwLock<HashMap<FileId, Arc<DiskFile>>>,
}

impl BufferPool {
    /// Create a pool that caches at most `capacity` pages, sharded for the
    /// machine's available parallelism.
    pub fn new(capacity: usize) -> BufferPool {
        Self::with_shards(capacity, default_shards())
    }

    /// Create a pool with an explicit shard count. The count is rounded up
    /// to a power of two and capped so every shard holds at least one frame;
    /// `0` (and `1`) mean a single shard. Capacity is divided across shards,
    /// rounding up.
    pub fn with_shards(capacity: usize, shards: usize) -> BufferPool {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        let shards = shards
            .max(1)
            .next_power_of_two()
            .min(capacity.next_power_of_two());
        let per_shard = capacity.div_ceil(shards);
        BufferPool {
            shards: (0..shards).map(|_| Shard::with_frames(per_shard)).collect(),
            shard_mask: shards as u64 - 1,
            files: RwLock::new(HashMap::new()),
        }
    }

    /// Number of shards the pool was built with.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a page id hashes to: splitmix64 finalizer over the packed
    /// id, cheap and well mixed so consecutive pages of one file spread out.
    fn shard_index(&self, pid: PageId) -> usize {
        let mut x = ((pid.file.0 as u64) << 32) | pid.page_no as u64;
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        (x & self.shard_mask) as usize
    }

    /// Register the disk file backing `id`. Must be called before any page of
    /// that file is requested.
    pub fn register_file(&self, id: FileId, file: Arc<DiskFile>) {
        self.files.write().insert(id, file);
    }

    /// Forget a file (e.g. DROP TABLE). Cached pages are discarded unwritten,
    /// so callers must flush first if they care; an eviction writeback caught
    /// mid-air discards its page the same way.
    pub fn deregister_file(&self, id: FileId) {
        self.files.write().remove(&id);
        for shard in &self.shards {
            let mut inner = shard.inner.lock();
            let stale: Vec<PageId> = inner.map.keys().filter(|p| p.file == id).copied().collect();
            for pid in stale {
                if let Some(slot) = inner.map.remove(&pid) {
                    inner.frames[slot] = None;
                }
            }
            drop(inner);
        }
    }

    /// The registered disk file for `id`.
    pub fn file(&self, id: FileId) -> StorageResult<Arc<DiskFile>> {
        self.files
            .read()
            .get(&id)
            .cloned()
            .ok_or_else(|| StorageError::NotFound(format!("file {}", id.0)))
    }

    /// Aggregated counters across every shard.
    pub fn stats(&self) -> BufferPoolStats {
        let mut total = BufferPoolStats::default();
        for s in self.shards.iter().map(Shard::stats) {
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
            total.writebacks += s.writebacks;
        }
        total
    }

    /// Per-shard counter snapshots, indexed by shard number (for lock-balance
    /// reporting).
    pub fn shard_stats(&self) -> Vec<BufferPoolStats> {
        self.shards.iter().map(Shard::stats).collect()
    }

    /// Zero every per-shard counter and return the drained totals. Each
    /// counter is drained with an atomic swap, so an access racing the reset
    /// lands either in the returned totals or in the fresh epoch — counts are
    /// never lost between benchmark phases.
    pub fn reset_stats(&self) -> BufferPoolStats {
        let mut total = BufferPoolStats::default();
        for s in self.shards.iter().map(Shard::drain_stats) {
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
            total.writebacks += s.writebacks;
        }
        total
    }

    /// Run `f` with shared access to the page.
    pub fn with_page<R>(&self, pid: PageId, f: impl FnOnce(&SlottedPage) -> R) -> StorageResult<R> {
        self.with_frame(pid, false, |frame| f(&frame.page))
    }

    /// Run `f` with exclusive access to the page; the page is marked dirty.
    pub fn with_page_mut<R>(
        &self,
        pid: PageId,
        f: impl FnOnce(&mut SlottedPage) -> R,
    ) -> StorageResult<R> {
        self.with_frame(pid, true, |frame| f(&mut frame.page))
    }

    /// Locate `pid` (reading it from disk outside the shard lock on a miss)
    /// and run `f` on its frame under the lock.
    fn with_frame<R>(
        &self,
        pid: PageId,
        mark_dirty: bool,
        f: impl FnOnce(&mut Frame) -> R,
    ) -> StorageResult<R> {
        let idx = self.shard_index(pid);
        let shard = &self.shards[idx];
        // Our off-lock disk read, and the (token, we_created_it) claim
        // covering it.
        let mut ours: Option<SlottedPage> = None;
        let mut covering: Option<(u64, bool)> = None;
        let mut counted_miss = false;
        loop {
            let mut inner = shard.inner.lock();
            if let Some(&slot) = inner.map.get(&pid) {
                // Mapped: a plain hit, or a concurrent reader won the install
                // race while we were at the disk — keep theirs, ours is
                // dropped on return.
                if !counted_miss {
                    shard.hits.fetch_add(1, Ordering::Relaxed);
                }
                let Some(frame) = inner.frames[slot].as_mut() else {
                    return Err(StorageError::NotFound(format!("frame for page {pid}")));
                };
                frame.referenced = true;
                if mark_dirty {
                    frame.dirty = true;
                }
                return Ok(f(frame));
            }
            let entry = inner.in_flight.get(&pid).copied();
            if let Some(page) = ours.take() {
                let intact = matches!(
                    (entry, covering),
                    (Some(e), Some((token, _))) if e.kind == IoKind::Read && e.token == token
                );
                if intact {
                    // The claim held for the whole read: no install/evict
                    // cycle can have run behind it, the bytes are current.
                    return self.install_and_run(shard, idx, inner, pid, page, mark_dirty, f);
                }
                // The covering claim vanished (its creator erred out, or the
                // page was installed and evicted again behind our read): the
                // bytes may be stale. Start over.
                covering = None;
                drop(inner);
                std::thread::yield_now();
                continue;
            }
            match entry {
                Some(e) if e.kind == IoKind::Read => {
                    // Join the in-flight read: fetch independently; whoever
                    // re-locks first installs, the other keeps the winner's.
                    covering = Some((e.token, false));
                }
                Some(_) => {
                    // An eviction or flush is writing this page out. Wait for
                    // it so the re-read cannot race the write underneath.
                    drop(inner);
                    std::thread::yield_now();
                    continue;
                }
                None => {
                    let token = inner.claim(pid, IoKind::Read);
                    covering = Some((token, true));
                }
            }
            if !counted_miss {
                shard.misses.fetch_add(1, Ordering::Relaxed);
                counted_miss = true;
            }
            drop(inner);
            match self.read_from_disk(pid) {
                Ok(page) => ours = Some(page),
                Err(e) => {
                    // Only the claim's creator tears it down; a joiner's
                    // failure must not strand the creator's install.
                    if let Some((token, true)) = covering {
                        self.release_claim(shard, pid, token);
                    }
                    return Err(e);
                }
            }
        }
    }

    fn read_from_disk(&self, pid: PageId) -> StorageResult<SlottedPage> {
        let file = self.file(pid.file)?;
        let mut buf = vec![0u8; PAGE_SIZE];
        file.read_page(pid.page_no, &mut buf)?;
        SlottedPage::from_bytes(&buf)
    }

    /// Remove our read claim after a failed disk read, unless a racer already
    /// consumed it (or replaced it) — tokens disambiguate.
    fn release_claim(&self, shard: &Shard, pid: PageId, token: u64) {
        let mut inner = shard.inner.lock();
        if inner.in_flight.get(&pid).is_some_and(|e| e.token == token) {
            inner.in_flight.remove(&pid);
        }
        drop(inner);
    }

    /// Install `page` as `pid` (consuming any read claim), run `f` on the
    /// fresh frame, then perform the displaced victim's writeback — after the
    /// guard is released.
    #[allow(clippy::too_many_arguments)] // the install primitive threads the held guard plus full page context
    fn install_and_run<'a, R>(
        &self,
        shard: &'a Shard,
        idx: usize,
        mut inner: MutexGuard<'a, ShardInner>,
        pid: PageId,
        page: SlottedPage,
        dirty: bool,
        f: impl FnOnce(&mut Frame) -> R,
    ) -> StorageResult<R> {
        let mut retries = 0usize;
        let (slot, job) = loop {
            match Self::take_victim(shard, &mut inner)? {
                Some(found) => break found,
                None => {
                    // Every frame is pinned by in-flight I/O (a flush
                    // snapshot of a fully dirty shard): let it drain.
                    drop(inner);
                    if retries >= VICTIM_RETRIES {
                        return Err(StorageError::PoolExhausted);
                    }
                    retries += 1;
                    std::thread::yield_now();
                    inner = shard.inner.lock();
                }
            }
        };
        invariant!(
            self.shard_index(pid) == idx,
            "page {} installing into shard {} but hashes to shard {}",
            pid,
            idx,
            self.shard_index(pid)
        );
        inner.in_flight.remove(&pid);
        inner.frames[slot] = Some(Frame {
            id: pid,
            page,
            dirty,
            referenced: true,
        });
        inner.map.insert(pid, slot);
        let Some(frame) = inner.frames[slot].as_mut() else {
            return Err(StorageError::NotFound(format!("frame for page {pid}")));
        };
        let result = f(frame);
        drop(inner);
        // The displaced dirty page (if any) is written back only now, with no
        // shard lock held; its in-flight entry parks concurrent readers.
        if let Some(job) = job {
            self.complete_writeback(shard, job)?;
        }
        Ok(result)
    }

    /// Find a frame to install into: a free slot, or a clock victim. A dirty
    /// victim is detached into a [`WritebackJob`] and its id registered
    /// in-flight; the caller writes it out after releasing the lock.
    /// `Ok(None)` means every candidate is pinned by in-flight I/O — a
    /// transient state the caller should wait out.
    fn take_victim(
        shard: &Shard,
        inner: &mut ShardInner,
    ) -> StorageResult<Option<(usize, Option<WritebackJob>)>> {
        if let Some(free) = inner.frames.iter().position(|f| f.is_none()) {
            return Ok(Some((free, None)));
        }
        let cap = inner.frames.len();
        let mut saw_pinned = false;
        // Clock sweep: clear reference bits until an unreferenced frame shows.
        for _ in 0..2 * cap + 1 {
            let slot = inner.clock;
            inner.clock = (inner.clock + 1) % cap;
            let pinned = inner.frames[slot]
                .as_ref()
                .is_some_and(|fr| inner.in_flight.contains_key(&fr.id));
            if pinned {
                saw_pinned = true;
                continue;
            }
            let evict = match inner.frames[slot].as_mut() {
                Some(fr) if fr.referenced => {
                    fr.referenced = false;
                    false
                }
                Some(_) => true,
                None => return Ok(Some((slot, None))),
            };
            if evict {
                let Some(frame) = inner.frames[slot].take() else {
                    continue;
                };
                inner.map.remove(&frame.id);
                shard.evictions.fetch_add(1, Ordering::Relaxed);
                let job = if frame.dirty {
                    inner.claim(frame.id, IoKind::Writeback);
                    Some(WritebackJob {
                        pid: frame.id,
                        page: frame.page,
                    })
                } else {
                    None
                };
                return Ok(Some((slot, job)));
            }
        }
        if saw_pinned {
            Ok(None)
        } else {
            Err(StorageError::PoolExhausted)
        }
    }

    /// Write an evicted dirty page out and clear its in-flight entry.
    fn complete_writeback(&self, shard: &Shard, job: WritebackJob) -> StorageResult<()> {
        let mut wrote = false;
        let result = match self.file(job.pid.file) {
            Ok(file) => file
                .write_page(job.pid.page_no, job.page.as_bytes())
                .map(|()| wrote = true),
            // The file vanished (DROP TABLE won the race): discard the page
            // unwritten, per the deregister_file contract.
            Err(StorageError::NotFound(_)) => Ok(()),
            Err(e) => Err(e),
        };
        if wrote {
            shard.writebacks.fetch_add(1, Ordering::Relaxed);
        }
        let mut inner = shard.inner.lock();
        inner.in_flight.remove(&job.pid);
        drop(inner);
        result
    }

    /// Allocate a fresh page at the end of `file`, install it in the pool
    /// formatted as an empty slotted page, and return its id.
    pub fn allocate_page(&self, file_id: FileId) -> StorageResult<PageId> {
        let file = self.file(file_id)?;
        let page_no = file.allocate_page()?;
        let pid = PageId::new(file_id, page_no);
        let idx = self.shard_index(pid);
        let shard = &self.shards[idx];
        let inner = shard.inner.lock();
        invariant!(
            !inner.map.contains_key(&pid),
            "freshly allocated page {} already cached",
            pid
        );
        self.install_and_run(shard, idx, inner, pid, SlottedPage::new(), true, |_| ())?;
        Ok(pid)
    }

    /// Write back every dirty page of `file_id` (or all files when `None`).
    ///
    /// Per shard: wait out in-flight eviction writebacks of target pages
    /// (their frames are already gone, only entry completion proves their
    /// bytes reached disk), then snapshot all dirty target frames under the
    /// lock — marking them clean and pinning them in-flight — and write the
    /// snapshots with the lock released. A page re-dirtied mid-write keeps
    /// its snapshot consistent and stays dirty for the next flush; a write
    /// failure re-marks its page dirty so a later flush retries.
    pub fn flush(&self, file_id: Option<FileId>) -> StorageResult<()> {
        for shard in &self.shards {
            self.flush_shard(shard, file_id)?;
        }
        Ok(())
    }

    fn flush_shard(&self, shard: &Shard, file_id: Option<FileId>) -> StorageResult<()> {
        let targeted = |pid: &PageId| file_id.is_none_or(|f| pid.file == f);
        let mut pending: Vec<(PageId, Vec<u8>)> = Vec::new();
        loop {
            let mut inner = shard.inner.lock();
            let busy = inner
                .in_flight
                .iter()
                .any(|(p, e)| e.kind == IoKind::Writeback && targeted(p));
            if busy {
                drop(inner);
                std::thread::yield_now();
                continue;
            }
            let ShardInner {
                frames,
                in_flight,
                next_token,
                ..
            } = &mut *inner;
            for frame in frames.iter_mut().flatten() {
                if frame.dirty && targeted(&frame.id) {
                    frame.dirty = false;
                    let token = *next_token;
                    *next_token += 1;
                    in_flight.insert(
                        frame.id,
                        IoEntry {
                            kind: IoKind::Writeback,
                            token,
                        },
                    );
                    pending.push((frame.id, frame.page.as_bytes().to_vec()));
                }
            }
            break;
        }
        // Write the snapshots off-lock; reads (and even re-dirtying writes)
        // of these pages proceed meanwhile via their still-mapped frames.
        let mut first_err: Option<StorageError> = None;
        let mut failed: Vec<PageId> = Vec::new();
        for (pid, bytes) in &pending {
            let mut wrote = false;
            let write = match self.file(pid.file) {
                Ok(file) => file.write_page(pid.page_no, bytes).map(|()| wrote = true),
                // Dropped concurrently: discard unwritten.
                Err(StorageError::NotFound(_)) => Ok(()),
                Err(e) => Err(e),
            };
            if wrote {
                shard.writebacks.fetch_add(1, Ordering::Relaxed);
            }
            if let Err(e) = write {
                failed.push(*pid);
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
        let mut inner = shard.inner.lock();
        for (pid, _) in &pending {
            inner.in_flight.remove(pid);
        }
        for pid in &failed {
            if let Some(&slot) = inner.map.get(pid) {
                if let Some(frame) = inner.frames[slot].as_mut() {
                    frame.dirty = true;
                }
            }
        }
        if first_err.is_none() {
            invariant!(
                inner
                    .frames
                    .iter()
                    .flatten()
                    .all(|fr| !(fr.dirty && targeted(&fr.id))),
                "flush left a dirty page behind"
            );
        }
        drop(inner);
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Flush everything, wait out straggling eviction writebacks, and fsync
    /// every registered file, so all pool contents are durable on return.
    pub fn flush_and_sync_all(&self) -> StorageResult<()> {
        self.flush(None)?;
        // Evictions racing the flush may still hold writeback jobs; drain
        // them so their pages are covered by the syncs below.
        for shard in &self.shards {
            loop {
                let inner = shard.inner.lock();
                let busy = inner
                    .in_flight
                    .values()
                    .any(|e| e.kind == IoKind::Writeback);
                drop(inner);
                if !busy {
                    break;
                }
                std::thread::yield_now();
            }
        }
        // Clone the handles out so no fsync runs under the files-map lock
        // (file registration would otherwise stall behind slow disks).
        let files: Vec<Arc<DiskFile>> = self.files.read().values().cloned().collect();
        for file in files {
            file.sync()?;
        }
        self.check_invariants();
        Ok(())
    }

    /// Structural invariants, checked at `flush_and_sync_all` return: every
    /// cached page sits in exactly the shard its hash selects, no page id is
    /// cached in two shards, map entries point at matching frames, and no
    /// eviction writeback is still in flight.
    #[cfg(feature = "invariants")]
    fn check_invariants(&self) {
        let mut seen: std::collections::HashSet<PageId> = std::collections::HashSet::new();
        for (idx, shard) in self.shards.iter().enumerate() {
            let inner = shard.inner.lock();
            for (pid, &slot) in &inner.map {
                invariant!(
                    self.shard_index(*pid) == idx,
                    "page {} cached in shard {} but hashes to shard {}",
                    pid,
                    idx,
                    self.shard_index(*pid)
                );
                invariant!(seen.insert(*pid), "page {} cached in two shards", pid);
                invariant!(
                    inner
                        .frames
                        .get(slot)
                        .and_then(|f| f.as_ref())
                        .is_some_and(|f| f.id == *pid),
                    "map entry for page {} points at a foreign frame",
                    pid
                );
            }
            invariant!(
                !inner
                    .in_flight
                    .values()
                    .any(|e| e.kind == IoKind::Writeback),
                "eviction writeback still in flight at flush_and_sync_all return"
            );
            drop(inner);
        }
    }

    #[cfg(not(feature = "invariants"))]
    fn check_invariants(&self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(capacity: usize) -> (BufferPool, FileId, std::path::PathBuf) {
        setup_sharded(capacity, 0)
    }

    fn setup_sharded(capacity: usize, shards: usize) -> (BufferPool, FileId, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "delta-pool-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pool.db");
        let _ = std::fs::remove_file(&path);
        let pool = if shards == 0 {
            BufferPool::new(capacity)
        } else {
            BufferPool::with_shards(capacity, shards)
        };
        let fid = FileId(1);
        pool.register_file(fid, Arc::new(DiskFile::open(&path).unwrap()));
        (pool, fid, path)
    }

    #[test]
    fn allocate_and_modify_round_trip() {
        let (pool, fid, _) = setup(4);
        let pid = pool.allocate_page(fid).unwrap();
        pool.with_page_mut(pid, |p| p.insert(b"data").unwrap())
            .unwrap();
        let got = pool
            .with_page(pid, |p| p.get(0).map(|r| r.to_vec()))
            .unwrap();
        assert_eq!(got.as_deref(), Some(&b"data"[..]));
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let (pool, fid, _) = setup(2);
        let mut pids = vec![];
        for i in 0..6 {
            let pid = pool.allocate_page(fid).unwrap();
            pool.with_page_mut(pid, |p| p.insert(format!("page-{i}").as_bytes()).unwrap())
                .unwrap();
            pids.push(pid);
        }
        // Earlier pages must have been evicted (pool holds 2) and written back.
        let s = pool.stats();
        assert!(s.evictions >= 4, "evictions: {}", s.evictions);
        assert!(s.writebacks >= 4, "writebacks: {}", s.writebacks);
        // And must read back correctly from disk.
        for (i, pid) in pids.iter().enumerate() {
            let got = pool
                .with_page(*pid, |p| p.get(0).map(|r| r.to_vec()))
                .unwrap();
            assert_eq!(got.unwrap(), format!("page-{i}").into_bytes());
        }
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let (pool, fid, _) = setup(4);
        let pid = pool.allocate_page(fid).unwrap();
        pool.with_page(pid, |_| ()).unwrap();
        pool.with_page(pid, |_| ()).unwrap();
        let s = pool.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 0);
    }

    #[test]
    fn flush_persists_without_eviction() {
        let (pool, fid, path) = setup(8);
        let pid = pool.allocate_page(fid).unwrap();
        pool.with_page_mut(pid, |p| p.insert(b"flushed").unwrap())
            .unwrap();
        pool.flush(Some(fid)).unwrap();
        // Re-open the file cold and check the bytes are there.
        let file = DiskFile::open(&path).unwrap();
        let mut buf = vec![0u8; PAGE_SIZE];
        file.read_page(pid.page_no, &mut buf).unwrap();
        let page = SlottedPage::from_bytes(&buf).unwrap();
        assert_eq!(page.get(0), Some(&b"flushed"[..]));
    }

    #[test]
    fn unknown_file_is_an_error() {
        let pool = BufferPool::new(2);
        let pid = PageId::new(FileId(99), 0);
        assert!(pool.with_page(pid, |_| ()).is_err());
    }

    #[test]
    fn deregister_discards_cached_pages() {
        let (pool, fid, _) = setup(4);
        let pid = pool.allocate_page(fid).unwrap();
        pool.deregister_file(fid);
        assert!(pool.with_page(pid, |_| ()).is_err());
    }

    #[test]
    fn concurrent_readers_and_writers_stay_consistent() {
        let (pool, fid, _) = setup_sharded(8, 4);
        let pool = std::sync::Arc::new(pool);
        // Pre-allocate pages, one per worker.
        let pids: Vec<PageId> = (0..4).map(|_| pool.allocate_page(fid).unwrap()).collect();
        let mut handles = Vec::new();
        for (w, pid) in pids.iter().enumerate() {
            let pool = pool.clone();
            let pid = *pid;
            handles.push(std::thread::spawn(move || {
                for i in 0..200u32 {
                    pool.with_page_mut(pid, |p| {
                        p.insert(format!("w{w}-i{i}").as_bytes()).ok();
                    })
                    .unwrap();
                    let n = pool.with_page(pid, |p| p.live_count()).unwrap();
                    assert!(n > 0);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Every worker's page holds exactly its own records.
        for (w, pid) in pids.iter().enumerate() {
            let ok = pool
                .with_page(*pid, |p| {
                    p.iter()
                        .all(|(_, r)| r.starts_with(format!("w{w}-").as_bytes()))
                })
                .unwrap();
            assert!(ok, "worker {w} saw foreign data");
        }
    }

    #[test]
    fn reset_stats_drains_and_zeroes() {
        let (pool, fid, _) = setup(4);
        let pid = pool.allocate_page(fid).unwrap();
        pool.with_page(pid, |_| ()).unwrap();
        let drained = pool.reset_stats();
        assert_eq!(drained.hits, 1, "drained totals carry the old epoch");
        assert_eq!(pool.stats(), BufferPoolStats::default());
    }

    #[test]
    fn shard_count_is_clamped_to_capacity_and_pow2() {
        assert_eq!(BufferPool::with_shards(64, 0).shard_count(), 1);
        assert_eq!(BufferPool::with_shards(64, 1).shard_count(), 1);
        assert_eq!(BufferPool::with_shards(64, 3).shard_count(), 4);
        assert_eq!(BufferPool::with_shards(64, 8).shard_count(), 8);
        assert_eq!(BufferPool::with_shards(2, 64).shard_count(), 2);
    }

    #[test]
    fn pages_spread_across_shards() {
        let (pool, fid, _) = setup_sharded(64, 4);
        for _ in 0..32 {
            let pid = pool.allocate_page(fid).unwrap();
            pool.with_page(pid, |_| ()).unwrap();
        }
        let per_shard = pool.shard_stats();
        assert_eq!(per_shard.len(), 4);
        let busy = per_shard.iter().filter(|s| s.accesses() > 0).count();
        assert!(busy >= 2, "32 pages all hashed into {busy} shard(s)");
        // Per-shard counters must aggregate exactly to the pool totals.
        let total: u64 = per_shard.iter().map(|s| s.accesses()).sum();
        assert_eq!(total, pool.stats().accesses());
    }

    #[test]
    fn stats_survive_heavy_concurrent_resets() {
        // Readers hammer one page while another thread drains the counters;
        // every access must land in exactly one epoch.
        let (pool, fid, _) = setup(4);
        let pool = std::sync::Arc::new(pool);
        let pid = pool.allocate_page(fid).unwrap();
        const READERS: usize = 4;
        const ACCESSES: usize = 500;
        let drained = std::sync::Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..READERS {
                let pool = pool.clone();
                scope.spawn(move || {
                    for _ in 0..ACCESSES {
                        pool.with_page(pid, |_| ()).unwrap();
                    }
                });
            }
            let pool = pool.clone();
            let drained = drained.clone();
            scope.spawn(move || {
                for _ in 0..50 {
                    let d = pool.reset_stats();
                    drained.fetch_add(d.accesses(), Ordering::Relaxed);
                    std::thread::yield_now();
                }
            });
        });
        let total = drained.load(Ordering::Relaxed) + pool.stats().accesses();
        // The allocate_page counts nothing; every with_page is one access.
        assert_eq!(total, (READERS * ACCESSES) as u64);
    }
}
