//! Heap files: unordered record storage over the buffer pool.
//!
//! A heap file is a sequence of slotted pages belonging to one table. Records
//! are addressed by [`RecordId`] (page number + slot). Inserts append to the
//! most recently non-full page; space freed by deletes is reused within each
//! page via dead-slot reuse and compaction (a full free-space map is out of
//! scope — the paper's workloads are insert/scan heavy).

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use crate::buffer::BufferPool;
use crate::error::{StorageError, StorageResult};
use crate::file::{FileId, PageId};

/// Address of a record within one heap file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId {
    pub page_no: u32,
    pub slot: u16,
}

impl RecordId {
    pub fn new(page_no: u32, slot: u16) -> RecordId {
        RecordId { page_no, slot }
    }
}

impl std::fmt::Display for RecordId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})", self.page_no, self.slot)
    }
}

/// Unordered record storage for one table or delta log.
pub struct HeapFile {
    pool: Arc<BufferPool>,
    file_id: FileId,
    /// Page most likely to have room for the next insert.
    insert_hint: AtomicU32,
}

impl HeapFile {
    /// Attach to (already registered) `file_id` in `pool`.
    pub fn new(pool: Arc<BufferPool>, file_id: FileId) -> HeapFile {
        HeapFile {
            pool,
            file_id,
            insert_hint: AtomicU32::new(u32::MAX),
        }
    }

    /// The file id this heap stores into.
    pub fn file_id(&self) -> FileId {
        self.file_id
    }

    /// Number of pages currently allocated.
    pub fn page_count(&self) -> StorageResult<u32> {
        Ok(self.pool.file(self.file_id)?.page_count())
    }

    fn pid(&self, page_no: u32) -> PageId {
        PageId::new(self.file_id, page_no)
    }

    /// Insert a record, returning its id.
    pub fn insert(&self, record: &[u8]) -> StorageResult<RecordId> {
        let pages = self.page_count()?;
        // Try the hinted page first, then the last page, then allocate.
        let hint = self.insert_hint.load(Ordering::Relaxed);
        let mut candidates = Vec::with_capacity(2);
        if hint != u32::MAX && hint < pages {
            candidates.push(hint);
        }
        if pages > 0 && Some(pages - 1) != candidates.first().copied() {
            candidates.push(pages - 1);
        }
        for page_no in candidates {
            let result = self
                .pool
                .with_page_mut(self.pid(page_no), |p| p.insert(record))?;
            match result {
                Ok(slot) => {
                    self.insert_hint.store(page_no, Ordering::Relaxed);
                    return Ok(RecordId::new(page_no, slot));
                }
                Err(StorageError::PageFull) => continue,
                Err(e) => return Err(e),
            }
        }
        let pid = self.pool.allocate_page(self.file_id)?;
        let slot = self.pool.with_page_mut(pid, |p| p.insert(record))??;
        self.insert_hint.store(pid.page_no, Ordering::Relaxed);
        Ok(RecordId::new(pid.page_no, slot))
    }

    /// Fetch the record at `rid`, or `None` if it was deleted.
    pub fn get(&self, rid: RecordId) -> StorageResult<Option<Vec<u8>>> {
        if rid.page_no >= self.page_count()? {
            return Ok(None);
        }
        self.pool.with_page(self.pid(rid.page_no), |p| {
            p.get(rid.slot).map(|r| r.to_vec())
        })
    }

    /// Delete the record at `rid`.
    pub fn delete(&self, rid: RecordId) -> StorageResult<()> {
        self.pool
            .with_page_mut(self.pid(rid.page_no), |p| p.delete(rid.slot))?
    }

    /// Replace the record at `rid`. If it no longer fits its page, the record
    /// moves; the (possibly new) id is returned.
    pub fn update(&self, rid: RecordId, record: &[u8]) -> StorageResult<RecordId> {
        let in_place = self
            .pool
            .with_page_mut(self.pid(rid.page_no), |p| p.update(rid.slot, record))?;
        match in_place {
            Ok(()) => Ok(rid),
            Err(StorageError::PageFull) => {
                self.delete(rid)?;
                self.insert(record)
            }
            Err(e) => Err(e),
        }
    }

    /// Visit every live record as `(rid, bytes)`, page at a time, in storage
    /// order. The callback may not re-enter the heap (pool pages are latched
    /// for the duration of each page visit).
    pub fn for_each(
        &self,
        mut f: impl FnMut(RecordId, &[u8]) -> StorageResult<()>,
    ) -> StorageResult<()> {
        let pages = self.page_count()?;
        for page_no in 0..pages {
            // Copy the page's live records out, then run the callback without
            // holding the pool lock.
            let records: Vec<(u16, Vec<u8>)> = self.pool.with_page(self.pid(page_no), |p| {
                p.iter().map(|(s, r)| (s, r.to_vec())).collect()
            })?;
            for (slot, bytes) in records {
                f(RecordId::new(page_no, slot), &bytes)?;
            }
        }
        Ok(())
    }

    /// Collect every live record. Convenience for tests and small tables.
    pub fn scan_all(&self) -> StorageResult<Vec<(RecordId, Vec<u8>)>> {
        let mut out = Vec::new();
        self.for_each(|rid, bytes| {
            out.push((rid, bytes.to_vec()));
            Ok(())
        })?;
        Ok(out)
    }

    /// Number of live records (full scan).
    pub fn live_count(&self) -> StorageResult<usize> {
        let mut n = 0;
        self.for_each(|_, _| {
            n += 1;
            Ok(())
        })?;
        Ok(n)
    }

    /// Drop every record and page (used by the Loader's REPLACE mode).
    pub fn truncate(&self) -> StorageResult<()> {
        self.pool.flush(Some(self.file_id))?;
        // Discard cached pages, then truncate the file.
        let file = self.pool.file(self.file_id)?;
        self.pool.deregister_file(self.file_id);
        file.truncate()?;
        self.pool.register_file(self.file_id, file);
        self.insert_hint.store(u32::MAX, Ordering::Relaxed);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::DiskFile;

    fn setup() -> HeapFile {
        let dir = std::env::temp_dir().join(format!(
            "delta-heap-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("heap.db");
        let _ = std::fs::remove_file(&path);
        let pool = Arc::new(BufferPool::new(8));
        let fid = FileId(1);
        pool.register_file(fid, Arc::new(DiskFile::open(&path).unwrap()));
        HeapFile::new(pool, fid)
    }

    #[test]
    fn insert_get_delete() {
        let h = setup();
        let rid = h.insert(b"alpha").unwrap();
        assert_eq!(h.get(rid).unwrap().as_deref(), Some(&b"alpha"[..]));
        h.delete(rid).unwrap();
        assert_eq!(h.get(rid).unwrap(), None);
    }

    #[test]
    fn get_on_missing_page_is_none() {
        let h = setup();
        assert_eq!(h.get(RecordId::new(42, 0)).unwrap(), None);
    }

    #[test]
    fn inserts_spill_to_new_pages() {
        let h = setup();
        let rec = [0u8; 1000];
        let mut rids = vec![];
        for _ in 0..40 {
            rids.push(h.insert(&rec).unwrap());
        }
        assert!(h.page_count().unwrap() > 1);
        assert_eq!(h.live_count().unwrap(), 40);
        for rid in rids {
            assert!(h.get(rid).unwrap().is_some());
        }
    }

    #[test]
    fn scan_visits_in_storage_order() {
        let h = setup();
        for i in 0..100u32 {
            h.insert(&i.to_le_bytes()).unwrap();
        }
        let all = h.scan_all().unwrap();
        assert_eq!(all.len(), 100);
        let decoded: Vec<u32> = all
            .iter()
            .map(|(_, b)| u32::from_le_bytes(b[..4].try_into().unwrap()))
            .collect();
        let mut sorted = decoded.clone();
        sorted.sort();
        assert_eq!(decoded, sorted, "append-only inserts scan in order");
    }

    #[test]
    fn update_in_place_keeps_rid() {
        let h = setup();
        let rid = h.insert(&[1u8; 100]).unwrap();
        let new_rid = h.update(rid, &[2u8; 50]).unwrap();
        assert_eq!(rid, new_rid);
        assert_eq!(h.get(rid).unwrap().unwrap(), vec![2u8; 50]);
    }

    #[test]
    fn update_relocates_when_grown_past_page() {
        let h = setup();
        // Fill a page almost completely.
        let rid = h.insert(&[1u8; 100]).unwrap();
        while h.page_count().unwrap() == 1 {
            h.insert(&[0u8; 500]).unwrap();
        }
        // Now grow the first record beyond what page 0 can hold.
        let new_rid = h.update(rid, &[3u8; 4000]).unwrap();
        assert_ne!(rid, new_rid);
        assert_eq!(h.get(new_rid).unwrap().unwrap(), vec![3u8; 4000]);
        assert_eq!(h.get(rid).unwrap(), None);
    }

    #[test]
    fn truncate_empties_heap() {
        let h = setup();
        for _ in 0..10 {
            h.insert(b"x").unwrap();
        }
        h.truncate().unwrap();
        assert_eq!(h.page_count().unwrap(), 0);
        assert_eq!(h.live_count().unwrap(), 0);
        // And it keeps working afterwards.
        let rid = h.insert(b"fresh").unwrap();
        assert_eq!(h.get(rid).unwrap().as_deref(), Some(&b"fresh"[..]));
    }

    #[test]
    fn deleted_space_is_reused_within_page() {
        let h = setup();
        let rid = h.insert(&[0u8; 64]).unwrap();
        h.delete(rid).unwrap();
        let rid2 = h.insert(&[1u8; 64]).unwrap();
        assert_eq!(rid2.page_no, rid.page_no);
        assert_eq!(rid2.slot, rid.slot, "dead slot should be recycled");
    }
}
