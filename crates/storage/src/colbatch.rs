//! The compact delta codec: columnar row blocks, compressed snapshot files,
//! and compressed WAL archive segments.
//!
//! The paper's quantitative claims are about *bytes on the wire* (§3.1.3's
//! bandwidth-bound remote staging, §4.1's message-volume argument), so the
//! ship path treats its encodings as a first-class perf surface. This module
//! provides the shared primitives:
//!
//! * varint/zigzag integer coding and a table-driven CRC-32 (IEEE),
//! * CRC-framed blocks (`[u32 le len][payload][u32 le crc]`) with a
//!   format-version byte baked into every magic,
//! * a self-describing **columnar row-block** codec: per-column encodings
//!   chosen by measured size — plain zigzag varints, delta-of-delta for
//!   monotone sequences, RLE for constant runs, dictionary + RLE and
//!   front/back coding for strings, raw tagged cells as the fallback,
//! * format-sniffing snapshot readers/writers ([`RowSource`]/[`RowSink`])
//!   that stream either the legacy pipe-delimited ASCII dump or the new
//!   block format,
//! * a dependency-free LZ77-style byte compressor used for WAL archive
//!   segments, framed per block so corruption is detected per-CRC.
//!
//! Every new on-disk format starts with a `0xFF` lead byte, which can never
//! appear in UTF-8 text, so sniffing the first bytes of a file or queue frame
//! is unambiguous against every legacy format (ASCII dumps, `VALUE-DELTA` /
//! `OP-DELTA` text envelopes, binary WAL entries whose first byte is a
//! big-endian length high byte of a < 16 MiB segment).
//!
//! Decoders never panic: all lengths are bounds-checked against the remaining
//! input before use and every failure is a typed [`StorageError::Corrupt`].

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::codec::ascii;
use crate::error::{StorageError, StorageResult};
use crate::record::Row;
use crate::schema::Schema;
use crate::value::Value;

/// Which codec the commit-ship-apply path uses for snapshots, delta batches,
/// and WAL archive segments. `Raw` is the legacy row-at-a-time text format;
/// `Columnar` is the block format from this module. Readers always sniff, so
/// either setting decodes files written under the other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeltaCodec {
    /// Legacy formats: ASCII snapshot dumps, text delta envelopes,
    /// uncompressed WAL segments.
    Raw,
    /// Columnar CRC-framed blocks (snapshots, batches) and LZ-compressed
    /// segments (WAL archive).
    #[default]
    Columnar,
}

/// Version byte carried in every magic; bump on incompatible layout changes.
pub const FORMAT_VERSION: u8 = 1;
/// Magic prefix of a columnar snapshot file.
pub const SNAP_MAGIC: [u8; 4] = [0xFF, b'C', b'S', FORMAT_VERSION];
/// Magic prefix of a columnar delta-batch envelope.
pub const BATCH_MAGIC: [u8; 4] = [0xFF, b'C', b'B', FORMAT_VERSION];
/// Magic prefix of a compressed WAL archive segment.
pub const SEG_MAGIC: [u8; 4] = [0xFF, b'C', b'W', FORMAT_VERSION];
/// Default rows per columnar block (snapshots and batches).
pub const DEFAULT_BLOCK_ROWS: usize = 1024;
/// Uncompressed bytes per compressed-segment block.
pub const SEG_BLOCK_BYTES: usize = 256 * 1024;
/// Sanity bound on any single decoded allocation (segments are ~1 MiB,
/// snapshot blocks a few hundred KiB); a corrupt length claiming more than
/// this is rejected before allocating.
const MAX_DECODED_LEN: usize = 64 * 1024 * 1024;

fn corrupt(what: &str) -> StorageError {
    StorageError::Corrupt(format!("colbatch: {what}"))
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Varints and zigzag.
// ---------------------------------------------------------------------------

/// Append `v` as a LEB128 unsigned varint.
pub fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Read a LEB128 unsigned varint, advancing `buf`.
pub fn get_uvarint(buf: &mut &[u8]) -> StorageResult<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = get_u8(buf)?;
        if shift >= 63 && b > 1 {
            return Err(corrupt("varint overflows u64"));
        }
        v |= ((b & 0x7F) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(corrupt("varint longer than 10 bytes"));
        }
    }
}

/// Map a signed integer onto the unsigned varint domain (small magnitudes in
/// either sign stay small).
pub fn zigzag(v: i64) -> u64 {
    ((v as u64) << 1) ^ ((v >> 63) as u64)
}

/// Inverse of [`zigzag`].
pub fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

/// Append `v` zigzag-varint encoded.
pub fn put_ivarint(out: &mut Vec<u8>, v: i64) {
    put_uvarint(out, zigzag(v));
}

/// Read a zigzag-varint signed integer.
pub fn get_ivarint(buf: &mut &[u8]) -> StorageResult<i64> {
    Ok(unzigzag(get_uvarint(buf)?))
}

// ---------------------------------------------------------------------------
// Bounds-checked slice readers.
// ---------------------------------------------------------------------------

/// Split `n` bytes off the front of `buf`, or a typed error.
pub fn take<'a>(buf: &mut &'a [u8], n: usize) -> StorageResult<&'a [u8]> {
    if n > buf.len() {
        return Err(corrupt("truncated input"));
    }
    let (head, rest) = buf.split_at(n);
    *buf = rest;
    Ok(head)
}

fn get_u8(buf: &mut &[u8]) -> StorageResult<u8> {
    match buf.split_first() {
        Some((&b, rest)) => {
            *buf = rest;
            Ok(b)
        }
        None => Err(corrupt("truncated input")),
    }
}

fn get_u32le(buf: &mut &[u8]) -> StorageResult<u32> {
    let b = take(buf, 4)?;
    Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

/// Read a varint length followed by that many bytes.
fn get_len_bytes<'a>(buf: &mut &'a [u8]) -> StorageResult<&'a [u8]> {
    let n = get_uvarint(buf)? as usize;
    take(buf, n)
}

// ---------------------------------------------------------------------------
// CRC-framed blocks.
// ---------------------------------------------------------------------------

/// Append one framed block: `[u32 le payload_len][payload][u32 le crc32]`.
pub fn put_block(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
}

/// Read one framed block, verifying its CRC.
pub fn get_block<'a>(buf: &mut &'a [u8]) -> StorageResult<&'a [u8]> {
    let len = get_u32le(buf)? as usize;
    if len > MAX_DECODED_LEN {
        return Err(corrupt("block length exceeds sanity bound"));
    }
    let payload = take(buf, len)?;
    let want = get_u32le(buf)?;
    if crc32(payload) != want {
        return Err(corrupt("block CRC mismatch"));
    }
    Ok(payload)
}

// ---------------------------------------------------------------------------
// Raw tagged cells (shared by the COL_RAW column and ragged rows).
// ---------------------------------------------------------------------------

const CELL_NULL: u8 = 0;
const CELL_INT: u8 = 1;
const CELL_DOUBLE: u8 = 2;
const CELL_STR: u8 = 3;
const CELL_TIMESTAMP: u8 = 4;
const CELL_BOOL: u8 = 5;

fn put_cell(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(CELL_NULL),
        Value::Int(i) => {
            out.push(CELL_INT);
            put_ivarint(out, *i);
        }
        Value::Double(d) => {
            out.push(CELL_DOUBLE);
            out.extend_from_slice(&d.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(CELL_STR);
            put_uvarint(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Timestamp(t) => {
            out.push(CELL_TIMESTAMP);
            put_ivarint(out, *t);
        }
        Value::Bool(b) => {
            out.push(CELL_BOOL);
            out.push(*b as u8);
        }
    }
}

fn get_cell(buf: &mut &[u8]) -> StorageResult<Value> {
    match get_u8(buf)? {
        CELL_NULL => Ok(Value::Null),
        CELL_INT => Ok(Value::Int(get_ivarint(buf)?)),
        CELL_DOUBLE => {
            let b = take(buf, 8)?;
            Ok(Value::Double(f64::from_bits(u64::from_le_bytes([
                b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
            ]))))
        }
        CELL_STR => {
            let bytes = get_len_bytes(buf)?;
            match std::str::from_utf8(bytes) {
                Ok(s) => Ok(Value::Str(s.to_string())),
                Err(_) => Err(corrupt("string cell is not UTF-8")),
            }
        }
        CELL_TIMESTAMP => Ok(Value::Timestamp(get_ivarint(buf)?)),
        CELL_BOOL => match get_u8(buf)? {
            0 => Ok(Value::Bool(false)),
            1 => Ok(Value::Bool(true)),
            _ => Err(corrupt("bool cell is neither 0 nor 1")),
        },
        _ => Err(corrupt("unknown cell tag")),
    }
}

// ---------------------------------------------------------------------------
// Column encodings.
// ---------------------------------------------------------------------------

const COL_RAW: u8 = 0;
const COL_INT_PLAIN: u8 = 1;
const COL_INT_DELTA2: u8 = 2;
const COL_INT_RLE: u8 = 3;
const COL_STR_RAW: u8 = 4;
const COL_STR_DICT: u8 = 5;
const COL_STR_FRONT: u8 = 6;
const COL_DOUBLE_RAW: u8 = 7;
const COL_BOOL_RAW: u8 = 8;

/// Integer-family columns carry the concrete constructor after the tag so
/// `Int` and `Timestamp` columns share the three integer encodings.
fn int_of(v: &Value) -> Option<i64> {
    match v {
        Value::Int(i) => Some(*i),
        Value::Timestamp(t) => Some(*t),
        _ => None,
    }
}

fn encode_int_plain(vals: &[i64], out: &mut Vec<u8>) {
    for &v in vals {
        put_ivarint(out, v);
    }
}

/// Delta-of-delta: monotone sequences with a near-constant stride (LSNs,
/// sequence numbers, timestamps, dense primary keys) collapse to runs of
/// zero second differences. Wrapping arithmetic keeps the mapping bijective
/// for every `i64`, so round trips are exact at the extremes too.
fn encode_int_delta2(vals: &[i64], out: &mut Vec<u8>) {
    let mut prev = 0i64;
    let mut prev_delta = 0i64;
    for (i, &v) in vals.iter().enumerate() {
        if i == 0 {
            put_ivarint(out, v);
        } else {
            let delta = v.wrapping_sub(prev);
            put_ivarint(out, delta.wrapping_sub(prev_delta));
            prev_delta = delta;
        }
        prev = v;
    }
}

fn decode_int_delta2(buf: &mut &[u8], n: usize, out: &mut Vec<i64>) -> StorageResult<()> {
    let mut prev = 0i64;
    let mut prev_delta = 0i64;
    for i in 0..n {
        let v = if i == 0 {
            get_ivarint(buf)?
        } else {
            prev_delta = prev_delta.wrapping_add(get_ivarint(buf)?);
            prev.wrapping_add(prev_delta)
        };
        out.push(v);
        prev = v;
    }
    Ok(())
}

fn encode_int_rle(vals: &[i64], out: &mut Vec<u8>) {
    let mut i = 0;
    while i < vals.len() {
        let v = vals[i];
        let mut run = 1usize;
        while i + run < vals.len() && vals[i + run] == v {
            run += 1;
        }
        put_ivarint(out, v);
        put_uvarint(out, run as u64);
        i += run;
    }
}

fn decode_int_rle(buf: &mut &[u8], n: usize, out: &mut Vec<i64>) -> StorageResult<()> {
    while out.len() < n {
        let v = get_ivarint(buf)?;
        let run = get_uvarint(buf)? as usize;
        if run == 0 || out.len() + run > n {
            return Err(corrupt("RLE run leaves the column"));
        }
        for _ in 0..run {
            out.push(v);
        }
    }
    Ok(())
}

/// Front/back coding against the previous string: shared byte prefix and
/// suffix lengths plus the distinct middle. Generated-key columns with a
/// shared shape ("row-0000000001-aaaa…") collapse to a few bytes per cell.
fn encode_str_front(vals: &[&str], out: &mut Vec<u8>) {
    let mut prev: &[u8] = b"";
    for s in vals {
        let cur = s.as_bytes();
        let max_p = prev.len().min(cur.len());
        let mut p = 0;
        while p < max_p && prev[p] == cur[p] {
            p += 1;
        }
        let max_s = max_p - p;
        let mut sfx = 0;
        while sfx < max_s && prev[prev.len() - 1 - sfx] == cur[cur.len() - 1 - sfx] {
            sfx += 1;
        }
        put_uvarint(out, p as u64);
        put_uvarint(out, sfx as u64);
        let mid = &cur[p..cur.len() - sfx];
        put_uvarint(out, mid.len() as u64);
        out.extend_from_slice(mid);
        prev = cur;
    }
}

fn decode_str_front(buf: &mut &[u8], n: usize, out: &mut Vec<Value>) -> StorageResult<()> {
    let mut prev: Vec<u8> = Vec::new();
    for _ in 0..n {
        let p = get_uvarint(buf)? as usize;
        let sfx = get_uvarint(buf)? as usize;
        let mid = get_len_bytes(buf)?;
        if p + sfx > prev.len() {
            return Err(corrupt("front-coded prefix/suffix exceed previous string"));
        }
        let mut cur = Vec::with_capacity(p + mid.len() + sfx);
        cur.extend_from_slice(&prev[..p]);
        cur.extend_from_slice(mid);
        cur.extend_from_slice(&prev[prev.len() - sfx..]);
        match String::from_utf8(cur.clone()) {
            Ok(s) => out.push(Value::Str(s)),
            Err(_) => return Err(corrupt("front-coded string is not UTF-8")),
        }
        prev = cur;
    }
    Ok(())
}

fn encode_str_dict(vals: &[&str], out: &mut Vec<u8>) {
    let mut dict: Vec<&str> = Vec::new();
    let mut index: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
    let mut ids: Vec<usize> = Vec::with_capacity(vals.len());
    for s in vals {
        let id = *index.entry(s).or_insert_with(|| {
            dict.push(s);
            dict.len() - 1
        });
        ids.push(id);
    }
    put_uvarint(out, dict.len() as u64);
    for entry in &dict {
        put_uvarint(out, entry.len() as u64);
        out.extend_from_slice(entry.as_bytes());
    }
    let mut i = 0;
    while i < ids.len() {
        let id = ids[i];
        let mut run = 1usize;
        while i + run < ids.len() && ids[i + run] == id {
            run += 1;
        }
        put_uvarint(out, id as u64);
        put_uvarint(out, run as u64);
        i += run;
    }
}

fn decode_str_dict(buf: &mut &[u8], n: usize, out: &mut Vec<Value>) -> StorageResult<()> {
    let dict_n = get_uvarint(buf)? as usize;
    if dict_n > buf.len() {
        return Err(corrupt("dictionary larger than remaining input"));
    }
    let mut dict: Vec<String> = Vec::with_capacity(dict_n);
    for _ in 0..dict_n {
        let bytes = get_len_bytes(buf)?;
        match std::str::from_utf8(bytes) {
            Ok(s) => dict.push(s.to_string()),
            Err(_) => return Err(corrupt("dictionary entry is not UTF-8")),
        }
    }
    let mut emitted = 0usize;
    while emitted < n {
        let id = get_uvarint(buf)? as usize;
        let run = get_uvarint(buf)? as usize;
        if run == 0 || emitted + run > n {
            return Err(corrupt("dictionary RLE run leaves the column"));
        }
        let Some(s) = dict.get(id) else {
            return Err(corrupt("dictionary index out of range"));
        };
        for _ in 0..run {
            out.push(Value::Str(s.clone()));
        }
        emitted += run;
    }
    Ok(())
}

fn encode_str_raw(vals: &[&str], out: &mut Vec<u8>) {
    for s in vals {
        put_uvarint(out, s.len() as u64);
        out.extend_from_slice(s.as_bytes());
    }
}

/// Encode one column, choosing the smallest candidate encoding. `cells` holds
/// one value per row.
fn encode_column(cells: &[&Value], out: &mut Vec<u8>) {
    // Uniform integer family (Int or Timestamp)?
    let all_int = cells.iter().all(|v| matches!(v, Value::Int(_)));
    let all_ts = cells.iter().all(|v| matches!(v, Value::Timestamp(_)));
    if !cells.is_empty() && (all_int || all_ts) {
        let vals: Vec<i64> = cells.iter().filter_map(|v| int_of(v)).collect();
        let mut plain = Vec::new();
        encode_int_plain(&vals, &mut plain);
        let mut d2 = Vec::new();
        encode_int_delta2(&vals, &mut d2);
        let mut rle = Vec::new();
        encode_int_rle(&vals, &mut rle);
        let ty = if all_int { CELL_INT } else { CELL_TIMESTAMP };
        let (tag, body) = if plain.len() <= d2.len() && plain.len() <= rle.len() {
            (COL_INT_PLAIN, plain)
        } else if d2.len() <= rle.len() {
            (COL_INT_DELTA2, d2)
        } else {
            (COL_INT_RLE, rle)
        };
        out.push(tag);
        out.push(ty);
        out.extend_from_slice(&body);
        return;
    }
    // Uniform strings?
    if !cells.is_empty() && cells.iter().all(|v| matches!(v, Value::Str(_))) {
        let vals: Vec<&str> = cells
            .iter()
            .filter_map(|v| match v {
                Value::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        let mut raw = Vec::new();
        encode_str_raw(&vals, &mut raw);
        let mut dict = Vec::new();
        encode_str_dict(&vals, &mut dict);
        let mut front = Vec::new();
        encode_str_front(&vals, &mut front);
        let (tag, body) = if raw.len() <= dict.len() && raw.len() <= front.len() {
            (COL_STR_RAW, raw)
        } else if dict.len() <= front.len() {
            (COL_STR_DICT, dict)
        } else {
            (COL_STR_FRONT, front)
        };
        out.push(tag);
        out.extend_from_slice(&body);
        return;
    }
    // Uniform doubles / bools get tag-free fixed cells.
    if !cells.is_empty() && cells.iter().all(|v| matches!(v, Value::Double(_))) {
        out.push(COL_DOUBLE_RAW);
        for v in cells {
            if let Value::Double(d) = v {
                out.extend_from_slice(&d.to_bits().to_le_bytes());
            }
        }
        return;
    }
    if !cells.is_empty() && cells.iter().all(|v| matches!(v, Value::Bool(_))) {
        out.push(COL_BOOL_RAW);
        for v in cells {
            if let Value::Bool(b) = v {
                out.push(*b as u8);
            }
        }
        return;
    }
    // Mixed types or NULLs: raw tagged cells.
    out.push(COL_RAW);
    for v in cells {
        put_cell(out, v);
    }
}

fn decode_column(buf: &mut &[u8], n: usize, out: &mut Vec<Value>) -> StorageResult<()> {
    let tag = get_u8(buf)?;
    match tag {
        COL_RAW => {
            for _ in 0..n {
                out.push(get_cell(buf)?);
            }
        }
        COL_INT_PLAIN | COL_INT_DELTA2 | COL_INT_RLE => {
            let ty = get_u8(buf)?;
            let mut vals: Vec<i64> = Vec::with_capacity(n);
            match tag {
                COL_INT_PLAIN => {
                    for _ in 0..n {
                        vals.push(get_ivarint(buf)?);
                    }
                }
                COL_INT_DELTA2 => decode_int_delta2(buf, n, &mut vals)?,
                _ => decode_int_rle(buf, n, &mut vals)?,
            }
            match ty {
                CELL_INT => out.extend(vals.into_iter().map(Value::Int)),
                CELL_TIMESTAMP => out.extend(vals.into_iter().map(Value::Timestamp)),
                _ => return Err(corrupt("unknown integer column type")),
            }
        }
        COL_STR_RAW => {
            for _ in 0..n {
                let bytes = get_len_bytes(buf)?;
                match std::str::from_utf8(bytes) {
                    Ok(s) => out.push(Value::Str(s.to_string())),
                    Err(_) => return Err(corrupt("string cell is not UTF-8")),
                }
            }
        }
        COL_STR_DICT => decode_str_dict(buf, n, out)?,
        COL_STR_FRONT => decode_str_front(buf, n, out)?,
        COL_DOUBLE_RAW => {
            for _ in 0..n {
                let b = take(buf, 8)?;
                out.push(Value::Double(f64::from_bits(u64::from_le_bytes([
                    b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
                ]))));
            }
        }
        COL_BOOL_RAW => {
            for _ in 0..n {
                match get_u8(buf)? {
                    0 => out.push(Value::Bool(false)),
                    1 => out.push(Value::Bool(true)),
                    _ => return Err(corrupt("bool cell is neither 0 nor 1")),
                }
            }
        }
        _ => return Err(corrupt("unknown column tag")),
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Row blocks.
// ---------------------------------------------------------------------------

const BLOCK_UNIFORM: u8 = 0;
const BLOCK_RAGGED: u8 = 1;

/// Encode a slice of rows into one (unframed) block payload. Rows of uniform
/// arity are transposed into per-column encodings; mixed-arity inputs fall
/// back to a row-major layout of raw tagged cells.
pub fn encode_rows_block(rows: &[Row]) -> Vec<u8> {
    let mut out = Vec::new();
    let uniform = rows.windows(2).all(|w| w[0].len() == w[1].len());
    if uniform && !rows.is_empty() {
        out.push(BLOCK_UNIFORM);
        put_uvarint(&mut out, rows.len() as u64);
        let ncols = rows[0].len();
        put_uvarint(&mut out, ncols as u64);
        let mut cells: Vec<&Value> = Vec::with_capacity(rows.len());
        for c in 0..ncols {
            cells.clear();
            for row in rows {
                if let Some(v) = row.get(c) {
                    cells.push(v);
                }
            }
            encode_column(&cells, &mut out);
        }
    } else {
        out.push(BLOCK_RAGGED);
        put_uvarint(&mut out, rows.len() as u64);
        for row in rows {
            put_uvarint(&mut out, row.len() as u64);
            for v in row.values() {
                put_cell(&mut out, v);
            }
        }
    }
    out
}

/// Decode one block payload produced by [`encode_rows_block`]. The payload
/// must be consumed exactly; trailing bytes are corruption.
pub fn decode_rows_block(mut payload: &[u8]) -> StorageResult<Vec<Row>> {
    let buf = &mut payload;
    let flag = get_u8(buf)?;
    let nrows = get_uvarint(buf)? as usize;
    if nrows > MAX_DECODED_LEN {
        return Err(corrupt("row count exceeds sanity bound"));
    }
    let mut rows: Vec<Row> = Vec::with_capacity(nrows.min(1 << 20));
    match flag {
        BLOCK_UNIFORM => {
            let ncols = get_uvarint(buf)? as usize;
            if ncols > buf.len() + 1 {
                return Err(corrupt("column count exceeds remaining input"));
            }
            let mut cols: Vec<Vec<Value>> = Vec::with_capacity(ncols);
            for _ in 0..ncols {
                let mut col = Vec::with_capacity(nrows.min(1 << 20));
                decode_column(buf, nrows, &mut col)?;
                cols.push(col);
            }
            for r in 0..nrows {
                let mut vals = Vec::with_capacity(ncols);
                for col in &mut cols {
                    // Columns were decoded to exactly `nrows` entries each.
                    match col.get(r) {
                        Some(v) => vals.push(v.clone()),
                        None => return Err(corrupt("short column")),
                    }
                }
                rows.push(Row::new(vals));
            }
        }
        BLOCK_RAGGED => {
            for _ in 0..nrows {
                let ncols = get_uvarint(buf)? as usize;
                if ncols > buf.len() + 1 {
                    return Err(corrupt("row arity exceeds remaining input"));
                }
                let mut vals = Vec::with_capacity(ncols);
                for _ in 0..ncols {
                    vals.push(get_cell(buf)?);
                }
                rows.push(Row::new(vals));
            }
        }
        _ => return Err(corrupt("unknown block layout flag")),
    }
    if !buf.is_empty() {
        return Err(corrupt("trailing bytes after row block"));
    }
    Ok(rows)
}

// ---------------------------------------------------------------------------
// Snapshot files: format sniffing, streaming readers and writers.
// ---------------------------------------------------------------------------

/// On-disk snapshot/run-file format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotFormat {
    /// Legacy pipe-delimited ASCII dump (one row per line).
    Ascii,
    /// Columnar CRC-framed row blocks behind [`SNAP_MAGIC`].
    Columnar,
}

impl SnapshotFormat {
    /// The format a [`DeltaCodec`] writes snapshots in.
    pub fn for_codec(codec: DeltaCodec) -> SnapshotFormat {
        match codec {
            DeltaCodec::Raw => SnapshotFormat::Ascii,
            DeltaCodec::Columnar => SnapshotFormat::Columnar,
        }
    }
}

/// Sniff the format of a snapshot/run file from its first bytes. Anything
/// that does not start with [`SNAP_MAGIC`] (including files shorter than the
/// magic, and empty files) is the legacy ASCII format.
pub fn detect_file_format(path: &Path) -> StorageResult<SnapshotFormat> {
    let mut f = File::open(path).map_err(StorageError::Io)?;
    let mut head = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match f.read(&mut head[got..]).map_err(StorageError::Io)? {
            0 => break,
            n => got += n,
        }
    }
    if got == 4 && head == SNAP_MAGIC {
        Ok(SnapshotFormat::Columnar)
    } else {
        Ok(SnapshotFormat::Ascii)
    }
}

/// Streaming row reader over either snapshot format; the format is sniffed
/// at open so legacy ASCII dumps keep decoding unchanged.
pub struct RowSource {
    mode: SourceMode,
}

enum SourceMode {
    Ascii {
        reader: BufReader<File>,
        schema: Schema,
        line: String,
    },
    Columnar {
        reader: BufReader<File>,
        pending: VecDeque<Row>,
    },
}

/// `read_exact`, but distinguishing clean EOF at the first byte (`Ok(false)`)
/// from a mid-item truncation (corruption).
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> StorageResult<bool> {
    let mut got = 0usize;
    while got < buf.len() {
        match r.read(&mut buf[got..]).map_err(StorageError::Io)? {
            0 => {
                if got == 0 {
                    return Ok(false);
                }
                return Err(corrupt("truncated block frame"));
            }
            n => got += n,
        }
    }
    Ok(true)
}

impl RowSource {
    /// Open `path`, sniffing its format. `schema` is only consulted for the
    /// ASCII format (whose cells are typed by the schema); columnar blocks
    /// are self-describing.
    pub fn open(path: &Path, schema: &Schema) -> StorageResult<RowSource> {
        let format = detect_file_format(path)?;
        let mut reader = BufReader::new(File::open(path).map_err(StorageError::Io)?);
        let mode = match format {
            SnapshotFormat::Ascii => SourceMode::Ascii {
                reader,
                schema: schema.clone(),
                line: String::new(),
            },
            SnapshotFormat::Columnar => {
                let mut magic = [0u8; 4];
                read_exact_or_eof(&mut reader, &mut magic)?;
                SourceMode::Columnar {
                    reader,
                    pending: VecDeque::new(),
                }
            }
        };
        Ok(RowSource { mode })
    }

    /// The sniffed format of the underlying file.
    pub fn format(&self) -> SnapshotFormat {
        match self.mode {
            SourceMode::Ascii { .. } => SnapshotFormat::Ascii,
            SourceMode::Columnar { .. } => SnapshotFormat::Columnar,
        }
    }

    /// The next row, or `None` at end of file.
    pub fn next_row(&mut self) -> StorageResult<Option<Row>> {
        match &mut self.mode {
            SourceMode::Ascii {
                reader,
                schema,
                line,
            } => loop {
                line.clear();
                let n = std::io::BufRead::read_line(reader, line).map_err(StorageError::Io)?;
                if n == 0 {
                    return Ok(None);
                }
                let trimmed = line.trim_end_matches(['\n', '\r']);
                if trimmed.is_empty() {
                    continue;
                }
                return Ok(Some(ascii::parse_row(trimmed, schema)?));
            },
            SourceMode::Columnar { reader, pending } => {
                loop {
                    if let Some(row) = pending.pop_front() {
                        return Ok(Some(row));
                    }
                    let mut lenb = [0u8; 4];
                    if !read_exact_or_eof(reader, &mut lenb)? {
                        return Ok(None);
                    }
                    let len = u32::from_le_bytes(lenb) as usize;
                    if len > MAX_DECODED_LEN {
                        return Err(corrupt("block length exceeds sanity bound"));
                    }
                    let mut payload = vec![0u8; len];
                    if !read_exact_or_eof(reader, &mut payload)? {
                        return Err(corrupt("truncated block payload"));
                    }
                    let mut crcb = [0u8; 4];
                    if !read_exact_or_eof(reader, &mut crcb)? {
                        return Err(corrupt("truncated block CRC"));
                    }
                    if crc32(&payload) != u32::from_le_bytes(crcb) {
                        return Err(corrupt("block CRC mismatch"));
                    }
                    pending.extend(decode_rows_block(&payload)?);
                    // Empty blocks are legal; loop for the next frame.
                }
            }
        }
    }
}

/// Streaming row writer in either snapshot format.
pub struct RowSink {
    mode: SinkMode,
}

enum SinkMode {
    Ascii(BufWriter<File>),
    Columnar {
        w: BufWriter<File>,
        buf: Vec<Row>,
        block_rows: usize,
    },
}

impl RowSink {
    /// Create `path`, writing in `format`. `block_rows` bounds the rows per
    /// columnar block (ignored for ASCII).
    pub fn create(
        path: &Path,
        format: SnapshotFormat,
        block_rows: usize,
    ) -> StorageResult<RowSink> {
        let file = File::create(path).map_err(StorageError::Io)?;
        let mode = match format {
            SnapshotFormat::Ascii => SinkMode::Ascii(BufWriter::new(file)),
            SnapshotFormat::Columnar => {
                let mut w = BufWriter::new(file);
                w.write_all(&SNAP_MAGIC).map_err(StorageError::Io)?;
                SinkMode::Columnar {
                    w,
                    buf: Vec::new(),
                    block_rows: block_rows.max(1),
                }
            }
        };
        Ok(RowSink { mode })
    }

    /// Append one row.
    pub fn write_row(&mut self, row: &Row) -> StorageResult<()> {
        match &mut self.mode {
            SinkMode::Ascii(w) => {
                writeln!(w, "{}", ascii::format_row(row)).map_err(StorageError::Io)
            }
            SinkMode::Columnar { w, buf, block_rows } => {
                buf.push(row.clone());
                if buf.len() >= *block_rows {
                    let mut framed = Vec::new();
                    put_block(&mut framed, &encode_rows_block(buf));
                    buf.clear();
                    w.write_all(&framed).map_err(StorageError::Io)?;
                }
                Ok(())
            }
        }
    }

    /// Flush any buffered block and the underlying writer.
    pub fn finish(mut self) -> StorageResult<()> {
        match &mut self.mode {
            SinkMode::Ascii(w) => w.flush().map_err(StorageError::Io),
            SinkMode::Columnar { w, buf, .. } => {
                if !buf.is_empty() {
                    let mut framed = Vec::new();
                    put_block(&mut framed, &encode_rows_block(buf));
                    buf.clear();
                    w.write_all(&framed).map_err(StorageError::Io)?;
                }
                w.flush().map_err(StorageError::Io)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// LZ77-style byte compressor (for WAL archive segments).
// ---------------------------------------------------------------------------

const LZ_MIN_MATCH: usize = 4;
const LZ_MAX_MATCH: usize = 0xFFFF;
const LZ_WINDOW: usize = 0xFFFF;
const LZ_HASH_BITS: u32 = 16;

fn lz_hash(b: &[u8]) -> usize {
    let v = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - LZ_HASH_BITS)) as usize
}

/// Greedy LZ77 with a 64 KiB window. Token stream: repeated
/// `(uvarint literal_len, literal bytes, uvarint match_len, [uvarint distance
/// if match_len > 0])`; the stream simply ends after the last token.
pub fn lz_compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    let mut table = vec![usize::MAX; 1 << LZ_HASH_BITS];
    let mut i = 0usize;
    let mut lit_start = 0usize;
    while i + LZ_MIN_MATCH <= input.len() {
        let h = lz_hash(&input[i..]);
        let cand = table[h];
        table[h] = i;
        if cand != usize::MAX
            && i - cand <= LZ_WINDOW
            && input[cand..cand + LZ_MIN_MATCH] == input[i..i + LZ_MIN_MATCH]
        {
            let mut len = LZ_MIN_MATCH;
            while i + len < input.len() && input[cand + len] == input[i + len] && len < LZ_MAX_MATCH
            {
                len += 1;
            }
            put_uvarint(&mut out, (i - lit_start) as u64);
            out.extend_from_slice(&input[lit_start..i]);
            put_uvarint(&mut out, len as u64);
            put_uvarint(&mut out, (i - cand) as u64);
            i += len;
            lit_start = i;
        } else {
            i += 1;
        }
    }
    if lit_start < input.len() || input.is_empty() {
        put_uvarint(&mut out, (input.len() - lit_start) as u64);
        out.extend_from_slice(&input[lit_start..]);
        put_uvarint(&mut out, 0);
    }
    out
}

/// Inverse of [`lz_compress`]; `expected_len` is the exact decompressed size
/// (carried outside the stream) and any mismatch is corruption.
pub fn lz_decompress(mut input: &[u8], expected_len: usize) -> StorageResult<Vec<u8>> {
    if expected_len > MAX_DECODED_LEN {
        return Err(corrupt("decompressed length exceeds sanity bound"));
    }
    let buf = &mut input;
    let mut out: Vec<u8> = Vec::with_capacity(expected_len);
    while !buf.is_empty() {
        let lit = get_uvarint(buf)? as usize;
        let lits = take(buf, lit)?;
        out.extend_from_slice(lits);
        let mlen = get_uvarint(buf)? as usize;
        if mlen > 0 {
            let dist = get_uvarint(buf)? as usize;
            if dist == 0 || dist > out.len() {
                return Err(corrupt("LZ match distance outside the window"));
            }
            if out.len() + mlen > expected_len {
                return Err(corrupt("LZ output overruns the declared length"));
            }
            let start = out.len() - dist;
            for k in 0..mlen {
                // In-bounds by construction: start + k < out.len() before each push.
                let b = out[start + k];
                out.push(b);
            }
        }
        if out.len() > expected_len {
            return Err(corrupt("LZ output overruns the declared length"));
        }
    }
    if out.len() != expected_len {
        return Err(corrupt("LZ output shorter than the declared length"));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Compressed WAL archive segments.
// ---------------------------------------------------------------------------

/// Whether `bytes` carry a compressed-segment magic.
pub fn is_compressed_segment(bytes: &[u8]) -> bool {
    bytes.starts_with(&SEG_MAGIC)
}

/// Whether `bytes` carry a columnar delta-batch magic.
pub fn is_columnar_batch(bytes: &[u8]) -> bool {
    bytes.starts_with(&BATCH_MAGIC)
}

/// Compress a whole WAL segment: [`SEG_MAGIC`] then CRC-framed blocks, each
/// holding `uvarint raw_len` + the LZ stream of one ≤ [`SEG_BLOCK_BYTES`]
/// chunk. Per-block framing means a single flipped bit is caught by exactly
/// one CRC and reported as typed corruption.
pub fn compress_segment(input: &[u8]) -> Vec<u8> {
    let mut out = SEG_MAGIC.to_vec();
    for chunk in input.chunks(SEG_BLOCK_BYTES) {
        let mut payload = Vec::with_capacity(chunk.len() / 2 + 16);
        put_uvarint(&mut payload, chunk.len() as u64);
        payload.extend_from_slice(&lz_compress(chunk));
        put_block(&mut out, &payload);
    }
    out
}

/// Inverse of [`compress_segment`], verifying the magic and every block CRC.
pub fn decompress_segment(bytes: &[u8]) -> StorageResult<Vec<u8>> {
    let mut buf = bytes;
    let magic = take(&mut buf, 4)?;
    if magic != SEG_MAGIC {
        return Err(corrupt("not a compressed segment"));
    }
    let mut out = Vec::new();
    while !buf.is_empty() {
        let mut payload = get_block(&mut buf)?;
        let raw_len = get_uvarint(&mut payload)? as usize;
        out.extend_from_slice(&lz_decompress(payload, raw_len)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(vals: Vec<Value>) -> Row {
        Row::new(vals)
    }

    #[test]
    fn varint_round_trips_at_the_edges() {
        for v in [0u64, 1, 127, 128, 300, u64::MAX / 2, u64::MAX] {
            let mut out = Vec::new();
            put_uvarint(&mut out, v);
            let mut buf = out.as_slice();
            assert_eq!(get_uvarint(&mut buf).unwrap(), v);
            assert!(buf.is_empty());
        }
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 42, -42] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
    }

    #[test]
    fn uniform_block_round_trips_and_beats_raw_cells() {
        let rows: Vec<Row> = (0..1000)
            .map(|i| {
                row(vec![
                    Value::Int(i),
                    Value::Timestamp(1_700_000_000 + i),
                    Value::Str(format!("row-{i:010}-aaaaaaaaaaaaaaaa")),
                ])
            })
            .collect();
        let block = encode_rows_block(&rows);
        let back = decode_rows_block(&block).unwrap();
        assert_eq!(back, rows);
        let mut raw = Vec::new();
        for r in &rows {
            for v in r.values() {
                put_cell(&mut raw, v);
            }
        }
        assert!(
            block.len() * 3 < raw.len(),
            "columnar {} vs raw {}",
            block.len(),
            raw.len()
        );
    }

    #[test]
    fn ragged_block_round_trips() {
        let rows = vec![
            row(vec![Value::Int(1)]),
            row(vec![Value::Null, Value::Bool(true), Value::Double(1.5)]),
            row(vec![]),
        ];
        assert_eq!(decode_rows_block(&encode_rows_block(&rows)).unwrap(), rows);
    }

    #[test]
    fn block_truncation_and_flips_are_typed_errors() {
        let rows: Vec<Row> = (0..64)
            .map(|i| row(vec![Value::Int(i), Value::Str(format!("s{i}"))]))
            .collect();
        let mut framed = Vec::new();
        put_block(&mut framed, &encode_rows_block(&rows));
        for cut in 0..framed.len() {
            let mut buf = &framed[..cut];
            assert!(get_block(&mut buf).is_err(), "cut at {cut}");
        }
        for bit in (0..framed.len() * 8).step_by(7) {
            let mut bad = framed.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            let mut buf = bad.as_slice();
            let r = get_block(&mut buf).and_then(decode_rows_block);
            if let Ok(back) = r {
                assert_eq!(back, rows, "flip at bit {bit} silently changed rows");
            }
        }
    }

    #[test]
    fn lz_round_trips() {
        let mut data = Vec::new();
        for i in 0..2000u32 {
            data.extend_from_slice(format!("entry-{:06}-payload|", i % 37).as_bytes());
        }
        let z = lz_compress(&data);
        assert!(z.len() * 2 < data.len(), "{} vs {}", z.len(), data.len());
        assert_eq!(lz_decompress(&z, data.len()).unwrap(), data);
        assert_eq!(
            lz_decompress(&lz_compress(&[]), 0).unwrap(),
            Vec::<u8>::new()
        );
        let incompressible: Vec<u8> = (0..4096u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        let z2 = lz_compress(&incompressible);
        assert_eq!(
            lz_decompress(&z2, incompressible.len()).unwrap(),
            incompressible
        );
    }

    #[test]
    fn segment_compression_round_trips_and_detects_corruption() {
        let mut seg = Vec::new();
        for i in 0..5000u64 {
            seg.extend_from_slice(&(i % 97).to_be_bytes());
            seg.extend_from_slice(b"wal-entry-body-");
        }
        let z = compress_segment(&seg);
        assert!(is_compressed_segment(&z));
        assert!(z.len() * 2 < seg.len());
        assert_eq!(decompress_segment(&z).unwrap(), seg);
        // Mid-frame truncation fails; a cut at an exact frame boundary is the
        // torn-tail case (whole trailing blocks lost) and decodes short, which
        // the WAL's existing torn-tail handling deals with above this layer.
        for cut in [0, 3, 10, z.len() / 2, z.len() - 1] {
            assert!(decompress_segment(&z[..cut]).is_err(), "cut {cut}");
        }
        assert_eq!(
            decompress_segment(&z[..4]).unwrap(),
            Vec::<u8>::new(),
            "frame-boundary cut decodes as an empty tail"
        );
        // Every flipped bit (sampled) fails or decodes content-equal.
        for bit in (0..z.len() * 8).step_by((z.len() * 8 / 512).max(1)) {
            let mut bad = z.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            if let Ok(back) = decompress_segment(&bad) {
                assert_eq!(back, seg, "flip at bit {bit} silently changed bytes");
            }
        }
    }

    #[test]
    fn row_sink_and_source_round_trip_both_formats() {
        let dir = std::env::temp_dir().join(format!("colbatch-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let schema = Schema::new(vec![
            crate::schema::Column::new("id", crate::value::DataType::Int),
            crate::schema::Column::new("name", crate::value::DataType::Varchar),
        ])
        .unwrap();
        let rows: Vec<Row> = (0..2500)
            .map(|i| row(vec![Value::Int(i), Value::Str(format!("name-{i:08}"))]))
            .collect();
        for format in [SnapshotFormat::Ascii, SnapshotFormat::Columnar] {
            let path = dir.join(format!("snap-{format:?}"));
            let mut sink = RowSink::create(&path, format, 100).unwrap();
            for r in &rows {
                sink.write_row(r).unwrap();
            }
            sink.finish().unwrap();
            assert_eq!(detect_file_format(&path).unwrap(), format);
            let mut src = RowSource::open(&path, &schema).unwrap();
            assert_eq!(src.format(), format);
            let mut back = Vec::new();
            while let Some(r) = src.next_row().unwrap() {
                back.push(r);
            }
            assert_eq!(back, rows, "{format:?}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_files_read_as_empty() {
        let dir = std::env::temp_dir().join(format!("colbatch-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let schema = Schema::new(vec![crate::schema::Column::new(
            "id",
            crate::value::DataType::Int,
        )])
        .unwrap();
        for format in [SnapshotFormat::Ascii, SnapshotFormat::Columnar] {
            let path = dir.join(format!("empty-{format:?}"));
            RowSink::create(&path, format, 8).unwrap().finish().unwrap();
            let mut src = RowSource::open(&path, &schema).unwrap();
            assert!(src.next_row().unwrap().is_none());
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
