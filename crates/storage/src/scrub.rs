//! Online storage scrubbing: page CRCs and corrupt-unit quarantine.
//!
//! Silent corruption — a bit flip at rest, a misdirected write — is the one
//! failure the recovery path cannot see: a structurally plausible page parses
//! fine and simply holds wrong bytes. The scrubber closes that gap with a
//! whole-page CRC stamped into the page header's reserved word (bytes
//! `12..16`, untouched by every slotted-page operation) on each physical
//! write, and a background walk ([`scrub_page_file`]) that re-reads every
//! page and verifies both the CRC and the slotted-page structure.
//!
//! Verification happens **only** in the scrubber, never on the hot read
//! path: a torn page mid-recovery is the WAL's business (and torture-tested
//! there); the scrubber's business is the page nobody would otherwise read
//! again until its contents are served as query answers. Pages written
//! before stamping existed carry a zero CRC word and are reported as
//! `unstamped`, not corrupt, so scrubbing is safe to roll out over existing
//! databases.
//!
//! Corrupt pages are quarantined by listing them in a `<file>.quarantine`
//! sidecar ([`quarantine_pages`]) — the heap file itself is left untouched
//! for forensics and for the scoped audit-and-repair pass
//! (`delta-warehouse`'s anti-entropy subsystem, DESIGN.md §14) that the
//! scrub report triggers.

use std::path::{Path, PathBuf};

use crate::colbatch::crc32;
use crate::error::StorageResult;
use crate::file::{DiskFile, PAGE_SIZE};
use crate::page::SlottedPage;

/// Byte offset of the page-CRC word inside the page header (the reserved
/// word of the slotted-page layout; see `page.rs`).
pub const PAGE_CRC_OFFSET: usize = 12;

/// Sentinel meaning "no CRC stamped" (pages predating the scrubber).
pub const PAGE_CRC_UNSTAMPED: u32 = 0;

/// CRC of a page image with its CRC word zeroed — the value
/// [`stamp_page_crc`] stores and [`check_page`] recomputes. A computed CRC
/// that collides with the unstamped sentinel is nudged to 1, trading an
/// undetectable one-in-4-billion corruption for an unambiguous sentinel.
pub fn page_content_crc(page: &[u8]) -> u32 {
    let mut copy = [0u8; PAGE_SIZE];
    let n = page.len().min(PAGE_SIZE);
    copy[..n].copy_from_slice(&page[..n]);
    if n >= PAGE_CRC_OFFSET + 4 {
        copy[PAGE_CRC_OFFSET..PAGE_CRC_OFFSET + 4].fill(0);
    }
    let crc = crc32(&copy[..n]);
    if crc == PAGE_CRC_UNSTAMPED {
        1
    } else {
        crc
    }
}

/// Stamp the whole-page CRC into the header's reserved word. Called by
/// [`DiskFile::write_page`] on every physical page write.
pub fn stamp_page_crc(page: &mut [u8]) {
    if page.len() < PAGE_CRC_OFFSET + 4 {
        return;
    }
    let crc = page_content_crc(page);
    page[PAGE_CRC_OFFSET..PAGE_CRC_OFFSET + 4].copy_from_slice(&crc.to_le_bytes());
}

/// Verdict of checking one page image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageCheck {
    /// CRC word is the zero sentinel: written before stamping existed.
    Unstamped,
    /// Stored CRC matches the recomputed content CRC.
    Clean,
    /// Stored CRC disagrees with the content — silent corruption.
    Corrupt {
        /// CRC found in the header word.
        stored: u32,
        /// CRC recomputed over the page content.
        computed: u32,
    },
}

/// Verify the stamped CRC of one page image (structure is checked
/// separately by the scrub walk via [`SlottedPage::from_bytes`]).
pub fn check_page(page: &[u8]) -> PageCheck {
    if page.len() < PAGE_CRC_OFFSET + 4 {
        return PageCheck::Unstamped;
    }
    let mut word = [0u8; 4];
    word.copy_from_slice(&page[PAGE_CRC_OFFSET..PAGE_CRC_OFFSET + 4]);
    let stored = u32::from_le_bytes(word);
    if stored == PAGE_CRC_UNSTAMPED {
        return PageCheck::Unstamped;
    }
    let computed = page_content_crc(page);
    if stored == computed {
        PageCheck::Clean
    } else {
        PageCheck::Corrupt { stored, computed }
    }
}

/// What one [`scrub_page_file`] walk found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PageScrubOutcome {
    /// Pages read and inspected.
    pub scanned: u64,
    /// Pages skipped CRC verification (zero sentinel in the CRC word).
    pub unstamped: u64,
    /// Page numbers that failed the CRC or the structural check.
    pub corrupt: Vec<u32>,
}

/// Walk every page of `file`, verifying the stamped CRC and the
/// slotted-page structure. Returns the corrupt page numbers; the caller
/// decides quarantine policy (see [`quarantine_pages`]).
pub fn scrub_page_file(file: &DiskFile) -> StorageResult<PageScrubOutcome> {
    let mut out = PageScrubOutcome::default();
    let mut buf = vec![0u8; PAGE_SIZE];
    for page_no in 0..file.page_count() {
        file.read_page(page_no, &mut buf)?;
        out.scanned += 1;
        match check_page(&buf) {
            PageCheck::Unstamped => out.unstamped += 1,
            PageCheck::Corrupt { .. } => {
                out.corrupt.push(page_no);
                continue;
            }
            PageCheck::Clean => {}
        }
        if SlottedPage::from_bytes(&buf).is_err() {
            out.corrupt.push(page_no);
        }
    }
    out.corrupt.dedup();
    Ok(out)
}

/// Record corrupt page numbers of the paged file at `path` in its
/// `<path>.quarantine` sidecar (one page number per line, whole-file
/// rewrite). The data file itself is left in place for forensics and
/// scoped repair. Returns the sidecar path.
pub fn quarantine_pages(path: &Path, pages: &[u32]) -> StorageResult<PathBuf> {
    let sidecar = quarantine_sidecar(path);
    let mut body = String::new();
    for p in pages {
        body.push_str(&p.to_string());
        body.push('\n');
    }
    std::fs::write(&sidecar, body)?;
    Ok(sidecar)
}

/// Path of the quarantine sidecar for the paged file at `path`.
pub fn quarantine_sidecar(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".quarantine");
    PathBuf::from(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "delta-scrub-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&d).unwrap();
        let p = d.join(name);
        let _ = std::fs::remove_file(&p);
        p
    }

    fn page_with_record(payload: &[u8]) -> Vec<u8> {
        let mut page = SlottedPage::new();
        page.insert(payload).unwrap();
        page.as_bytes().to_vec()
    }

    #[test]
    fn stamp_then_check_is_clean_and_idempotent() {
        let mut page = page_with_record(b"hello");
        assert_eq!(check_page(&page), PageCheck::Unstamped);
        stamp_page_crc(&mut page);
        assert_eq!(check_page(&page), PageCheck::Clean);
        let once = page.clone();
        stamp_page_crc(&mut page);
        assert_eq!(page, once, "restamping an unchanged page is a no-op");
    }

    #[test]
    fn bit_flip_after_stamping_is_caught() {
        let mut page = page_with_record(b"payload");
        stamp_page_crc(&mut page);
        page[100] ^= 0x01;
        assert!(matches!(check_page(&page), PageCheck::Corrupt { .. }));
    }

    #[test]
    fn write_page_stamps_and_scrub_walk_verifies() {
        let p = tmpfile("scrub1.db");
        let f = DiskFile::open(&p).unwrap();
        for _ in 0..3 {
            f.allocate_page().unwrap();
        }
        for i in 0..3 {
            f.write_page(i, &page_with_record(format!("rec-{i}").as_bytes()))
                .unwrap();
        }
        let out = scrub_page_file(&f).unwrap();
        assert_eq!(out.scanned, 3);
        assert_eq!(out.unstamped, 0, "write_page stamps every page");
        assert!(out.corrupt.is_empty());
    }

    #[test]
    fn scrub_flags_silently_flipped_page_and_quarantines() {
        use std::io::{Seek, SeekFrom, Write};
        let p = tmpfile("scrub2.db");
        {
            let f = DiskFile::open(&p).unwrap();
            for _ in 0..2 {
                f.allocate_page().unwrap();
            }
            for i in 0..2 {
                f.write_page(i, &page_with_record(b"stable")).unwrap();
            }
            f.sync().unwrap();
        }
        // Flip one payload byte of page 1 behind the engine's back.
        {
            let mut raw = std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .open(&p)
                .unwrap();
            raw.seek(SeekFrom::Start(PAGE_SIZE as u64 + 4000)).unwrap();
            raw.write_all(&[0xEE]).unwrap();
        }
        let f = DiskFile::open(&p).unwrap();
        let out = scrub_page_file(&f).unwrap();
        assert_eq!(out.corrupt, vec![1]);
        let sidecar = quarantine_pages(&p, &out.corrupt).unwrap();
        let body = std::fs::read_to_string(&sidecar).unwrap();
        assert_eq!(body, "1\n");
    }

    #[test]
    fn zeroed_fresh_pages_scrub_as_unstamped_not_corrupt() {
        let p = tmpfile("scrub3.db");
        let f = DiskFile::open(&p).unwrap();
        f.allocate_page().unwrap();
        let out = scrub_page_file(&f).unwrap();
        assert_eq!(out.scanned, 1);
        assert_eq!(out.unstamped, 1);
        assert!(out.corrupt.is_empty());
    }
}
