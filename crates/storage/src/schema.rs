//! Table schemas.

use std::fmt;

use crate::error::{StorageError, StorageResult};
use crate::record::Row;
use crate::value::{DataType, Value};

/// One column of a table schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    pub name: String,
    pub data_type: DataType,
    /// Whether NULL is allowed.
    pub nullable: bool,
    /// Whether this column participates in the primary key.
    pub primary_key: bool,
}

impl Column {
    /// A nullable, non-key column.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Column {
        Column {
            name: name.into(),
            data_type,
            nullable: true,
            primary_key: false,
        }
    }

    /// Mark this column NOT NULL.
    pub fn not_null(mut self) -> Column {
        self.nullable = false;
        self
    }

    /// Mark this column PRIMARY KEY (implies NOT NULL).
    pub fn primary_key(mut self) -> Column {
        self.primary_key = true;
        self.nullable = false;
        self
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Build a schema, rejecting duplicate column names.
    pub fn new(columns: Vec<Column>) -> StorageResult<Schema> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|p| p.name == c.name) {
                return Err(StorageError::SchemaMismatch(format!(
                    "duplicate column name '{}'",
                    c.name
                )));
            }
        }
        Ok(Schema { columns })
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    pub fn len(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Index of the column named `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// The column named `name`.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Indices of the primary-key columns, in declaration order.
    pub fn primary_key_indices(&self) -> Vec<usize> {
        self.columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.primary_key)
            .map(|(i, _)| i)
            .collect()
    }

    /// Extract the primary-key values of `row` (empty if keyless).
    pub fn primary_key_of(&self, row: &Row) -> Vec<Value> {
        self.primary_key_indices()
            .into_iter()
            .map(|i| row.values()[i].clone())
            .collect()
    }

    /// Validate `row` against the schema, coercing widening conversions in
    /// place. Rejects arity mismatches, NULLs in NOT NULL columns, and
    /// non-conformant types.
    pub fn validate(&self, row: &Row) -> StorageResult<Row> {
        if row.len() != self.columns.len() {
            return Err(StorageError::SchemaMismatch(format!(
                "row has {} values, schema has {} columns",
                row.len(),
                self.columns.len()
            )));
        }
        let mut out = Vec::with_capacity(row.len());
        for (v, c) in row.values().iter().zip(&self.columns) {
            if v.is_null() && !c.nullable {
                return Err(StorageError::SchemaMismatch(format!(
                    "NULL in NOT NULL column '{}'",
                    c.name
                )));
            }
            out.push(v.coerce_to(c.data_type).map_err(|_| {
                StorageError::SchemaMismatch(format!(
                    "value {v} does not fit column '{}' of type {}",
                    c.name, c.data_type
                ))
            })?);
        }
        Ok(Row::new(out))
    }

    /// Serialize to the one-line catalog text format:
    /// `name:TYPE[:N][:P], ...` (`N` = NOT NULL, `P` = PRIMARY KEY).
    pub fn to_catalog_string(&self) -> String {
        self.columns
            .iter()
            .map(|c| {
                let mut s = format!("{}:{}", c.name, c.data_type);
                if c.primary_key {
                    s.push_str(":P");
                } else if !c.nullable {
                    s.push_str(":N");
                }
                s
            })
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Parse the format produced by [`Schema::to_catalog_string`].
    pub fn from_catalog_string(s: &str) -> StorageResult<Schema> {
        let mut cols = Vec::new();
        for part in s.split(',').filter(|p| !p.is_empty()) {
            let mut it = part.split(':');
            let name = it
                .next()
                .filter(|n| !n.is_empty())
                .ok_or_else(|| StorageError::Corrupt(format!("bad catalog column '{part}'")))?;
            let ty = it
                .next()
                .and_then(DataType::parse)
                .ok_or_else(|| StorageError::Corrupt(format!("bad catalog type in '{part}'")))?;
            let mut col = Column::new(name, ty);
            match it.next() {
                Some("P") => col = col.primary_key(),
                Some("N") => col = col.not_null(),
                Some(other) => {
                    return Err(StorageError::Corrupt(format!(
                        "bad catalog flag '{other}' in '{part}'"
                    )))
                }
                None => {}
            }
            cols.push(col);
        }
        Schema::new(cols)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_catalog_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parts_schema() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int).primary_key(),
            Column::new("name", DataType::Varchar).not_null(),
            Column::new("qty", DataType::Int),
            Column::new("last_modified", DataType::Timestamp),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_duplicate_columns() {
        let r = Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("a", DataType::Varchar),
        ]);
        assert!(r.is_err());
    }

    #[test]
    fn index_and_lookup() {
        let s = parts_schema();
        assert_eq!(s.index_of("qty"), Some(2));
        assert_eq!(s.index_of("nope"), None);
        assert_eq!(s.column("name").unwrap().data_type, DataType::Varchar);
    }

    #[test]
    fn primary_key_extraction() {
        let s = parts_schema();
        assert_eq!(s.primary_key_indices(), vec![0]);
        let row = Row::new(vec![
            Value::Int(7),
            Value::Str("bolt".into()),
            Value::Int(3),
            Value::Timestamp(100),
        ]);
        assert_eq!(s.primary_key_of(&row), vec![Value::Int(7)]);
    }

    #[test]
    fn validate_accepts_and_coerces() {
        let s = parts_schema();
        let row = Row::new(vec![
            Value::Int(1),
            Value::Str("nut".into()),
            Value::Null,
            Value::Int(42), // Int widens to Timestamp
        ]);
        let v = s.validate(&row).unwrap();
        assert_eq!(v.values()[3], Value::Timestamp(42));
    }

    #[test]
    fn validate_rejects_null_in_not_null() {
        let s = parts_schema();
        let row = Row::new(vec![Value::Int(1), Value::Null, Value::Null, Value::Null]);
        assert!(s.validate(&row).is_err());
    }

    #[test]
    fn validate_rejects_arity_mismatch() {
        let s = parts_schema();
        assert!(s.validate(&Row::new(vec![Value::Int(1)])).is_err());
    }

    #[test]
    fn catalog_string_round_trip() {
        let s = parts_schema();
        let text = s.to_catalog_string();
        let back = Schema::from_catalog_string(&text).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn catalog_string_rejects_garbage() {
        assert!(Schema::from_catalog_string("a:BLOB").is_err());
        assert!(Schema::from_catalog_string("a:INT:X").is_err());
    }
}
