//! Feature-gated runtime invariants.
//!
//! The [`invariant!`](crate::invariant) macro asserts internal consistency
//! conditions that are too expensive (or too paranoid) for production builds:
//! dense WAL LSNs, lock-manager writer exclusion, buffer-pool writeback
//! discipline, queue ack accounting. With the `invariants` feature off (the
//! default) the condition is type-checked but compiles to nothing; with it on
//! (`cargo test --features invariants`) a violated invariant panics with the
//! condition, location, and message.
//!
//! The feature is resolved *here*, at the macro's definition site, so
//! downstream crates enable it transitively via their own `invariants`
//! feature forwarding to `delta-storage/invariants`.

/// Assert a runtime invariant (active: `invariants` feature is on).
///
/// `invariant!(cond)` panics with the stringified condition;
/// `invariant!(cond, "fmt {}", args)` panics with the formatted message.
#[cfg(feature = "invariants")]
#[macro_export]
macro_rules! invariant {
    ($cond:expr $(,)?) => {
        if !$cond {
            panic!(
                "invariant violated: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            );
        }
    };
    ($cond:expr, $($arg:tt)+) => {
        if !$cond {
            panic!(
                "invariant violated: {} at {}:{}",
                format_args!($($arg)+),
                file!(),
                line!()
            );
        }
    };
}

/// Assert a runtime invariant (inactive: compiles to a type-check only).
#[cfg(not(feature = "invariants"))]
#[macro_export]
macro_rules! invariant {
    ($cond:expr $(,)?) => {
        let _ = || {
            let _: bool = $cond;
        };
    };
    ($cond:expr, $($arg:tt)+) => {
        let _ = || {
            let _: bool = $cond;
            let _ = format_args!($($arg)+);
        };
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn invariant_compiles_in_both_modes() {
        let x = 2;
        invariant!(x > 1);
        invariant!(x > 1, "x was {}", x);
    }

    #[test]
    #[cfg_attr(not(feature = "invariants"), ignore = "invariants feature off")]
    fn violated_invariant_panics_when_enabled() {
        let caught = std::panic::catch_unwind(|| {
            let x = 0;
            invariant!(x > 1, "x was {}", x);
        });
        assert!(caught.is_err());
    }

    #[test]
    #[cfg(not(feature = "invariants"))]
    fn violated_invariant_is_free_when_disabled() {
        let x = 0;
        invariant!(x > 1, "x was {}", x);
    }
}
