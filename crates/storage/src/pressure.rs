//! Deterministic disk-exhaustion modelling: byte budgets and per-path
//! quotas.
//!
//! A [`DiskBudget`] is a countdown of writable bytes, optionally refined by
//! per-path quotas (substring-matched against the file path). Every durable
//! write path — page files, the WAL group writer, checkpoint archive
//! compression, snapshot temp files, transport spool appends — asks the
//! budget to *admit* its bytes before touching the file:
//!
//! * **Granted** — the bytes fit; the budget is debited and the write
//!   proceeds normally.
//! * **Short** — only a prefix fits (the classic short write `ENOSPC`
//!   delivers mid-`write(2)`): the caller writes exactly `keep` bytes, then
//!   surfaces a typed [`StorageError::DiskFull`]. Recovery is the torn-tail
//!   story the storage formats already have.
//! * **Denied** — nothing fits; the caller writes nothing and surfaces the
//!   typed error. On-disk state is untouched.
//!
//! Like [`crate::fault`], everything here is deterministic: the same budget
//! and the same write sequence exhaust at the same byte, so a torture-run
//! failure reproduces exactly. Budgets are also *dynamic* — harnesses shrink
//! them mid-run ([`DiskBudget::set_global`]) and compaction credits
//! reclaimed bytes back ([`DiskBudget::credit`]) to model pressure lifting.

use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::error::StorageError;

/// The budget's verdict on a proposed write of `len` bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The write fits; the budget has been debited.
    Granted,
    /// Only `keep` bytes fit (now debited): act out a short write — persist
    /// the prefix, then fail with [`StorageError::DiskFull`].
    Short { keep: u64 },
    /// Nothing fits. Write nothing; fail typed.
    Denied,
}

/// One per-path quota: applies to any path containing `needle`.
struct PathQuota {
    needle: String,
    remaining: i64,
}

struct BudgetState {
    /// Global pool; `None` = unlimited (quotas may still constrain).
    global: Option<i64>,
    quotas: Vec<PathQuota>,
}

/// Counters for harness reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BudgetStats {
    /// Bytes admitted (fully or as short-write prefixes).
    pub charged: u64,
    /// Writes denied outright.
    pub denials: u64,
    /// Writes admitted only partially (short writes acted out).
    pub short_writes: u64,
}

/// A shared, deterministic disk-space budget. See the module docs.
pub struct DiskBudget {
    state: Mutex<BudgetState>,
    charged: AtomicU64,
    denials: AtomicU64,
    short_writes: AtomicU64,
}

impl DiskBudget {
    /// A budget with `bytes` in the global pool and no per-path quotas.
    pub fn bytes(bytes: u64) -> DiskBudget {
        DiskBudget {
            state: Mutex::new(BudgetState {
                global: Some(bytes.min(i64::MAX as u64) as i64),
                quotas: Vec::new(),
            }),
            charged: AtomicU64::new(0),
            denials: AtomicU64::new(0),
            short_writes: AtomicU64::new(0),
        }
    }

    /// An unlimited global pool (only quotas constrain, if any are added).
    pub fn unlimited() -> DiskBudget {
        DiskBudget {
            state: Mutex::new(BudgetState {
                global: None,
                quotas: Vec::new(),
            }),
            charged: AtomicU64::new(0),
            denials: AtomicU64::new(0),
            short_writes: AtomicU64::new(0),
        }
    }

    /// Add a quota of `bytes` for every path containing `needle` (builder
    /// style, before sharing the budget). The first matching quota applies.
    pub fn with_quota(self, needle: impl Into<String>, bytes: u64) -> DiskBudget {
        self.state.lock().quotas.push(PathQuota {
            needle: needle.into(),
            remaining: bytes.min(i64::MAX as u64) as i64,
        });
        self
    }

    /// Replace the global pool: `Some(bytes)` caps it, `None` lifts it.
    /// Harnesses use this to shrink the budget mid-run and to model
    /// pressure lifting.
    pub fn set_global(&self, bytes: Option<u64>) {
        self.state.lock().global = bytes.map(|b| b.min(i64::MAX as u64) as i64);
    }

    /// Credit `bytes` back (space reclaimed: a compacted spool, a replaced
    /// snapshot, a removed temp file). Credits the global pool and every
    /// quota matching `path`.
    pub fn credit(&self, path: &Path, bytes: u64) {
        let mut state = self.state.lock();
        let bytes = bytes.min(i64::MAX as u64) as i64;
        if let Some(g) = state.global.as_mut() {
            *g = g.saturating_add(bytes);
        }
        let key = path.to_string_lossy().into_owned();
        for q in state.quotas.iter_mut() {
            if key.contains(&q.needle) {
                q.remaining = q.remaining.saturating_add(bytes);
                break;
            }
        }
    }

    /// Bytes still admissible for `path` (`None` = unconstrained).
    pub fn remaining(&self, path: &Path) -> Option<u64> {
        let state = self.state.lock();
        let key = path.to_string_lossy();
        let quota = state
            .quotas
            .iter()
            .find(|q| key.contains(&q.needle))
            .map(|q| q.remaining.max(0) as u64);
        match (state.global, quota) {
            (Some(g), Some(q)) => Some((g.max(0) as u64).min(q)),
            (Some(g), None) => Some(g.max(0) as u64),
            (None, q) => q,
        }
    }

    /// Ask to write `len` bytes to `path`. Debits on `Granted` and `Short`.
    pub fn admit(&self, path: &Path, len: u64) -> Admission {
        let mut state = self.state.lock();
        let key = path.to_string_lossy().into_owned();
        let quota_at = state.quotas.iter().position(|q| key.contains(&q.needle));
        let available = {
            let quota = quota_at.map(|i| state.quotas[i].remaining);
            match (state.global, quota) {
                (None, None) => {
                    drop(state);
                    self.charged.fetch_add(len, Ordering::Relaxed);
                    return Admission::Granted;
                }
                (Some(g), Some(q)) => g.min(q),
                (Some(g), None) => g,
                (None, Some(q)) => q,
            }
        };
        let len_i = len.min(i64::MAX as u64) as i64;
        if available >= len_i {
            if let Some(g) = state.global.as_mut() {
                *g -= len_i;
            }
            if let Some(i) = quota_at {
                state.quotas[i].remaining -= len_i;
            }
            drop(state);
            self.charged.fetch_add(len, Ordering::Relaxed);
            Admission::Granted
        } else if available > 0 {
            let keep = available;
            if let Some(g) = state.global.as_mut() {
                *g -= keep;
            }
            if let Some(i) = quota_at {
                state.quotas[i].remaining -= keep;
            }
            drop(state);
            self.charged.fetch_add(keep as u64, Ordering::Relaxed);
            self.short_writes.fetch_add(1, Ordering::Relaxed);
            Admission::Short { keep: keep as u64 }
        } else {
            drop(state);
            self.denials.fetch_add(1, Ordering::Relaxed);
            Admission::Denied
        }
    }

    /// Unconditional debit, even past exhaustion (the pool floor is zero
    /// for admission purposes but the deficit is remembered). Used by
    /// maintenance paths that are exempt from admission — e.g. spool
    /// compaction's staged rewrite, which must be able to run *under*
    /// exhaustion because it is how pressure lifts — so the accounting
    /// still reflects every byte on disk.
    pub fn charge(&self, path: &Path, bytes: u64) {
        let mut state = self.state.lock();
        let bytes_i = bytes.min(i64::MAX as u64) as i64;
        if let Some(g) = state.global.as_mut() {
            *g = g.saturating_sub(bytes_i);
        }
        let key = path.to_string_lossy().into_owned();
        for q in state.quotas.iter_mut() {
            if key.contains(&q.needle) {
                q.remaining = q.remaining.saturating_sub(bytes_i);
                break;
            }
        }
        drop(state);
        self.charged.fetch_add(bytes, Ordering::Relaxed);
    }

    /// All-or-nothing admission: `Granted` debits and succeeds; `Short` and
    /// `Denied` debit nothing and return the typed error. For tmp+rename
    /// writers that must never leave a half-written temp behind.
    pub fn admit_full(&self, path: &Path, len: u64) -> Result<(), StorageError> {
        match self.admit(path, len) {
            Admission::Granted => Ok(()),
            Admission::Short { keep } => {
                // The prefix was debited but will not be written: credit it
                // back so the accounting matches the disk.
                self.credit(path, keep);
                Err(self.error(path, len))
            }
            Admission::Denied => Err(self.error(path, len)),
        }
    }

    /// The typed error an exhausted admission surfaces as.
    pub fn error(&self, path: &Path, needed: u64) -> StorageError {
        StorageError::DiskFull {
            path: path.display().to_string(),
            needed,
            remaining: self.remaining(path).unwrap_or(0),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> BudgetStats {
        BudgetStats {
            charged: self.charged.load(Ordering::Relaxed),
            denials: self.denials.load(Ordering::Relaxed),
            short_writes: self.short_writes.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for DiskBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock();
        f.debug_struct("DiskBudget")
            .field("global", &state.global)
            .field("quotas", &state.quotas.len())
            .field("stats", &self.stats())
            .finish()
    }
}

/// A marker payload embedded in [`io::Error`] by budget-aware writers whose
/// errors travel through `io::Error` before reaching the storage layer.
/// [`StorageError::from`] recognizes it and produces a typed
/// [`StorageError::DiskFull`] instead of an opaque `Io`.
#[derive(Debug)]
pub struct DiskFullMark {
    pub path: String,
    pub needed: u64,
}

impl std::fmt::Display for DiskFullMark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "disk budget exhausted writing {} ({} bytes needed)",
            self.path, self.needed
        )
    }
}

impl std::error::Error for DiskFullMark {}

/// An `io::Error` carrying a [`DiskFullMark`], for budget checks made below
/// an `io::Write` boundary.
pub fn enospc(path: &Path, needed: u64) -> io::Error {
    io::Error::other(DiskFullMark {
        path: path.display().to_string(),
        needed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn global_budget_counts_down_to_short_then_denied() {
        let b = DiskBudget::bytes(100);
        assert_eq!(b.admit(&p("/x/a"), 60), Admission::Granted);
        assert_eq!(b.admit(&p("/x/b"), 60), Admission::Short { keep: 40 });
        assert_eq!(b.admit(&p("/x/c"), 1), Admission::Denied);
        let s = b.stats();
        assert_eq!((s.charged, s.short_writes, s.denials), (100, 1, 1));
    }

    #[test]
    fn quota_constrains_matching_paths_only() {
        let b = DiskBudget::unlimited().with_quota("spool", 10);
        assert_eq!(b.admit(&p("/data/heap.db"), 1000), Admission::Granted);
        assert_eq!(b.admit(&p("/data/spool.q"), 8), Admission::Granted);
        assert_eq!(b.admit(&p("/data/spool.q"), 8), Admission::Short { keep: 2 });
        assert_eq!(b.admit(&p("/data/spool.q"), 1), Admission::Denied);
        assert_eq!(b.admit(&p("/data/heap.db"), 1000), Admission::Granted);
    }

    #[test]
    fn min_of_global_and_quota_applies() {
        let b = DiskBudget::bytes(5).with_quota("spool", 100);
        assert_eq!(b.admit(&p("/s/spool.q"), 10), Admission::Short { keep: 5 });
        assert_eq!(b.remaining(&p("/s/spool.q")), Some(0));
    }

    #[test]
    fn credit_and_set_global_lift_pressure() {
        let b = DiskBudget::bytes(10);
        assert_eq!(b.admit(&p("/x"), 10), Admission::Granted);
        assert_eq!(b.admit(&p("/x"), 1), Admission::Denied);
        b.credit(&p("/x"), 5);
        assert_eq!(b.admit(&p("/x"), 5), Admission::Granted);
        b.set_global(None);
        assert_eq!(b.admit(&p("/x"), 1 << 40), Admission::Granted);
    }

    #[test]
    fn admit_full_never_debits_on_failure() {
        let b = DiskBudget::bytes(10);
        let err = b.admit_full(&p("/x"), 11).unwrap_err();
        assert!(matches!(err, StorageError::DiskFull { .. }));
        assert_eq!(b.remaining(&p("/x")), Some(10), "nothing was debited");
        b.admit_full(&p("/x"), 10).unwrap();
        assert_eq!(b.remaining(&p("/x")), Some(0));
    }

    #[test]
    fn enospc_io_error_converts_to_typed_disk_full() {
        let e: StorageError = enospc(&p("/spool.q"), 64).into();
        match e {
            StorageError::DiskFull { path, needed, .. } => {
                assert!(path.contains("spool.q"));
                assert_eq!(needed, 64);
            }
            other => panic!("expected DiskFull, got {other:?}"),
        }
    }

    #[test]
    fn exhaustion_is_deterministic() {
        let run = || {
            let b = DiskBudget::bytes(1000).with_quota("wal", 300);
            let mut verdicts = Vec::new();
            for i in 0..20u64 {
                let path = if i % 2 == 0 { "/d/wal/seg" } else { "/d/heap" };
                verdicts.push(b.admit(&p(path), 67));
            }
            verdicts
        };
        assert_eq!(run(), run());
    }
}
