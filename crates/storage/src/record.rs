//! Rows and the schema-directed binary row codec.
//!
//! The on-page representation is a compact tagged encoding: a one-byte type
//! tag per cell followed by the cell payload. Strings are length-prefixed.
//! This is the format the engine's heap files, WAL records, and the binary
//! Export utility all share *within one product* — the paper's point that
//! export formats are proprietary is modelled one level up, in
//! [`crate::codec::export`].

use bytes::{Buf, BufMut};

use crate::error::{StorageError, StorageResult};
use crate::value::Value;

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_DOUBLE: u8 = 2;
const TAG_STR: u8 = 3;
const TAG_TIMESTAMP: u8 = 4;
const TAG_BOOL: u8 = 5;

/// A row of values. Rows are schema-agnostic at this layer; the engine
/// validates them against a [`crate::schema::Schema`] before storing.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Row {
    values: Vec<Value>,
}

impl Row {
    pub fn new(values: Vec<Value>) -> Row {
        Row { values }
    }

    pub fn values(&self) -> &[Value] {
        &self.values
    }

    pub fn values_mut(&mut self) -> &mut [Value] {
        &mut self.values
    }

    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Get a cell by position.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// Replace a cell by position.
    pub fn set(&mut self, idx: usize, v: Value) {
        self.values[idx] = v;
    }

    /// Encoded size in bytes (exact, matches [`Row::encode`]).
    pub fn encoded_size(&self) -> usize {
        2 + self
            .values
            .iter()
            .map(|v| match v {
                Value::Null => 1,
                Value::Int(_) | Value::Timestamp(_) | Value::Double(_) => 9,
                Value::Bool(_) => 2,
                Value::Str(s) => 5 + s.len(),
            })
            .sum::<usize>()
    }

    /// Append the binary encoding of this row to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.put_u16(self.values.len() as u16);
        for v in &self.values {
            match v {
                Value::Null => out.put_u8(TAG_NULL),
                Value::Int(i) => {
                    out.put_u8(TAG_INT);
                    out.put_i64(*i);
                }
                Value::Double(d) => {
                    out.put_u8(TAG_DOUBLE);
                    out.put_f64(*d);
                }
                Value::Str(s) => {
                    out.put_u8(TAG_STR);
                    out.put_u32(s.len() as u32);
                    out.put_slice(s.as_bytes());
                }
                Value::Timestamp(t) => {
                    out.put_u8(TAG_TIMESTAMP);
                    out.put_i64(*t);
                }
                Value::Bool(b) => {
                    out.put_u8(TAG_BOOL);
                    out.put_u8(*b as u8);
                }
            }
        }
    }

    /// Encode to a fresh buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_size());
        self.encode(&mut out);
        out
    }

    /// Decode a row from the front of `buf`, advancing it.
    pub fn decode(buf: &mut &[u8]) -> StorageResult<Row> {
        if buf.remaining() < 2 {
            return Err(StorageError::Corrupt("row header truncated".into()));
        }
        let n = buf.get_u16() as usize;
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            if buf.remaining() < 1 {
                return Err(StorageError::Corrupt("row cell tag truncated".into()));
            }
            let tag = buf.get_u8();
            let v = match tag {
                TAG_NULL => Value::Null,
                TAG_INT => {
                    if buf.remaining() < 8 {
                        return Err(StorageError::Corrupt("int cell truncated".into()));
                    }
                    Value::Int(buf.get_i64())
                }
                TAG_DOUBLE => {
                    if buf.remaining() < 8 {
                        return Err(StorageError::Corrupt("double cell truncated".into()));
                    }
                    Value::Double(buf.get_f64())
                }
                TAG_STR => {
                    if buf.remaining() < 4 {
                        return Err(StorageError::Corrupt("string length truncated".into()));
                    }
                    let len = buf.get_u32() as usize;
                    if buf.remaining() < len {
                        return Err(StorageError::Corrupt("string cell truncated".into()));
                    }
                    let s = std::str::from_utf8(&buf[..len])
                        .map_err(|_| StorageError::Corrupt("string cell not UTF-8".into()))?
                        .to_string();
                    buf.advance(len);
                    Value::Str(s)
                }
                TAG_TIMESTAMP => {
                    if buf.remaining() < 8 {
                        return Err(StorageError::Corrupt("timestamp cell truncated".into()));
                    }
                    Value::Timestamp(buf.get_i64())
                }
                TAG_BOOL => {
                    if buf.remaining() < 1 {
                        return Err(StorageError::Corrupt("bool cell truncated".into()));
                    }
                    Value::Bool(buf.get_u8() != 0)
                }
                other => return Err(StorageError::Corrupt(format!("unknown cell tag {other}"))),
            };
            values.push(v);
        }
        Ok(Row { values })
    }

    /// Decode from a complete buffer, requiring full consumption.
    pub fn from_bytes(mut buf: &[u8]) -> StorageResult<Row> {
        let row = Row::decode(&mut buf)?;
        if !buf.is_empty() {
            return Err(StorageError::Corrupt(format!(
                "{} trailing bytes after row",
                buf.len()
            )));
        }
        Ok(row)
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Row {
        Row::new(vec![
            Value::Int(42),
            Value::Str("widget".into()),
            Value::Null,
            Value::Double(2.5),
            Value::Timestamp(1_000_000),
            Value::Bool(true),
        ])
    }

    #[test]
    fn round_trip() {
        let r = sample();
        let bytes = r.to_bytes();
        assert_eq!(bytes.len(), r.encoded_size());
        let back = Row::from_bytes(&bytes).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn empty_row_round_trips() {
        let r = Row::new(vec![]);
        assert_eq!(Row::from_bytes(&r.to_bytes()).unwrap(), r);
    }

    #[test]
    fn decode_rejects_truncation_at_every_length() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                Row::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let mut bytes = sample().to_bytes();
        bytes.push(0xFF);
        assert!(Row::from_bytes(&bytes).is_err());
    }

    #[test]
    fn decode_rejects_unknown_tag() {
        let mut bytes = vec![];
        bytes.put_u16(1);
        bytes.put_u8(99);
        assert!(Row::from_bytes(&bytes).is_err());
    }

    #[test]
    fn decode_rejects_invalid_utf8() {
        let mut bytes = vec![];
        bytes.put_u16(1);
        bytes.put_u8(3); // TAG_STR
        bytes.put_u32(2);
        bytes.put_slice(&[0xFF, 0xFE]);
        assert!(Row::from_bytes(&bytes).is_err());
    }

    #[test]
    fn multiple_rows_decode_sequentially() {
        let a = sample();
        let b = Row::new(vec![Value::Int(1)]);
        let mut buf = Vec::new();
        a.encode(&mut buf);
        b.encode(&mut buf);
        let mut cursor = &buf[..];
        assert_eq!(Row::decode(&mut cursor).unwrap(), a);
        assert_eq!(Row::decode(&mut cursor).unwrap(), b);
        assert!(cursor.is_empty());
    }
}
