//! Error type shared by the storage layer.

use std::fmt;
use std::io;

/// Result alias used throughout the storage crate.
pub type StorageResult<T> = Result<T, StorageError>;

/// The physical file operation an I/O error occurred in. Carried by
/// [`StorageError::PageIo`] and [`StorageError::InjectedFault`] so a failure
/// deep inside a torture run is diagnosable from the error alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoOp {
    Read,
    Write,
    Sync,
    Allocate,
    Truncate,
}

impl fmt::Display for IoOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IoOp::Read => "read",
            IoOp::Write => "write",
            IoOp::Sync => "sync",
            IoOp::Allocate => "allocate",
            IoOp::Truncate => "truncate",
        })
    }
}

/// Errors raised by the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying file I/O failed.
    Io(io::Error),
    /// A page or record reference pointed at something that does not exist.
    NotFound(String),
    /// A page had no room for the requested operation.
    PageFull,
    /// A record was too large to ever fit in a page.
    RecordTooLarge { size: usize, max: usize },
    /// On-disk bytes did not decode (corruption, wrong codec, wrong version).
    Corrupt(String),
    /// A row did not conform to the schema it was encoded/validated against.
    SchemaMismatch(String),
    /// A typed value was used where a different type was required.
    TypeError(String),
    /// The buffer pool had no evictable frame (everything pinned).
    PoolExhausted,
    /// An export file was produced by an incompatible product or version.
    IncompatibleFormat { expected: String, found: String },
    /// A page-granular file operation failed, with full context: which
    /// operation, on which file, at which page (when page-addressed).
    PageIo {
        op: IoOp,
        path: String,
        page: Option<u32>,
        source: io::Error,
    },
    /// A deterministic fault-injection plan fired on this operation. Only
    /// ever produced under an armed [`crate::fault::FaultInjector`]; seeing
    /// it in production means a test harness leaked its fault plan.
    InjectedFault {
        op: IoOp,
        path: String,
        detail: String,
    },
    /// The disk (or an armed [`crate::pressure::DiskBudget`]) had no room
    /// for the write. Unlike [`StorageError::Corrupt`] this is *transient*:
    /// on-disk state stays recoverable and the operation can be retried once
    /// space is reclaimed.
    DiskFull {
        path: String,
        /// Bytes the failed write needed.
        needed: u64,
        /// Bytes that were still admissible when it failed.
        remaining: u64,
    },
}

impl StorageError {
    /// True for the transient out-of-space condition (retryable once
    /// pressure lifts), as opposed to corruption or logic errors.
    pub fn is_disk_full(&self) -> bool {
        matches!(self, StorageError::DiskFull { .. })
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
            StorageError::NotFound(what) => write!(f, "not found: {what}"),
            StorageError::PageFull => write!(f, "page full"),
            StorageError::RecordTooLarge { size, max } => {
                write!(
                    f,
                    "record of {size} bytes exceeds page capacity of {max} bytes"
                )
            }
            StorageError::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
            StorageError::SchemaMismatch(msg) => write!(f, "schema mismatch: {msg}"),
            StorageError::TypeError(msg) => write!(f, "type error: {msg}"),
            StorageError::PoolExhausted => write!(f, "buffer pool exhausted (all frames pinned)"),
            StorageError::IncompatibleFormat { expected, found } => {
                write!(
                    f,
                    "incompatible export format: expected {expected}, found {found}"
                )
            }
            StorageError::PageIo {
                op,
                path,
                page,
                source,
            } => match page {
                Some(p) => write!(f, "{op} failed on {path} page {p}: {source}"),
                None => write!(f, "{op} failed on {path}: {source}"),
            },
            StorageError::InjectedFault { op, path, detail } => {
                write!(f, "injected fault on {op} of {path}: {detail}")
            }
            StorageError::DiskFull {
                path,
                needed,
                remaining,
            } => {
                write!(
                    f,
                    "disk full writing {path}: needed {needed} bytes, {remaining} admissible"
                )
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            StorageError::PageIo { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        // Budget-aware writers below an `io::Write` boundary smuggle a
        // typed marker through `io::Error` (see `pressure::enospc`); unwrap
        // it here so every `?` site surfaces a typed `DiskFull`.
        if let Some(mark) = e
            .get_ref()
            .and_then(|inner| inner.downcast_ref::<crate::pressure::DiskFullMark>())
        {
            return StorageError::DiskFull {
                path: mark.path.clone(),
                needed: mark.needed,
                remaining: 0,
            };
        }
        StorageError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_detail() {
        let e = StorageError::RecordTooLarge {
            size: 9000,
            max: 8100,
        };
        let s = e.to_string();
        assert!(s.contains("9000"));
        assert!(s.contains("8100"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        let e: StorageError = io::Error::other("boom").into();
        assert!(e.to_string().contains("boom"));
        use std::error::Error;
        assert!(e.source().is_some());
    }

    #[test]
    fn page_io_carries_full_context() {
        let e = StorageError::PageIo {
            op: IoOp::Write,
            path: "/tmp/t.db".into(),
            page: Some(42),
            source: io::Error::other("disk on fire"),
        };
        let s = e.to_string();
        assert!(s.contains("write") && s.contains("/tmp/t.db") && s.contains("42"));
        use std::error::Error;
        assert!(e.source().is_some());
    }

    #[test]
    fn injected_fault_names_the_operation() {
        let e = StorageError::InjectedFault {
            op: IoOp::Sync,
            path: "wal.seg".into(),
            detail: "EIO at op 7".into(),
        };
        let s = e.to_string();
        assert!(s.contains("injected fault") && s.contains("sync") && s.contains("wal.seg"));
    }

    #[test]
    fn incompatible_format_mentions_both_sides() {
        let e = StorageError::IncompatibleFormat {
            expected: "cotsdb/1".into(),
            found: "otherdb/2".into(),
        };
        let s = e.to_string();
        assert!(s.contains("cotsdb/1") && s.contains("otherdb/2"));
    }
}
