//! Deterministic, seeded fault injection for the storage tier.
//!
//! A [`FaultPlan`] is a reproducible schedule of physical-I/O faults: "fail
//! the 7th write", "tear the 3rd write after 100 bytes", "drop the 2nd
//! fsync", "crash at the 12th sync". A [`FaultInjector`] arms the plan and is
//! threaded into [`crate::file::DiskFile`] (and, via `DbOptions`, into the
//! engine's WAL writer), where every physical operation consults it first.
//!
//! Determinism is the whole point: the same seed always produces the same
//! schedule, operations are counted per kind, and a torture-harness failure
//! reproduces exactly from its printed seed. Nothing here uses wall-clock
//! time or OS randomness.
//!
//! Point faults ("fail the 7th write") live here; *sustained* resource
//! exhaustion — ENOSPC byte budgets and per-path quotas that count every
//! written byte down to a deterministic wall — lives in [`crate::pressure`]
//! and is threaded through the same `DbOptions` plumbing.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::error::{IoOp, StorageError};

/// What an armed fault does when its trigger fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Fail the operation with a typed [`StorageError::InjectedFault`]
    /// (a simulated `EIO`). The operation has no effect.
    Error,
    /// Perform only the first `keep` bytes of the write, then fail. Models a
    /// power cut mid-write: the prefix is on disk, the caller sees an error.
    TornWrite { keep: u32 },
    /// Report success without syncing (the classic lying-fsync firmware bug).
    /// Data stays in OS buffers; a later simulated crash may lose it.
    DropSync,
    /// Fail this and every subsequent operation until the injector is
    /// disarmed: the process is "dead" and the harness must recover by
    /// reopening the database.
    Crash,
}

/// One scheduled fault: fire on the `at`-th operation of kind `op`
/// (0-based, counted per kind over the injector's lifetime).
#[derive(Debug, Clone, Copy)]
pub struct ScheduledFault {
    pub op: IoOp,
    pub at: u64,
    pub action: FaultAction,
}

/// A reproducible fault schedule. The `seed` is bookkeeping for reproduction
/// messages; the schedule itself is the explicit fault list.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    pub seed: u64,
    pub faults: Vec<ScheduledFault>,
}

impl FaultPlan {
    /// An empty plan tagged with `seed`.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Schedule a hard error on the `at`-th `op`.
    pub fn fail(mut self, op: IoOp, at: u64) -> FaultPlan {
        self.faults.push(ScheduledFault {
            op,
            at,
            action: FaultAction::Error,
        });
        self
    }

    /// Schedule a torn write: the `at`-th write keeps only `keep` bytes.
    pub fn torn_write(mut self, at: u64, keep: u32) -> FaultPlan {
        self.faults.push(ScheduledFault {
            op: IoOp::Write,
            at,
            action: FaultAction::TornWrite { keep },
        });
        self
    }

    /// Schedule a dropped fsync on the `at`-th sync.
    pub fn drop_sync(mut self, at: u64) -> FaultPlan {
        self.faults.push(ScheduledFault {
            op: IoOp::Sync,
            at,
            action: FaultAction::DropSync,
        });
        self
    }

    /// Schedule a crash at the `at`-th `op`.
    pub fn crash(mut self, op: IoOp, at: u64) -> FaultPlan {
        self.faults.push(ScheduledFault {
            op,
            at,
            action: FaultAction::Crash,
        });
        self
    }

    /// A random plan of up to `budget` faults, each triggering within the
    /// first `horizon` operations of its kind. Fully determined by `seed`.
    pub fn random(seed: u64, budget: usize, horizon: u64) -> FaultPlan {
        let mut rng = seed;
        let mut plan = FaultPlan::new(seed);
        let horizon = horizon.max(1);
        for _ in 0..budget {
            let op = match splitmix64(&mut rng) % 3 {
                0 => IoOp::Write,
                1 => IoOp::Sync,
                _ => IoOp::Read,
            };
            let at = splitmix64(&mut rng) % horizon;
            let action = match splitmix64(&mut rng) % 8 {
                0 | 1 => FaultAction::Error,
                2 | 3 if op == IoOp::Write => FaultAction::TornWrite {
                    keep: (splitmix64(&mut rng) % 8192) as u32,
                },
                4 | 5 if op == IoOp::Sync => FaultAction::DropSync,
                6 => FaultAction::Crash,
                _ => FaultAction::Error,
            };
            plan.faults.push(ScheduledFault { op, at, action });
        }
        plan
    }
}

/// SplitMix64 — the deterministic generator behind every seeded schedule in
/// the fault layer (and reused by the transport simulator and the torture
/// harness). Advances `state` and returns the next value.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Counters and outcome of an armed plan (for harness reporting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Faults that actually fired.
    pub injected: u64,
    /// Whether a `Crash` action fired (the injector stays dead until
    /// [`FaultInjector::disarm`]).
    pub crashed: bool,
}

/// An armed [`FaultPlan`]: counts operations per kind and hands the scheduled
/// action to the I/O layer at the exact scheduled operation.
pub struct FaultInjector {
    seed: u64,
    remaining: Mutex<Vec<ScheduledFault>>,
    // One counter per IoOp discriminant: Read, Write, Sync, Allocate, Truncate.
    counters: [AtomicU64; 5],
    crashed: AtomicBool,
    injected: AtomicU64,
}

fn op_index(op: IoOp) -> usize {
    match op {
        IoOp::Read => 0,
        IoOp::Write => 1,
        IoOp::Sync => 2,
        IoOp::Allocate => 3,
        IoOp::Truncate => 4,
    }
}

impl FaultInjector {
    /// Arm `plan`.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            seed: plan.seed,
            remaining: Mutex::new(plan.faults),
            counters: Default::default(),
            crashed: AtomicBool::new(false),
            injected: AtomicU64::new(0),
        }
    }

    /// The seed the armed plan was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Consult the injector for the next operation of kind `op`. Returns the
    /// action to take, or `None` for a clean pass-through. Once a `Crash`
    /// fires, every later call returns `Crash` until [`disarm`](Self::disarm).
    pub fn decide(&self, op: IoOp) -> Option<FaultAction> {
        if self.crashed.load(Ordering::Acquire) {
            return Some(FaultAction::Crash);
        }
        let n = self.counters[op_index(op)].fetch_add(1, Ordering::AcqRel);
        let mut remaining = self.remaining.lock();
        let hit = remaining.iter().position(|f| f.op == op && f.at == n)?;
        let fault = remaining.swap_remove(hit);
        drop(remaining);
        self.injected.fetch_add(1, Ordering::Relaxed);
        if fault.action == FaultAction::Crash {
            self.crashed.store(true, Ordering::Release);
        }
        Some(fault.action)
    }

    /// Whether a crash action has fired.
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::Acquire)
    }

    /// Disarm: drop all pending faults and clear the crashed flag. Used by
    /// harnesses for the final, clean convergence pass.
    pub fn disarm(&self) {
        self.remaining.lock().clear();
        self.crashed.store(false, Ordering::Release);
    }

    /// Counters and outcome so far.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            injected: self.injected.load(Ordering::Relaxed),
            crashed: self.crashed(),
        }
    }

    /// The typed error a fired fault surfaces as.
    pub fn error(&self, op: IoOp, path: &std::path::Path, action: FaultAction) -> StorageError {
        let detail = match action {
            FaultAction::Error => format!("EIO (seed {})", self.seed),
            FaultAction::TornWrite { keep } => {
                format!("torn write, {keep} bytes kept (seed {})", self.seed)
            }
            FaultAction::DropSync => format!("dropped sync (seed {})", self.seed),
            FaultAction::Crash => format!("simulated crash (seed {})", self.seed),
        };
        StorageError::InjectedFault {
            op,
            path: path.display().to_string(),
            detail,
        }
    }
}

impl fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultInjector")
            .field("seed", &self.seed)
            .field("pending", &self.remaining.lock().len())
            .field("crashed", &self.crashed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = 42u64;
        let mut b = 42u64;
        let xs: Vec<u64> = (0..8).map(|_| splitmix64(&mut a)).collect();
        let ys: Vec<u64> = (0..8).map(|_| splitmix64(&mut b)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs[0], xs[1]);
    }

    #[test]
    fn random_plans_reproduce_from_seed() {
        let a = FaultPlan::random(7, 10, 100);
        let b = FaultPlan::random(7, 10, 100);
        assert_eq!(a.faults.len(), b.faults.len());
        for (x, y) in a.faults.iter().zip(&b.faults) {
            assert_eq!((x.op, x.at, x.action), (y.op, y.at, y.action));
        }
        let c = FaultPlan::random(8, 10, 100);
        let same = a
            .faults
            .iter()
            .zip(&c.faults)
            .all(|(x, y)| (x.op, x.at, x.action) == (y.op, y.at, y.action));
        assert!(!same, "different seeds must give different schedules");
    }

    #[test]
    fn fires_at_exact_operation_index() {
        let inj = FaultInjector::new(FaultPlan::new(1).fail(IoOp::Write, 2));
        assert_eq!(inj.decide(IoOp::Write), None);
        assert_eq!(inj.decide(IoOp::Read), None); // separate counter
        assert_eq!(inj.decide(IoOp::Write), None);
        assert_eq!(inj.decide(IoOp::Write), Some(FaultAction::Error));
        assert_eq!(inj.decide(IoOp::Write), None); // consumed
        assert_eq!(inj.stats().injected, 1);
    }

    #[test]
    fn crash_is_sticky_until_disarmed() {
        let inj = FaultInjector::new(FaultPlan::new(1).crash(IoOp::Sync, 0));
        assert_eq!(inj.decide(IoOp::Sync), Some(FaultAction::Crash));
        assert!(inj.crashed());
        assert_eq!(inj.decide(IoOp::Read), Some(FaultAction::Crash));
        assert_eq!(inj.decide(IoOp::Write), Some(FaultAction::Crash));
        inj.disarm();
        assert!(!inj.crashed());
        assert_eq!(inj.decide(IoOp::Write), None);
    }

    #[test]
    fn injected_error_is_typed_and_names_the_seed() {
        let inj = FaultInjector::new(FaultPlan::new(99));
        let e = inj.error(
            IoOp::Write,
            std::path::Path::new("/x/y.db"),
            FaultAction::Error,
        );
        match &e {
            StorageError::InjectedFault { op, path, detail } => {
                assert_eq!(*op, IoOp::Write);
                assert!(path.contains("y.db"));
                assert!(detail.contains("99"));
            }
            other => panic!("expected InjectedFault, got {other:?}"),
        }
    }
}
