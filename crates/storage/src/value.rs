//! Typed column values.
//!
//! The engine stores dynamically typed rows; every cell is a [`Value`] and the
//! schema pins each column to a [`DataType`]. The benchmark workloads in the
//! paper use fixed 100-byte records of integers, strings and a timestamp, all
//! of which are representable here.

use std::cmp::Ordering;
use std::fmt;

use crate::error::{StorageError, StorageResult};

/// Data types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 float.
    Double,
    /// Variable-length UTF-8 string (optionally length-capped by the schema).
    Varchar,
    /// Microseconds since the Unix epoch. The paper's timestamp-based
    /// extraction method (§3.1.1) queries on a column of this type.
    Timestamp,
    /// Boolean.
    Bool,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Double => "DOUBLE",
            DataType::Varchar => "VARCHAR",
            DataType::Timestamp => "TIMESTAMP",
            DataType::Bool => "BOOL",
        };
        f.write_str(s)
    }
}

impl DataType {
    /// Parse a type name as it appears in SQL `CREATE TABLE`.
    pub fn parse(s: &str) -> Option<DataType> {
        match s.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" | "BIGINT" => Some(DataType::Int),
            "DOUBLE" | "FLOAT" | "REAL" => Some(DataType::Double),
            "VARCHAR" | "TEXT" | "CHAR" | "STRING" => Some(DataType::Varchar),
            "TIMESTAMP" | "DATETIME" => Some(DataType::Timestamp),
            "BOOL" | "BOOLEAN" => Some(DataType::Bool),
            _ => None,
        }
    }
}

/// A dynamically typed cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Int(i64),
    Double(f64),
    Str(String),
    /// Microseconds since the Unix epoch.
    Timestamp(i64),
    Bool(bool),
}

impl Value {
    /// The type of this value, or `None` for `Null` (which conforms to any type).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Double(_) => Some(DataType::Double),
            Value::Str(_) => Some(DataType::Varchar),
            Value::Timestamp(_) => Some(DataType::Timestamp),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// Whether this value may be stored in a column of type `ty`.
    ///
    /// `Int` is accepted into `Timestamp` and `Double` columns (widening), as
    /// every SQL dialect the paper's source systems use allows.
    pub fn conforms_to(&self, ty: DataType) -> bool {
        matches!(
            (self, ty),
            (Value::Null, _)
                | (Value::Int(_), DataType::Int)
                | (Value::Int(_), DataType::Double)
                | (Value::Int(_), DataType::Timestamp)
                | (Value::Double(_), DataType::Double)
                | (Value::Str(_), DataType::Varchar)
                | (Value::Timestamp(_), DataType::Timestamp)
                | (Value::Bool(_), DataType::Bool)
        )
    }

    /// Coerce to the exact storage representation of `ty`, if conformant.
    pub fn coerce_to(&self, ty: DataType) -> StorageResult<Value> {
        if !self.conforms_to(ty) {
            return Err(StorageError::TypeError(format!(
                "cannot store {self} in a {ty} column"
            )));
        }
        Ok(match (self, ty) {
            (Value::Int(i), DataType::Double) => Value::Double(*i as f64),
            (Value::Int(i), DataType::Timestamp) => Value::Timestamp(*i),
            _ => self.clone(),
        })
    }

    /// True if this is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Extract an `i64` from `Int` or `Timestamp`.
    pub fn as_int(&self) -> StorageResult<i64> {
        match self {
            Value::Int(i) | Value::Timestamp(i) => Ok(*i),
            other => Err(StorageError::TypeError(format!(
                "{other} is not an integer"
            ))),
        }
    }

    /// Extract an `f64` from `Double` or `Int`.
    pub fn as_double(&self) -> StorageResult<f64> {
        match self {
            Value::Double(d) => Ok(*d),
            Value::Int(i) => Ok(*i as f64),
            other => Err(StorageError::TypeError(format!("{other} is not a double"))),
        }
    }

    /// Extract a `&str` from `Str`.
    pub fn as_str(&self) -> StorageResult<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(StorageError::TypeError(format!("{other} is not a string"))),
        }
    }

    /// Extract a `bool` from `Bool`.
    pub fn as_bool(&self) -> StorageResult<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(StorageError::TypeError(format!("{other} is not a boolean"))),
        }
    }

    /// SQL three-valued comparison: `None` if either side is NULL or the types
    /// are incomparable; numeric types compare across Int/Double.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Timestamp(a), Timestamp(b)) => Some(a.cmp(b)),
            (Int(a), Timestamp(b)) | (Timestamp(a), Int(b)) => Some(a.cmp(b)),
            (Double(a), Double(b)) => a.partial_cmp(b),
            (Int(a), Double(b)) => (*a as f64).partial_cmp(b),
            (Double(a), Int(b)) => a.partial_cmp(&(*b as f64)),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// SQL equality (NULL-aware): `None` when either side is NULL.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// Total order used by indexes and sort-based algorithms. NULL sorts first;
    /// values of different types sort by a fixed type rank. NaN sorts last
    /// among doubles.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) => 2,
                Value::Double(_) => 3,
                Value::Timestamp(_) => 4,
                Value::Str(_) => 5,
            }
        }
        match (self, other) {
            (Value::Double(a), Value::Double(b)) => a.total_cmp(b),
            _ => self
                .sql_cmp(other)
                .unwrap_or_else(|| rank(self).cmp(&rank(other))),
        }
    }

    /// Approximate in-memory/encoded size in bytes (used by cost accounting
    /// and the netsim transport to size messages).
    pub fn byte_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Int(_) | Value::Timestamp(_) | Value::Double(_) => 9,
            Value::Bool(_) => 2,
            Value::Str(s) => 5 + s.len(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            // `{:?}` keeps a decimal point (`2.0`, not `2`) so printed SQL
            // literals re-parse to the same type, and round-trips exactly.
            Value::Double(d) => write!(f, "{d:?}"),
            Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Value::Timestamp(t) => write!(f, "{t}"),
            Value::Bool(b) => f.write_str(if *b { "TRUE" } else { "FALSE" }),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_parse_round_trips_common_names() {
        assert_eq!(DataType::parse("int"), Some(DataType::Int));
        assert_eq!(DataType::parse("VARCHAR"), Some(DataType::Varchar));
        assert_eq!(DataType::parse("Timestamp"), Some(DataType::Timestamp));
        assert_eq!(DataType::parse("blob"), None);
    }

    #[test]
    fn null_conforms_to_everything() {
        for ty in [
            DataType::Int,
            DataType::Double,
            DataType::Varchar,
            DataType::Timestamp,
            DataType::Bool,
        ] {
            assert!(Value::Null.conforms_to(ty));
        }
    }

    #[test]
    fn int_widens_to_double_and_timestamp() {
        assert_eq!(
            Value::Int(7).coerce_to(DataType::Double).unwrap(),
            Value::Double(7.0)
        );
        assert_eq!(
            Value::Int(7).coerce_to(DataType::Timestamp).unwrap(),
            Value::Timestamp(7)
        );
        assert!(Value::Str("x".into()).coerce_to(DataType::Int).is_err());
    }

    #[test]
    fn sql_cmp_is_null_aware() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Int(2)), Some(Ordering::Less));
        assert_eq!(
            Value::Int(3).sql_cmp(&Value::Double(2.5)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn sql_eq_cross_numeric() {
        assert_eq!(Value::Int(2).sql_eq(&Value::Double(2.0)), Some(true));
        assert_eq!(Value::Int(2).sql_eq(&Value::Str("2".into())), None);
    }

    #[test]
    fn total_cmp_orders_mixed_types_deterministically() {
        let mut vals = [
            Value::Str("a".into()),
            Value::Null,
            Value::Int(1),
            Value::Bool(true),
        ];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[3], Value::Str("a".into()));
    }

    #[test]
    fn display_escapes_quotes() {
        assert_eq!(Value::Str("o'brien".into()).to_string(), "'o''brien'");
    }

    #[test]
    fn byte_size_reflects_string_length() {
        assert_eq!(Value::Str("abcd".into()).byte_size(), 9);
        assert_eq!(Value::Int(0).byte_size(), 9);
    }
}
