//! Multi-threaded stress for the sharded buffer pool: readers and writers
//! hammering a small pool (constant eviction pressure) while a churn thread
//! registers and deregisters short-lived files — the DROP TABLE path racing
//! in-flight miss reads and eviction writebacks.
//!
//! The properties under test: no torn pages (every record read belongs to
//! the writer that owns the page), deregistered files fail with a clean
//! `NotFound` rather than corruption or a hang, and the pool's counters and
//! in-flight bookkeeping survive the churn (checked by `flush_and_sync_all`,
//! which verifies the shard invariants when the `invariants` feature is on).

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

use delta_storage::{BufferPool, DiskFile, FileId, PageId, StorageError};

fn temp_dir(label: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("delta-pool-stress-{}-{label}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const STABLE: FileId = FileId(1);
const STABLE_PAGES: usize = 16;
const WRITERS: usize = 2;
const READERS: usize = 2;

#[test]
fn sharded_pool_survives_churned_files_under_eviction_pressure() {
    let dir = temp_dir("churn");
    let pool = Arc::new(BufferPool::with_shards(8, 4));
    pool.register_file(
        STABLE,
        Arc::new(DiskFile::open(dir.join("stable.db")).unwrap()),
    );

    // Seed every stable page with a marker record so readers can tell a
    // correct page from a torn or foreign one.
    let pids: Vec<PageId> = (0..STABLE_PAGES)
        .map(|i| {
            let pid = pool.allocate_page(STABLE).unwrap();
            pool.with_page_mut(pid, |p| p.insert(format!("seed-{i}").as_bytes()).unwrap())
                .unwrap();
            pid
        })
        .collect();

    let stop = AtomicBool::new(false);
    // The churn generation currently registered (0 = none); lets the prober
    // guess both live and dead FileIds.
    let live_gen = AtomicU32::new(0);

    std::thread::scope(|scope| {
        // Writers: each owns a disjoint half of the stable pages and appends
        // records tagged with its id. PageFull is fine; torn data is not.
        for w in 0..WRITERS {
            let pool = Arc::clone(&pool);
            let pids = pids.clone();
            scope.spawn(move || {
                let own: Vec<PageId> = pids
                    .iter()
                    .copied()
                    .enumerate()
                    .filter(|(i, _)| i % WRITERS == w)
                    .map(|(_, p)| p)
                    .collect();
                for i in 0..400u32 {
                    let pid = own[(i as usize) % own.len()];
                    pool.with_page_mut(pid, |p| {
                        p.insert(format!("w{w}-i{i}").as_bytes()).ok();
                    })
                    .unwrap();
                }
            });
        }

        // Readers: verify the seed marker survives every eviction/reload.
        for r in 0..READERS {
            let pool = Arc::clone(&pool);
            let pids = pids.clone();
            let stop = &stop;
            scope.spawn(move || {
                let mut x = 17u64 + r as u64;
                while !stop.load(Ordering::Relaxed) {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let pid = pids[(x >> 33) as usize % pids.len()];
                    let first = pool
                        .with_page(pid, |p| p.get(0).map(|rec| rec.to_vec()))
                        .unwrap();
                    let first = first.expect("seed record present");
                    assert!(
                        first.starts_with(b"seed-"),
                        "page {pid:?} lost its seed marker: {first:?}"
                    );
                }
            });
        }

        // Prober: pokes churn files by guessed id, racing deregistration.
        // Every outcome must be a clean success or a clean error.
        {
            let pool = Arc::clone(&pool);
            let stop = &stop;
            let live_gen = &live_gen;
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let g = live_gen.load(Ordering::Relaxed).max(1);
                    let fid = FileId(100 + g);
                    let pid = PageId {
                        file: fid,
                        page_no: 0,
                    };
                    match pool.with_page(pid, |p| p.get(0).map(|r| r.to_vec())) {
                        Ok(Some(rec)) => assert!(
                            rec.starts_with(b"churn-"),
                            "churn page held foreign data: {rec:?}"
                        ),
                        Ok(None) => {}
                        Err(StorageError::NotFound(_)) | Err(StorageError::Io(_)) => {}
                        Err(e) => panic!("unexpected error probing churn file: {e}"),
                    }
                    std::thread::yield_now();
                }
            });
        }

        // Churn: short-lived files registered, written through the pool
        // (forcing stable pages out), then dropped mid-flight.
        for g in 1..=40u32 {
            let fid = FileId(100 + g);
            let path = dir.join(format!("churn-{g}.db"));
            let _ = std::fs::remove_file(&path);
            pool.register_file(fid, Arc::new(DiskFile::open(&path).unwrap()));
            live_gen.store(g, Ordering::Relaxed);
            for _ in 0..3 {
                let pid = pool.allocate_page(fid).unwrap();
                pool.with_page_mut(pid, |p| {
                    p.insert(format!("churn-{g}").as_bytes()).unwrap();
                })
                .unwrap();
            }
            // Deregister while our dirty pages are still cached (or already
            // being evicted by the stable-side traffic).
            pool.deregister_file(fid);
            let _ = std::fs::remove_file(&path);
        }
        stop.store(true, Ordering::Relaxed);
    });

    // Every stable page still holds its seed record plus only its owner's
    // writes, surviving the eviction churn intact.
    for (i, pid) in pids.iter().enumerate() {
        let owner = i % WRITERS;
        let ok = pool
            .with_page(*pid, |p| {
                let mut it = p.iter();
                let seed_ok = it
                    .next()
                    .is_some_and(|(_, r)| r == format!("seed-{i}").as_bytes());
                seed_ok && it.all(|(_, r)| r.starts_with(format!("w{owner}-").as_bytes()))
            })
            .unwrap();
        assert!(ok, "page {i} corrupted");
    }

    let s = pool.stats();
    assert!(s.evictions > 0, "test never evicted: {s:?}");
    assert!(s.writebacks > 0, "test never wrote back: {s:?}");
    // Drains in-flight writebacks and, with --features invariants, checks
    // shard placement / no-duplicate / in-flight-empty invariants.
    pool.flush_and_sync_all().unwrap();
}
