//! Property-based tests for the storage primitives: the row codec, the ASCII
//! dump codec, and slotted-page behaviour against a model.

use proptest::prelude::*;

use delta_storage::codec::ascii;
use delta_storage::page::SlottedPage;
use delta_storage::{Column, DataType, Row, Schema, StorageError, Value};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        any::<i64>().prop_map(Value::Timestamp),
        // Finite doubles only: NaN breaks equality, and SQL has no NaN literal.
        prop::num::f64::NORMAL.prop_map(Value::Double),
        Just(Value::Double(0.0)),
        any::<bool>().prop_map(Value::Bool),
        // Strings exercising the escape paths.
        "[ -~]{0,40}".prop_map(Value::Str),
        "[|\\\\\n\r\t']{0,10}".prop_map(Value::Str),
        "\\PC{0,10}".prop_map(Value::Str), // arbitrary unicode
    ]
}

fn arb_row() -> impl Strategy<Value = Row> {
    prop::collection::vec(arb_value(), 0..8).prop_map(Row::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn row_binary_codec_round_trips(row in arb_row()) {
        let bytes = row.to_bytes();
        prop_assert_eq!(bytes.len(), row.encoded_size());
        let back = Row::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, row);
    }

    #[test]
    fn row_codec_rejects_every_truncation(row in arb_row()) {
        let bytes = row.to_bytes();
        for cut in 0..bytes.len() {
            prop_assert!(Row::from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn ascii_codec_round_trips_typed_rows(
        id in any::<i64>(),
        text in "\\PC{0,30}",
        price in prop::num::f64::NORMAL,
        ts in any::<i64>(),
        live in any::<bool>(),
        nulls in prop::collection::vec(any::<bool>(), 5),
    ) {
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("text", DataType::Varchar),
            Column::new("price", DataType::Double),
            Column::new("ts", DataType::Timestamp),
            Column::new("live", DataType::Bool),
        ]).unwrap();
        let mut vals = vec![
            Value::Int(id),
            Value::Str(text),
            Value::Double(price),
            Value::Timestamp(ts),
            Value::Bool(live),
        ];
        for (v, n) in vals.iter_mut().zip(&nulls) {
            if *n {
                *v = Value::Null;
            }
        }
        // The documented wart: a Varchar whose content is exactly "NULL"
        // is indistinguishable from SQL NULL. Skip that corner.
        if vals[1] == Value::Str("NULL".into()) {
            return Ok(());
        }
        let row = Row::new(vals);
        let line = ascii::format_row(&row);
        prop_assert!(!line.contains('\n'));
        let back = ascii::parse_row(&line, &schema).unwrap();
        prop_assert_eq!(back, row);
    }
}

/// Model-based test of slotted pages: random insert/delete/update sequences
/// against a `HashMap<slot, bytes>` model.
#[derive(Debug, Clone)]
enum PageOp {
    Insert(Vec<u8>),
    Delete(usize),
    Update(usize, Vec<u8>),
}

fn arb_page_op() -> impl Strategy<Value = PageOp> {
    prop_oneof![
        prop::collection::vec(any::<u8>(), 0..300).prop_map(PageOp::Insert),
        any::<usize>().prop_map(PageOp::Delete),
        (any::<usize>(), prop::collection::vec(any::<u8>(), 0..300))
            .prop_map(|(s, b)| PageOp::Update(s, b)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn slotted_page_matches_model(ops in prop::collection::vec(arb_page_op(), 1..60)) {
        let mut page = SlottedPage::new();
        let mut model: std::collections::HashMap<u16, Vec<u8>> = Default::default();
        for op in ops {
            match op {
                PageOp::Insert(bytes) => match page.insert(&bytes) {
                    Ok(slot) => {
                        model.insert(slot, bytes);
                    }
                    Err(StorageError::PageFull) => {
                        prop_assert!(!page.fits(bytes.len()), "PageFull only when it cannot fit");
                    }
                    Err(e) => return Err(TestCaseError::fail(format!("unexpected: {e}"))),
                },
                PageOp::Delete(i) => {
                    let slots: Vec<u16> = model.keys().copied().collect();
                    if slots.is_empty() {
                        continue;
                    }
                    let slot = slots[i % slots.len()];
                    page.delete(slot).unwrap();
                    model.remove(&slot);
                }
                PageOp::Update(i, bytes) => {
                    let slots: Vec<u16> = model.keys().copied().collect();
                    if slots.is_empty() {
                        continue;
                    }
                    let slot = slots[i % slots.len()];
                    match page.update(slot, &bytes) {
                        Ok(()) => {
                            model.insert(slot, bytes);
                        }
                        Err(StorageError::PageFull) => { /* grow refused: model unchanged */ }
                        Err(e) => return Err(TestCaseError::fail(format!("unexpected: {e}"))),
                    }
                }
            }
            // Invariants after every step.
            prop_assert_eq!(page.live_count(), model.len());
            for (slot, bytes) in &model {
                prop_assert_eq!(page.get(*slot), Some(bytes.as_slice()));
            }
            // Round trip through raw bytes preserves everything.
            let reloaded = SlottedPage::from_bytes(page.as_bytes()).unwrap();
            prop_assert_eq!(reloaded.live_count(), model.len());
        }
    }
}
