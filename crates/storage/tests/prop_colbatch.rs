//! Property tests for the columnar delta codec: CRC-framed row blocks must
//! round trip arbitrary rows exactly, every truncation must surface as a
//! typed [`delta_storage::StorageError`] (never a panic), and a single-bit
//! flip must never silently decode as different content — mirroring the WAL
//! record codec's corruption-detection properties.

use proptest::prelude::*;

use delta_storage::colbatch::{
    compress_segment, crc32, decode_rows_block, decompress_segment, encode_rows_block, get_block,
    lz_compress, lz_decompress, put_block,
};
use delta_storage::{Row, Value};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        prop::num::f64::NORMAL.prop_map(Value::Double),
        "\\PC{0,24}".prop_map(Value::Str),
        any::<i64>().prop_map(Value::Timestamp),
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn arb_row() -> impl Strategy<Value = Row> {
    prop::collection::vec(arb_value(), 0..6).prop_map(Row::new)
}

/// A framed block exactly as [`delta_storage::colbatch::RowSink`] writes it.
fn framed(rows: &[Row]) -> Vec<u8> {
    let mut out = Vec::new();
    put_block(&mut out, &encode_rows_block(rows));
    out
}

fn decode_framed(bytes: &[u8]) -> delta_storage::StorageResult<Vec<Row>> {
    let mut buf = bytes;
    let payload = get_block(&mut buf)?;
    if !buf.is_empty() {
        return Err(delta_storage::StorageError::Corrupt(
            "trailing bytes after the frame".into(),
        ));
    }
    decode_rows_block(payload)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn framed_row_blocks_round_trip(rows in prop::collection::vec(arb_row(), 0..24)) {
        let bytes = framed(&rows);
        let back = decode_framed(&bytes).expect("own encoding decodes");
        prop_assert_eq!(back, rows);
    }

    #[test]
    fn uniform_rows_round_trip_through_the_columnar_path(
        cells in prop::collection::vec((any::<i64>(), "\\PC{0,16}", any::<i64>()), 1..32)
    ) {
        // Same-arity, same-type rows exercise the transposed column
        // encodings (delta-of-delta, dictionary, front coding) rather than
        // the ragged fallback.
        let rows: Vec<Row> = cells
            .into_iter()
            .map(|(id, s, ts)| Row::new(vec![Value::Int(id), Value::Str(s), Value::Timestamp(ts)]))
            .collect();
        let bytes = framed(&rows);
        prop_assert_eq!(decode_framed(&bytes).expect("decodes"), rows);
    }

    #[test]
    fn every_truncation_is_a_typed_error(rows in prop::collection::vec(arb_row(), 1..12)) {
        let bytes = framed(&rows);
        for cut in 0..bytes.len() {
            prop_assert!(
                decode_framed(&bytes[..cut]).is_err(),
                "decoding a {cut}-byte prefix of a {}-byte frame must fail",
                bytes.len()
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected(rows in prop::collection::vec(arb_row(), 1..12)) {
        let bytes = framed(&rows);
        let step = (bytes.len() * 8 / 512).max(1);
        let mut bit = 0;
        while bit < bytes.len() * 8 {
            let mut dirty = bytes.clone();
            dirty[bit / 8] ^= 1 << (bit % 8);
            match decode_framed(&dirty) {
                Err(_) => {}
                // A flip that decodes must not silently change the rows.
                Ok(back) => prop_assert!(
                    back == rows,
                    "bit flip at {bit} silently decoded different rows"
                ),
            }
            bit += step;
        }
    }

    #[test]
    fn lz_round_trips_arbitrary_bytes(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        let z = lz_compress(&data);
        prop_assert_eq!(lz_decompress(&z, data.len()).expect("decompresses"), data);
    }

    #[test]
    fn compressed_segments_round_trip_and_reject_damage(
        data in prop::collection::vec(any::<u8>(), 1..2048)
    ) {
        let z = compress_segment(&data);
        prop_assert_eq!(decompress_segment(&z).expect("own encoding decodes"), data.clone());
        // Flip a byte inside the (sole) frame's payload region: the
        // per-block CRC must catch it or the output must be unchanged.
        let step = (z.len() / 64).max(1);
        for at in (4..z.len()).step_by(step) {
            let mut dirty = z.clone();
            dirty[at] ^= 0x20;
            match decompress_segment(&dirty) {
                Err(_) => {}
                Ok(back) => prop_assert!(
                    back == data,
                    "byte flip at {at} silently decompressed different content"
                ),
            }
        }
    }

    #[test]
    fn crc32_differs_under_any_single_bit_flip(data in prop::collection::vec(any::<u8>(), 1..256)) {
        let sum = crc32(&data);
        let step = (data.len() * 8 / 256).max(1);
        let mut bit = 0;
        while bit < data.len() * 8 {
            let mut dirty = data.clone();
            dirty[bit / 8] ^= 1 << (bit % 8);
            prop_assert!(crc32(&dirty) != sum, "single-bit flip at {bit} collided");
            bit += step;
        }
    }
}
