//! Back-compat fixture for the queue spool format: a frame laid down
//! byte-for-byte as the pre-codec queue wrote it (`[u32 le len][payload]
//! [u64 le FNV-1a]`). Old spools must reopen and drain unchanged.

use delta_transport::PersistentQueue;

const PAYLOAD: &[u8] = b"fixture-payload-v0";
/// FNV-1a (offset 0xcbf29ce484222325, prime 0x100000001b3) of `PAYLOAD`.
const PAYLOAD_FNV1A: u64 = 0xbe2b00c793cf0156;

fn spool_fixture() -> Vec<u8> {
    let mut frame = Vec::new();
    frame.extend_from_slice(&(PAYLOAD.len() as u32).to_le_bytes());
    frame.extend_from_slice(PAYLOAD);
    frame.extend_from_slice(&PAYLOAD_FNV1A.to_le_bytes());
    frame
}

#[test]
fn legacy_spool_bytes_reopen_and_drain_unchanged() {
    let dir = std::env::temp_dir().join(format!(
        "delta-spool-backcompat-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("legacy.q");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(PersistentQueue::ack_file(&path));
    std::fs::write(&path, spool_fixture()).unwrap();

    let q = PersistentQueue::open(&path).unwrap();
    assert_eq!(q.total(), 1, "the fixture frame scanned as one message");
    let (idx, payload) = q.dequeue().unwrap().expect("message delivered");
    assert_eq!(idx, 0);
    assert_eq!(payload, PAYLOAD);
    // The queue keeps appending in the same format after the old frame.
    q.enqueue(b"appended").unwrap();
    let (_, payload) = q.dequeue().unwrap().expect("appended message");
    assert_eq!(payload, b"appended");
    // And the arena path reads the legacy frame identically.
    q.rewind_to(0);
    let mut arena = Vec::new();
    let run = q.dequeue_run(10, &mut arena).unwrap();
    assert_eq!(run.len(), 2);
    assert_eq!(&arena[run[0].1.clone()], PAYLOAD);
}
