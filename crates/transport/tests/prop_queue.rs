//! Crash-recovery property tests for the persistent queue.
//!
//! The delta transport's durability contract: whatever prefix of frames was
//! fully written (and whatever ack watermark was persisted) survives an
//! arbitrary crash — a torn or corrupted *trailing* frame is truncated away on
//! reopen, never propagated, and never takes committed messages with it.

use proptest::prelude::*;

use delta_transport::PersistentQueue;

fn qdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "deltaforge-propq-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn fresh(label: &str) -> std::path::PathBuf {
    let p = qdir().join(format!("{label}.q"));
    let _ = std::fs::remove_file(&p);
    let _ = std::fs::remove_file(PersistentQueue::ack_file(&p));
    p
}

fn payload(i: usize, len: usize) -> Vec<u8> {
    // Deterministic per-index bytes so redelivered content is checkable.
    (0..len).map(|j| (i * 31 + j) as u8).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Appending garbage (a torn frame) and/or flipping bytes strictly after
    /// the last complete frame must recover to exactly the committed prefix.
    #[test]
    fn torn_tail_recovers_to_committed_prefix(
        lens in prop::collection::vec(0usize..200, 1..12),
        acked_upto in 0u64..12,
        garbage in prop::collection::vec(any::<u8>(), 1..40),
    ) {
        let path = fresh("torn");
        {
            let q = PersistentQueue::open(&path).unwrap();
            for (i, len) in lens.iter().enumerate() {
                q.enqueue(&payload(i, *len)).unwrap();
            }
            let ack = acked_upto.min(lens.len() as u64);
            if ack > 0 {
                q.ack(ack - 1).unwrap();
            }
        }
        // Crash: a partial frame lands at the spool tail.
        let clean_len = std::fs::metadata(&path).unwrap().len();
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&garbage).unwrap();
        }

        let q = PersistentQueue::open(&path).unwrap();
        let ack = acked_upto.min(lens.len() as u64);
        prop_assert_eq!(q.total(), lens.len() as u64, "committed frames survive");
        prop_assert_eq!(q.acked(), ack, "ack watermark survives");
        // The torn tail was truncated away, not left to poison later appends.
        prop_assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len);
        // Redelivery resumes at the ack watermark with intact payloads.
        for (i, len) in lens.iter().enumerate().skip(ack as usize) {
            let (idx, body) = q.dequeue().unwrap().unwrap();
            prop_assert_eq!(idx, i as u64);
            prop_assert_eq!(body, payload(i, *len));
        }
        prop_assert!(q.dequeue().unwrap().is_none());
        // And the queue keeps working after recovery.
        let next = q.enqueue(b"after-crash").unwrap();
        prop_assert_eq!(next, lens.len() as u64);
    }

    /// Corrupting a byte *inside the last frame's body* must drop exactly that
    /// frame (checksum mismatch => treated as torn tail), keeping the prefix.
    #[test]
    fn corrupt_last_frame_is_dropped_cleanly(
        lens in prop::collection::vec(1usize..200, 1..10),
        flip in any::<u8>(),
        pos_seed in any::<u64>(),
    ) {
        let path = fresh("corrupt");
        let mut offsets = Vec::new();
        {
            let q = PersistentQueue::open(&path).unwrap();
            for (i, len) in lens.iter().enumerate() {
                offsets.push(std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0));
                q.enqueue(&payload(i, *len)).unwrap();
            }
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let last_start = *offsets.last().unwrap() as usize;
        let last_len = *lens.last().unwrap();
        // Flip one body byte of the last frame (xor with a nonzero mask).
        let pos = last_start + 4 + (pos_seed as usize % last_len);
        bytes[pos] ^= flip | 1;
        std::fs::write(&path, &bytes).unwrap();

        let q = PersistentQueue::open(&path).unwrap();
        prop_assert_eq!(q.total(), lens.len() as u64 - 1, "corrupt frame dropped");
        for (i, len) in lens.iter().enumerate().take(lens.len() - 1) {
            let (idx, body) = q.dequeue().unwrap().unwrap();
            prop_assert_eq!(idx, i as u64);
            prop_assert_eq!(body, payload(i, *len));
        }
        prop_assert!(q.dequeue().unwrap().is_none());
    }

    /// Reopening with no crash at all is lossless and idempotent, and an ack
    /// file pointing past the spool (e.g. spool lost, acks kept) is clamped.
    #[test]
    fn reopen_is_lossless_and_ack_is_clamped(
        lens in prop::collection::vec(0usize..100, 0..8),
        bogus_ack in 0u64..1000,
    ) {
        let path = fresh("reopen");
        {
            let q = PersistentQueue::open(&path).unwrap();
            for (i, len) in lens.iter().enumerate() {
                q.enqueue(&payload(i, *len)).unwrap();
            }
        }
        // Overwrite the ack file with an arbitrary (possibly bogus) count.
        std::fs::write(PersistentQueue::ack_file(&path), bogus_ack.to_string()).unwrap();
        let q = PersistentQueue::open(&path).unwrap();
        prop_assert_eq!(q.total(), lens.len() as u64);
        prop_assert!(q.acked() <= q.total(), "ack watermark clamped to spool");
    }
}
