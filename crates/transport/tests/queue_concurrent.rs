//! Concurrency and volume tests for the persistent queue.

use std::sync::Arc;

use delta_transport::PersistentQueue;

fn qpath(label: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "deltaforge-qc-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(format!("{label}.q"));
    let _ = std::fs::remove_file(&p);
    let _ = std::fs::remove_file(PersistentQueue::ack_file(&p));
    p
}

#[test]
fn producer_and_consumer_threads_interleave() {
    let q = Arc::new(PersistentQueue::open(qpath("interleave")).unwrap());
    const N: u32 = 2000;

    let producer = {
        let q = q.clone();
        std::thread::spawn(move || {
            for i in 0..N {
                q.enqueue(&i.to_le_bytes()).unwrap();
            }
        })
    };
    let consumer = {
        let q = q.clone();
        std::thread::spawn(move || {
            let mut got = Vec::with_capacity(N as usize);
            while got.len() < N as usize {
                match q.dequeue().unwrap() {
                    Some((idx, payload)) => {
                        got.push(u32::from_le_bytes(payload.try_into().unwrap()));
                        q.ack(idx).unwrap();
                    }
                    None => std::thread::yield_now(),
                }
            }
            got
        })
    };
    producer.join().unwrap();
    let got = consumer.join().unwrap();
    // FIFO: exactly 0..N in order, no loss, no duplication.
    assert_eq!(got, (0..N).collect::<Vec<_>>());
    assert_eq!(q.acked(), N as u64);
}

#[test]
fn multiple_producers_lose_nothing() {
    let q = Arc::new(PersistentQueue::open(qpath("multiprod")).unwrap());
    let mut handles = Vec::new();
    for t in 0..4u32 {
        let q = q.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..500u32 {
                let v = t * 1000 + i;
                q.enqueue(&v.to_le_bytes()).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(q.total(), 2000);
    let mut seen = std::collections::HashSet::new();
    while let Some((idx, payload)) = q.dequeue().unwrap() {
        assert!(seen.insert(u32::from_le_bytes(payload.try_into().unwrap())));
        q.ack(idx).unwrap();
    }
    assert_eq!(seen.len(), 2000);
}

#[test]
fn reopen_mid_stream_resumes_exactly_once_acked() {
    let path = qpath("resume");
    const N: u64 = 100;
    {
        let q = PersistentQueue::open(&path).unwrap();
        for i in 0..N {
            q.enqueue(&i.to_le_bytes()).unwrap();
        }
        // Consume and ack the first 40, deliver-but-don't-ack 10 more.
        for _ in 0..40 {
            let (idx, _) = q.dequeue().unwrap().unwrap();
            q.ack(idx).unwrap();
        }
        for _ in 0..10 {
            q.dequeue().unwrap().unwrap();
        }
    }
    let q = PersistentQueue::open(&path).unwrap();
    let mut redelivered = Vec::new();
    while let Some((idx, payload)) = q.dequeue().unwrap() {
        redelivered.push(u64::from_le_bytes(payload.try_into().unwrap()));
        q.ack(idx).unwrap();
    }
    // The 10 unacked deliveries come again (at-least-once), nothing acked does.
    assert_eq!(redelivered, (40..N).collect::<Vec<_>>());
}
