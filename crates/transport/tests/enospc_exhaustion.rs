//! ENOSPC exhaustion corpus for the transport spool: an injected disk-full
//! at **every byte offset** of an enqueue must surface as a typed
//! `StorageError::DiskFull`, and a restart must recover exactly the frames
//! that were durably enqueued before the pressure — the torn tail (short
//! writes are acted out byte-for-byte) is truncated, never replayed.

use std::sync::Arc;

use delta_storage::pressure::DiskBudget;
use delta_storage::StorageError;
use delta_transport::queue::PersistentQueue;
use proptest::prelude::*;

fn qpath(label: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "deltaforge-q-enospc-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&d).unwrap();
    let p = d.join(format!("{label}.q"));
    for ext in ["q", "q.ack", "q.tmp"] {
        let _ = std::fs::remove_file(p.with_extension(ext));
    }
    let _ = std::fs::remove_file(&p);
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For a proptest-chosen payload, walk the budget through every byte
    /// offset of the second frame's append: each offset must fail typed
    /// and recover to exactly the first frame.
    #[test]
    fn spool_enqueue_enospc_at_every_offset_recovers(
        payload in prop::collection::vec(any::<u8>(), 1..48),
        first in prop::collection::vec(any::<u8>(), 1..48),
    ) {
        // Measure the frame cost of `payload` on a throwaway spool.
        let probe = qpath("probe");
        let budget = Arc::new(DiskBudget::unlimited());
        let q = PersistentQueue::open(&probe).unwrap().with_spool_budget(Arc::clone(&budget));
        let before = budget.stats().charged;
        q.enqueue(&payload).unwrap();
        let need = budget.stats().charged - before;
        prop_assert!(need > payload.len() as u64, "frame must carry overhead");
        drop(q);

        for k in 0..need {
            let path = qpath(&format!("walk-{k}"));
            let budget = Arc::new(DiskBudget::unlimited());
            let q = PersistentQueue::open(&path)
                .unwrap()
                .with_spool_budget(Arc::clone(&budget));
            q.enqueue(&first).unwrap();
            budget.set_global(Some(k));
            let err = q.enqueue(&payload).unwrap_err();
            prop_assert!(
                matches!(err, StorageError::DiskFull { .. }),
                "budget {k}: expected typed DiskFull, got {err}"
            );
            // Crash with whatever torn tail the short write left behind.
            drop(q);
            let q = PersistentQueue::open(&path).unwrap();
            prop_assert_eq!(q.total(), 1, "budget {k}: only the durable frame survives");
            let (idx, got) = q.dequeue().unwrap().unwrap();
            prop_assert_eq!(idx, 0);
            prop_assert_eq!(&got, &first, "budget {k}: durable frame intact");
            // Pressure lifted (no budget on the reopened queue): the spool
            // accepts the failed payload and indices stay contiguous.
            let at = q.enqueue(&payload).unwrap();
            prop_assert_eq!(at, 1, "budget {k}: torn tail claimed no index");
        }
    }
}
