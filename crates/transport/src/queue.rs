//! A durable, at-least-once delivery queue.
//!
//! Models the "persistent queues" transport of §1: extracted deltas are
//! enqueued at the source and drained by the warehouse integrator; consumer
//! acknowledgements persist, so a crashed consumer re-reads exactly the
//! unacknowledged suffix after restart (at-least-once semantics — the
//! appliers deduplicate by transaction where exactly-once matters).
//!
//! Layout: a spool file of length-prefixed, checksummed frames plus a tiny
//! ack file holding the count of acknowledged messages.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use parking_lot::Mutex;

use delta_storage::{invariant, StorageError, StorageResult};

fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

struct QueueInner {
    writer: BufWriter<File>,
    /// Byte offsets of each message frame in the spool.
    offsets: Vec<u64>,
    /// Total spool length.
    spool_len: u64,
    /// Messages acknowledged (a prefix of the queue).
    acked: u64,
    /// Next message index to hand to the consumer (≥ acked; reset to acked
    /// on reopen — unacked deliveries are repeated).
    cursor: u64,
}

/// The queue: durable across process restarts.
pub struct PersistentQueue {
    spool_path: PathBuf,
    ack_path: PathBuf,
    inner: Mutex<QueueInner>,
}

impl PersistentQueue {
    /// Open (or create) a queue rooted at `path` (two files: `path` and
    /// `path.ack`).
    pub fn open(path: impl AsRef<Path>) -> StorageResult<PersistentQueue> {
        let spool_path = path.as_ref().to_path_buf();
        if let Some(parent) = spool_path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let ack_path = spool_path.with_extension("ack");

        // Scan the spool to rebuild frame offsets (torn tail tolerated).
        let mut offsets = Vec::new();
        let mut spool_len = 0u64;
        if spool_path.exists() {
            let mut bytes = Vec::new();
            File::open(&spool_path)?.read_to_end(&mut bytes)?;
            let mut at = 0usize;
            while at + 12 <= bytes.len() {
                let lenb: [u8; 4] = bytes[at..at + 4]
                    .try_into()
                    .map_err(|_| StorageError::Corrupt("queue frame header truncated".into()))?;
                let len = u32::from_le_bytes(lenb) as usize;
                if at + 4 + len + 8 > bytes.len() {
                    break; // torn tail: ignore the partial frame
                }
                let body = &bytes[at + 4..at + 4 + len];
                let sumb: [u8; 8] = bytes[at + 4 + len..at + 12 + len]
                    .try_into()
                    .map_err(|_| StorageError::Corrupt("queue frame trailer truncated".into()))?;
                let sum = u64::from_le_bytes(sumb);
                if checksum(body) != sum {
                    break; // corrupt tail
                }
                offsets.push(at as u64);
                at += 4 + len + 8;
            }
            spool_len = at as u64;
        }
        let acked: u64 = if ack_path.exists() {
            std::fs::read_to_string(&ack_path)?
                .trim()
                .parse()
                .unwrap_or(0)
        } else {
            0
        };
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&spool_path)?;
        // If a torn tail was detected, truncate it away before appending.
        file.set_len(spool_len)?;
        invariant!(
            acked.min(offsets.len() as u64) <= offsets.len() as u64,
            "recovered ack count {acked} exceeds {} spooled frames",
            offsets.len()
        );
        Ok(PersistentQueue {
            spool_path,
            ack_path,
            inner: Mutex::new(QueueInner {
                writer: BufWriter::new(file),
                acked: acked.min(offsets.len() as u64),
                cursor: acked.min(offsets.len() as u64),
                offsets,
                spool_len,
            }),
        })
    }

    /// Append a message; returns its index.
    pub fn enqueue(&self, payload: &[u8]) -> StorageResult<u64> {
        // lint: allow(lock_hygiene) -- the queue mutex guards the spool
        // writer itself; frames must hit the file in index order.
        let mut inner = self.inner.lock();
        let mut frame = Vec::with_capacity(payload.len() + 12);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(payload);
        frame.extend_from_slice(&checksum(payload).to_le_bytes());
        inner.writer.write_all(&frame)?;
        inner.writer.flush()?;
        let offset = inner.spool_len;
        inner.offsets.push(offset);
        inner.spool_len += frame.len() as u64;
        Ok(inner.offsets.len() as u64 - 1)
    }

    /// Next undelivered message as `(index, payload)`, or `None` when drained.
    /// Delivery alone does not acknowledge: call [`PersistentQueue::ack`].
    pub fn dequeue(&self) -> StorageResult<Option<(u64, Vec<u8>)>> {
        let mut batch = self.dequeue_up_to(1)?;
        Ok(batch.pop())
    }

    /// Up to `max` undelivered messages as `(index, payload)` pairs, in
    /// index order, reading the whole run with one spool open+seek — the
    /// batched-consumer fast path. Delivery alone does not acknowledge; an
    /// empty vec means the queue is drained.
    pub fn dequeue_up_to(&self, max: u64) -> StorageResult<Vec<(u64, Vec<u8>)>> {
        // lint: allow(lock_hygiene) -- reads the guarded spool at frame
        // offsets; the mutex keeps the cursor and the file view consistent.
        let mut inner = self.inner.lock();
        invariant!(
            inner.acked <= inner.cursor && inner.cursor <= inner.offsets.len() as u64,
            "queue cursor accounting broken: acked {} cursor {} total {}",
            inner.acked,
            inner.cursor,
            inner.offsets.len()
        );
        let total = inner.offsets.len() as u64;
        if inner.cursor >= total || max == 0 {
            return Ok(Vec::new());
        }
        inner.writer.flush()?;
        let first = inner.cursor;
        let count = max.min(total - first);
        let mut f = File::open(&self.spool_path)?;
        use std::io::Seek;
        f.seek(std::io::SeekFrom::Start(inner.offsets[first as usize]))?;
        let mut out = Vec::with_capacity(count as usize);
        for idx in first..first + count {
            let mut lenb = [0u8; 4];
            f.read_exact(&mut lenb)?;
            let len = u32::from_le_bytes(lenb) as usize;
            let mut payload = vec![0u8; len];
            f.read_exact(&mut payload)?;
            let mut sumb = [0u8; 8];
            f.read_exact(&mut sumb)?;
            if checksum(&payload) != u64::from_le_bytes(sumb) {
                return Err(StorageError::Corrupt(format!(
                    "queue frame {idx} checksum mismatch"
                )));
            }
            out.push((idx, payload));
        }
        inner.cursor = first + count;
        Ok(out)
    }

    /// Reset the delivery cursor to the ack watermark, so every
    /// unacknowledged message is delivered again — the in-process equivalent
    /// of a consumer restart, used when an apply fails mid-run.
    pub fn rewind_to_acked(&self) {
        let mut inner = self.inner.lock();
        inner.cursor = inner.acked;
    }

    /// Acknowledge every message up to and including `index`. Persisted.
    pub fn ack(&self, index: u64) -> StorageResult<()> {
        // lint: allow(lock_hygiene) -- the ack file write must be atomic with
        // the in-memory ack watermark or a crash could re-deliver acked work.
        let mut inner = self.inner.lock();
        inner.acked = inner.acked.max(index + 1);
        inner.cursor = inner.cursor.max(inner.acked);
        invariant!(
            inner.acked <= inner.offsets.len() as u64,
            "acked {} messages but only {} were ever spooled",
            inner.acked,
            inner.offsets.len()
        );
        std::fs::write(&self.ack_path, inner.acked.to_string())?;
        Ok(())
    }

    /// Messages not yet delivered this session.
    pub fn pending(&self) -> u64 {
        let inner = self.inner.lock();
        inner.offsets.len() as u64 - inner.cursor
    }

    /// Messages enqueued over the queue's lifetime.
    pub fn total(&self) -> u64 {
        self.inner.lock().offsets.len() as u64
    }

    /// Messages durably acknowledged.
    pub fn acked(&self) -> u64 {
        self.inner.lock().acked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qpath(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "delta-queue-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        let _ = std::fs::remove_file(&p);
        let _ = std::fs::remove_file(p.with_extension("ack"));
        p
    }

    #[test]
    fn fifo_order_and_ack() {
        let q = PersistentQueue::open(qpath("fifo.q")).unwrap();
        for i in 0..5u8 {
            q.enqueue(&[i]).unwrap();
        }
        for i in 0..5u8 {
            let (idx, payload) = q.dequeue().unwrap().unwrap();
            assert_eq!(payload, vec![i]);
            q.ack(idx).unwrap();
        }
        assert!(q.dequeue().unwrap().is_none());
        assert_eq!(q.acked(), 5);
    }

    #[test]
    fn unacked_messages_redeliver_after_reopen() {
        let path = qpath("redeliver.q");
        {
            let q = PersistentQueue::open(&path).unwrap();
            q.enqueue(b"one").unwrap();
            q.enqueue(b"two").unwrap();
            let (idx, _) = q.dequeue().unwrap().unwrap();
            q.ack(idx).unwrap();
            // Deliver "two" but crash before acking.
            let _ = q.dequeue().unwrap().unwrap();
        }
        let q = PersistentQueue::open(&path).unwrap();
        let (_, payload) = q.dequeue().unwrap().unwrap();
        assert_eq!(payload, b"two", "unacked message redelivered");
    }

    #[test]
    fn acked_messages_do_not_redeliver() {
        let path = qpath("acked.q");
        {
            let q = PersistentQueue::open(&path).unwrap();
            q.enqueue(b"a").unwrap();
            q.enqueue(b"b").unwrap();
            q.ack(1).unwrap(); // ack both
        }
        let q = PersistentQueue::open(&path).unwrap();
        assert!(q.dequeue().unwrap().is_none());
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let path = qpath("torn.q");
        {
            let q = PersistentQueue::open(&path).unwrap();
            q.enqueue(b"good").unwrap();
        }
        // Append garbage simulating a torn write.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[9, 0, 0, 0, 1, 2]).unwrap();
        }
        let q = PersistentQueue::open(&path).unwrap();
        assert_eq!(q.total(), 1);
        let (_, payload) = q.dequeue().unwrap().unwrap();
        assert_eq!(payload, b"good");
        // And the queue keeps working after truncation.
        q.enqueue(b"after").unwrap();
        let (_, payload) = q.dequeue().unwrap().unwrap();
        assert_eq!(payload, b"after");
    }

    #[test]
    fn large_payloads_round_trip() {
        let q = PersistentQueue::open(qpath("large.q")).unwrap();
        let big = vec![0xABu8; 1 << 20];
        q.enqueue(&big).unwrap();
        let (_, payload) = q.dequeue().unwrap().unwrap();
        assert_eq!(payload.len(), big.len());
        assert_eq!(payload, big);
    }

    #[test]
    fn dequeue_up_to_returns_a_run_in_order() {
        let q = PersistentQueue::open(qpath("batch.q")).unwrap();
        for i in 0..7u8 {
            q.enqueue(&[i]).unwrap();
        }
        let run = q.dequeue_up_to(4).unwrap();
        assert_eq!(run.len(), 4);
        for (want, (idx, payload)) in run.iter().enumerate() {
            assert_eq!(*idx, want as u64);
            assert_eq!(payload, &vec![want as u8]);
        }
        // Remaining messages still deliverable; over-asking clamps.
        let rest = q.dequeue_up_to(100).unwrap();
        assert_eq!(rest.len(), 3);
        assert_eq!(rest[0].0, 4);
        assert!(q.dequeue_up_to(5).unwrap().is_empty());
        assert_eq!(q.dequeue_up_to(0).unwrap().len(), 0);
    }

    #[test]
    fn rewind_to_acked_redelivers_unacked_run() {
        let q = PersistentQueue::open(qpath("rewind.q")).unwrap();
        for i in 0..4u8 {
            q.enqueue(&[i]).unwrap();
        }
        let run = q.dequeue_up_to(3).unwrap();
        q.ack(run[0].0).unwrap(); // ack only the first
        q.rewind_to_acked();
        let again = q.dequeue_up_to(10).unwrap();
        assert_eq!(again.len(), 3, "unacked messages redeliver");
        assert_eq!(again[0].0, 1);
        assert_eq!(again[0].1, vec![1u8]);
    }

    #[test]
    fn pending_counts() {
        let q = PersistentQueue::open(qpath("pending.q")).unwrap();
        q.enqueue(b"x").unwrap();
        q.enqueue(b"y").unwrap();
        assert_eq!(q.pending(), 2);
        let (i, _) = q.dequeue().unwrap().unwrap();
        assert_eq!(q.pending(), 1);
        q.ack(i).unwrap();
        assert_eq!(q.pending(), 1);
    }
}
