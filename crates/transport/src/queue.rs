//! A durable, at-least-once delivery queue.
//!
//! Models the "persistent queues" transport of §1: extracted deltas are
//! enqueued at the source and drained by the warehouse integrator; consumer
//! acknowledgements persist, so a crashed consumer re-reads exactly the
//! unacknowledged suffix after restart (at-least-once semantics — the
//! appliers deduplicate by transaction where exactly-once matters).
//!
//! Layout: a spool file of length-prefixed, checksummed frames plus a tiny
//! ack file holding the count of acknowledged messages. A spool that has
//! been prefix-compacted (see [`crate::compact`]) starts with a small header
//! recording how many frames were dropped; message indices are *absolute*
//! over the queue's lifetime, so acks, consumer dedupe state, and sibling
//! `.audit`/`.dlq` files all survive compaction unchanged.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;

use delta_storage::pressure::{Admission, DiskBudget};
use delta_storage::{invariant, StorageError, StorageResult};

use crate::compact;
use crate::netsim::{NetFault, NetFaultSim, NetFaultStats};

fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

pub(crate) struct QueueInner {
    pub(crate) writer: BufWriter<File>,
    /// Byte offsets of each resident message frame in the spool file.
    pub(crate) offsets: Vec<u64>,
    /// Total spool length.
    pub(crate) spool_len: u64,
    /// Messages acknowledged (a prefix of the queue; absolute count).
    pub(crate) acked: u64,
    /// Next message index to hand to the consumer (≥ acked; reset to acked
    /// on reopen — unacked deliveries are repeated). Absolute.
    pub(crate) cursor: u64,
    /// Absolute index of the first resident frame: the number of frames
    /// prefix compaction has physically dropped from the spool.
    pub(crate) base: u64,
    /// Bytes of a torn frame left at the spool tail by a short-write
    /// admission; truncated away (and credited back) before the next append.
    pub(crate) dirty_tail: Option<u64>,
}

/// How close the spool is to its disk budget — the producer-side
/// backpressure signal. Producers seeing [`SpoolPressure::Near`] should
/// compact and/or coalesce; [`SpoolPressure::Exhausted`] means the next
/// enqueue of any size will fail with a typed `DiskFull`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpoolPressure {
    /// Plenty of headroom (or no budget armed).
    Normal,
    /// Headroom below [`PRESSURE_NEAR_BYTES`]: degrade before it runs out.
    Near,
    /// No headroom at all.
    Exhausted,
}

/// Headroom threshold below which [`PersistentQueue::pressure`] reports
/// [`SpoolPressure::Near`].
pub const PRESSURE_NEAR_BYTES: u64 = 16 * 1024;

/// The queue: durable across process restarts.
pub struct PersistentQueue {
    pub(crate) spool_path: PathBuf,
    pub(crate) ack_path: PathBuf,
    pub(crate) inner: Mutex<QueueInner>,
    /// Armed disk budget for the spool; `None` = unbounded.
    pub(crate) budget: Option<Arc<DiskBudget>>,
}

impl PersistentQueue {
    /// The ack-file path of a queue spooled at `path`: the full spool name
    /// plus `.ack`. Appending (rather than *replacing* the extension) keeps
    /// sibling queues that share a stem — `pipe.q`, `pipe.dlq`, `pipe.audit`
    /// — from colliding on one ack file and clobbering each other's durable
    /// watermark.
    pub fn ack_file(path: impl AsRef<Path>) -> PathBuf {
        let spool = path.as_ref();
        let mut name = spool
            .file_name()
            .map(|n| n.to_os_string())
            .unwrap_or_default();
        name.push(".ack");
        spool.with_file_name(name)
    }

    /// Open (or create) a queue rooted at `path` (two files: `path` and
    /// `path.ack`, see [`PersistentQueue::ack_file`]).
    pub fn open(path: impl AsRef<Path>) -> StorageResult<PersistentQueue> {
        let spool_path = path.as_ref().to_path_buf();
        if let Some(parent) = spool_path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let ack_path = PersistentQueue::ack_file(&spool_path);
        // A crash mid-compaction can leave a staged rewrite behind; the
        // rename never happened, so the original spool is authoritative.
        let _ = std::fs::remove_file(compact::compact_tmp_path(&spool_path));

        // Scan the spool to rebuild frame offsets (torn tail tolerated).
        let mut offsets = Vec::new();
        let mut spool_len = 0u64;
        let mut base = 0u64;
        if spool_path.exists() {
            let mut bytes = Vec::new();
            File::open(&spool_path)?.read_to_end(&mut bytes)?;
            let mut at = 0usize;
            if let Some(b) = compact::decode_header(&bytes) {
                base = b;
                at = compact::HEADER_LEN;
            }
            while at + 12 <= bytes.len() {
                let lenb: [u8; 4] = bytes[at..at + 4]
                    .try_into()
                    .map_err(|_| StorageError::Corrupt("queue frame header truncated".into()))?;
                let len = u32::from_le_bytes(lenb) as usize;
                if at + 4 + len + 8 > bytes.len() {
                    break; // torn tail: ignore the partial frame
                }
                let body = &bytes[at + 4..at + 4 + len];
                let sumb: [u8; 8] = bytes[at + 4 + len..at + 12 + len]
                    .try_into()
                    .map_err(|_| StorageError::Corrupt("queue frame trailer truncated".into()))?;
                let sum = u64::from_le_bytes(sumb);
                if checksum(body) != sum {
                    break; // corrupt tail
                }
                offsets.push(at as u64);
                at += 4 + len + 8;
            }
            spool_len = at as u64;
        }
        let acked: u64 = if ack_path.exists() {
            std::fs::read_to_string(&ack_path)?
                .trim()
                .parse()
                .unwrap_or(0)
        } else {
            0
        };
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&spool_path)?;
        // If a torn tail was detected, truncate it away before appending.
        file.set_len(spool_len)?;
        // The durable ack count is absolute; compaction only ever drops
        // fully-acked frames, so it can never legally sit below `base`.
        let total = base + offsets.len() as u64;
        let acked = acked.max(base).min(total);
        invariant!(
            acked <= total,
            "recovered ack count {acked} exceeds {total} spooled frames"
        );
        Ok(PersistentQueue {
            spool_path,
            ack_path,
            inner: Mutex::new(QueueInner {
                writer: BufWriter::new(file),
                acked,
                cursor: acked,
                offsets,
                spool_len,
                base,
                dirty_tail: None,
            }),
            budget: None,
        })
    }

    /// Arm a disk budget on the spool (builder style): every append asks it
    /// for space first. A short-write admission persists the admitted
    /// prefix as a torn tail (truncated away before the next append, or at
    /// reopen), a denial writes nothing; both surface as typed
    /// `StorageError::DiskFull`. Compaction credits reclaimed bytes back.
    pub fn with_spool_budget(mut self, budget: Arc<DiskBudget>) -> PersistentQueue {
        self.budget = Some(budget);
        self
    }

    /// [`PersistentQueue::with_spool_budget`] for queues owned by a larger
    /// structure (a pipeline) that cannot rebuild them in place.
    pub fn set_spool_budget(&mut self, budget: Arc<DiskBudget>) {
        self.budget = Some(budget);
    }

    /// Bytes the budget would still admit for the spool (`None` = no budget
    /// armed / unconstrained).
    pub fn spool_headroom(&self) -> Option<u64> {
        self.budget.as_ref().and_then(|b| b.remaining(&self.spool_path))
    }

    /// The producer-side backpressure signal — see [`SpoolPressure`].
    pub fn pressure(&self) -> SpoolPressure {
        match self.spool_headroom() {
            None => SpoolPressure::Normal,
            Some(0) => SpoolPressure::Exhausted,
            Some(r) if r < PRESSURE_NEAR_BYTES => SpoolPressure::Near,
            Some(_) => SpoolPressure::Normal,
        }
    }

    /// Absolute index of the first frame still resident in the spool file
    /// (the number of frames prefix compaction has dropped).
    pub fn compacted_base(&self) -> u64 {
        self.inner.lock().base
    }

    /// Truncate away a torn frame left by an earlier short-write admission,
    /// crediting its bytes back to the budget. Appends call this first.
    pub(crate) fn repair_dirty_tail(&self, inner: &mut QueueInner) -> StorageResult<()> {
        if let Some(torn) = inner.dirty_tail.take() {
            inner.writer.get_ref().set_len(inner.spool_len)?;
            if let Some(b) = &self.budget {
                b.credit(&self.spool_path, torn);
            }
        }
        Ok(())
    }

    /// Append a message; returns its (absolute) index.
    pub fn enqueue(&self, payload: &[u8]) -> StorageResult<u64> {
        // lint: allow(lock_hygiene) -- the queue mutex guards the spool
        // writer itself; frames must hit the file in index order.
        let mut inner = self.inner.lock();
        self.repair_dirty_tail(&mut inner)?;
        let mut frame = Vec::with_capacity(payload.len() + 12);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(payload);
        frame.extend_from_slice(&checksum(payload).to_le_bytes());
        if let Some(b) = &self.budget {
            match b.admit(&self.spool_path, frame.len() as u64) {
                Admission::Granted => {}
                Admission::Short { keep } => {
                    // ENOSPC mid-append: the admitted prefix reaches the
                    // file as a torn tail (recovered by truncation — at
                    // reopen, or before the next append while live).
                    let keep = (keep as usize).min(frame.len());
                    inner.writer.write_all(&frame[..keep])?;
                    inner.writer.flush()?;
                    inner.dirty_tail = Some(keep as u64);
                    return Err(b.error(&self.spool_path, frame.len() as u64));
                }
                Admission::Denied => {
                    return Err(b.error(&self.spool_path, frame.len() as u64));
                }
            }
        }
        inner.writer.write_all(&frame)?;
        inner.writer.flush()?;
        let offset = inner.spool_len;
        inner.offsets.push(offset);
        inner.spool_len += frame.len() as u64;
        Ok(inner.base + inner.offsets.len() as u64 - 1)
    }

    /// Append a batch of messages **all-or-nothing**: either every payload
    /// is durably framed (returning the absolute index of the first) or the
    /// spool is byte-identical to before the call and a typed error is
    /// returned. Publishers use this so a mid-batch failure can be retried
    /// wholesale without leaving duplicate frames under fresh indices.
    pub fn enqueue_all(&self, payloads: &[Vec<u8>]) -> StorageResult<u64> {
        // lint: allow(lock_hygiene) -- the queue mutex guards the spool
        // writer itself; frames must hit the file in index order.
        let mut inner = self.inner.lock();
        self.repair_dirty_tail(&mut inner)?;
        if payloads.is_empty() {
            return Ok(inner.base + inner.offsets.len() as u64);
        }
        let mut buf = Vec::with_capacity(payloads.iter().map(|p| p.len() + 12).sum());
        let mut frame_offsets = Vec::with_capacity(payloads.len());
        for payload in payloads {
            frame_offsets.push(inner.spool_len + buf.len() as u64);
            buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            buf.extend_from_slice(payload);
            buf.extend_from_slice(&checksum(payload).to_le_bytes());
        }
        if let Some(b) = &self.budget {
            // All-or-nothing: a batch that does not fit entirely writes
            // nothing (no partial-publish under pressure).
            b.admit_full(&self.spool_path, buf.len() as u64)?;
        }
        let wrote = inner.writer.write_all(&buf);
        let wrote = wrote.and_then(|()| inner.writer.flush());
        if let Err(e) = wrote {
            // Roll the file back to the pre-batch length: a real short
            // write must not leave a frame prefix that a reopen would
            // mistake for a torn single append.
            let _ = inner.writer.get_ref().set_len(inner.spool_len);
            if let Some(b) = &self.budget {
                b.credit(&self.spool_path, buf.len() as u64);
            }
            return Err(e.into());
        }
        let first = inner.base + inner.offsets.len() as u64;
        inner.offsets.extend(frame_offsets);
        inner.spool_len += buf.len() as u64;
        Ok(first)
    }

    /// Next undelivered message as `(index, payload)`, or `None` when drained.
    /// Delivery alone does not acknowledge: call [`PersistentQueue::ack`].
    pub fn dequeue(&self) -> StorageResult<Option<(u64, Vec<u8>)>> {
        let mut batch = self.dequeue_up_to(1)?;
        Ok(batch.pop())
    }

    /// Up to `max` undelivered messages as `(index, payload)` pairs, in
    /// index order. Delivery alone does not acknowledge; an empty vec means
    /// the queue is drained. Allocates one `Vec` per message — consumers on
    /// the hot path should prefer [`PersistentQueue::dequeue_run`], which
    /// this wraps.
    pub fn dequeue_up_to(&self, max: u64) -> StorageResult<Vec<(u64, Vec<u8>)>> {
        let mut arena = Vec::new();
        let frames = self.dequeue_run(max, &mut arena)?;
        Ok(frames
            .into_iter()
            .map(|(idx, range)| (idx, arena[range].to_vec()))
            .collect())
    }

    /// Zero-copy batched dequeue: reads the whole undelivered run with one
    /// spool open+seek+read into the caller's `arena` (cleared first, its
    /// capacity reused across calls) and returns `(index, payload range)`
    /// pairs borrowing from it. Checksums are verified per frame. Delivery
    /// alone does not acknowledge; an empty vec means the queue is drained.
    pub fn dequeue_run(
        &self,
        max: u64,
        arena: &mut Vec<u8>,
    ) -> StorageResult<Vec<(u64, std::ops::Range<usize>)>> {
        arena.clear();
        // lint: allow(lock_hygiene) -- reads the guarded spool at frame
        // offsets; the mutex keeps the cursor and the file view consistent.
        let mut inner = self.inner.lock();
        // The cursor may legitimately sit *below* the ack watermark after a
        // fault-injected `rewind_to` (redelivery of already-acked messages),
        // but never below the compaction base (those frames are gone) and
        // never past the end.
        let total = inner.base + inner.offsets.len() as u64;
        invariant!(
            inner.cursor >= inner.base && inner.cursor <= total,
            "queue cursor accounting broken: base {} acked {} cursor {} total {}",
            inner.base,
            inner.acked,
            inner.cursor,
            total
        );
        if inner.cursor >= total || max == 0 {
            return Ok(Vec::new());
        }
        inner.writer.flush()?;
        let first = inner.cursor;
        let count = max.min(total - first);
        let pos = (first - inner.base) as usize;
        let start = inner.offsets[pos];
        let end = inner
            .offsets
            .get(pos + count as usize)
            .copied()
            .unwrap_or(inner.spool_len);
        let mut f = File::open(&self.spool_path)?;
        use std::io::Seek;
        f.seek(std::io::SeekFrom::Start(start))?;
        arena.resize((end - start) as usize, 0);
        f.read_exact(arena)?;
        let mut out = Vec::with_capacity(count as usize);
        let mut at = 0usize;
        for idx in first..first + count {
            let header_end = at + 4;
            let lenb: [u8; 4] = arena
                .get(at..header_end)
                .and_then(|s| s.try_into().ok())
                .ok_or_else(|| StorageError::Corrupt(format!("queue frame {idx} truncated")))?;
            let len = u32::from_le_bytes(lenb) as usize;
            let body = header_end..header_end + len;
            let trailer = body.end..body.end + 8;
            let sumb: [u8; 8] = arena
                .get(trailer.clone())
                .and_then(|s| s.try_into().ok())
                .ok_or_else(|| StorageError::Corrupt(format!("queue frame {idx} truncated")))?;
            let payload = arena
                .get(body.clone())
                .ok_or_else(|| StorageError::Corrupt(format!("queue frame {idx} truncated")))?;
            if checksum(payload) != u64::from_le_bytes(sumb) {
                return Err(StorageError::Corrupt(format!(
                    "queue frame {idx} checksum mismatch"
                )));
            }
            out.push((idx, body));
            at = trailer.end;
        }
        inner.cursor = first + count;
        Ok(out)
    }

    /// Reset the delivery cursor to the ack watermark, so every
    /// unacknowledged message is delivered again — the in-process equivalent
    /// of a consumer restart, used when an apply fails mid-run.
    pub fn rewind_to_acked(&self) {
        let mut inner = self.inner.lock();
        inner.cursor = inner.acked;
    }

    /// Force the delivery cursor to `index` (clamped to the resident frame
    /// range — frames below the compaction base are physically gone, and
    /// only fully-acked frames are ever compacted away). Unlike
    /// [`PersistentQueue::rewind_to_acked`], this may rewind *below* the ack
    /// watermark — the transport-fault hook modelling a lost consumer
    /// acknowledgement: the sender redelivers messages the consumer already
    /// applied, so consumers must deduplicate by sequence id.
    pub fn rewind_to(&self, index: u64) {
        let mut inner = self.inner.lock();
        inner.cursor = index.clamp(inner.base, inner.base + inner.offsets.len() as u64);
    }

    /// Acknowledge every message up to and including `index`. Persisted.
    pub fn ack(&self, index: u64) -> StorageResult<()> {
        // lint: allow(lock_hygiene) -- the ack file write must be atomic with
        // the in-memory ack watermark or a crash could re-deliver acked work.
        let mut inner = self.inner.lock();
        inner.acked = inner.acked.max(index + 1);
        // Deliberately do NOT drag the cursor forward to the watermark: after
        // a fault-injected rewind the cursor may trail `acked`, and snapping
        // it forward here would skip messages withheld by an injected loss.
        invariant!(
            inner.acked <= inner.base + inner.offsets.len() as u64,
            "acked {} messages but only {} were ever spooled",
            inner.acked,
            inner.base + inner.offsets.len() as u64
        );
        std::fs::write(&self.ack_path, inner.acked.to_string())?;
        Ok(())
    }

    /// Messages not yet delivered this session.
    pub fn pending(&self) -> u64 {
        let inner = self.inner.lock();
        inner.base + inner.offsets.len() as u64 - inner.cursor
    }

    /// Messages enqueued over the queue's lifetime (compacted frames
    /// included — indices are absolute).
    pub fn total(&self) -> u64 {
        let inner = self.inner.lock();
        inner.base + inner.offsets.len() as u64
    }

    /// Messages durably acknowledged.
    pub fn acked(&self) -> u64 {
        self.inner.lock().acked
    }

    /// Bytes in the spool file (frame headers and checksums included) — the
    /// honest wire cost of everything ever enqueued, used by the audit
    /// subsystem to account repair traffic against full-reload traffic.
    pub fn spool_bytes(&self) -> u64 {
        self.inner.lock().spool_len
    }

    /// Like [`PersistentQueue::dequeue_up_to`], but each message's fate is
    /// drawn from `sim`'s seeded fault plan:
    ///
    /// * **Drop** — the message is lost in flight; the run is truncated there
    ///   and the cursor rewound, so the next round retransmits from the gap.
    /// * **Duplicate** — the message appears twice in the run.
    /// * **Reorder** — the message lands one slot late.
    /// * **DelayAck** — the message is delivered, but the cursor is rewound
    ///   to it anyway (its acknowledgement was lost), so the next round
    ///   redelivers a message the consumer may already have applied and
    ///   acknowledged.
    ///
    /// The spool stays intact: every enqueued message is still delivered at
    /// least once, possibly more than once and out of index order, so
    /// consumers must restore order and deduplicate by sequence id.
    pub fn dequeue_up_to_with_faults(
        &self,
        max: u64,
        sim: &mut NetFaultSim,
    ) -> StorageResult<Vec<(u64, Vec<u8>)>> {
        let mut arena = Vec::new();
        let frames = self.dequeue_run_with_faults(max, sim, &mut arena)?;
        Ok(frames
            .into_iter()
            .map(|(idx, range)| (idx, arena[range].to_vec()))
            .collect())
    }

    /// Arena-reusing twin of
    /// [`PersistentQueue::dequeue_up_to_with_faults`]: the run is read with
    /// one seek into the caller's `arena` (see
    /// [`PersistentQueue::dequeue_run`]) and the fault plan is applied to
    /// the `(index, payload range)` pairs, so prefetch-style consumers pay
    /// no per-message allocation even on the faulted path.
    pub fn dequeue_run_with_faults(
        &self,
        max: u64,
        sim: &mut NetFaultSim,
        arena: &mut Vec<u8>,
    ) -> StorageResult<Vec<(u64, std::ops::Range<usize>)>> {
        let run = self.dequeue_run(max, arena)?;
        let mut out: Vec<(u64, std::ops::Range<usize>)> = Vec::with_capacity(run.len());
        // A message fated to reorder is held back one slot.
        let mut held: Option<(u64, std::ops::Range<usize>)> = None;
        // Lowest index the next round must retransmit from, if any.
        let mut redeliver: Option<u64> = None;
        for (idx, payload) in run {
            match sim.next_fault() {
                NetFault::Drop => {
                    if let Some(prev) = held.take() {
                        out.push(prev); // was already in flight; it arrives
                    }
                    redeliver = Some(redeliver.map_or(idx, |r| r.min(idx)));
                    break;
                }
                NetFault::Reorder => {
                    if let Some(prev) = held.replace((idx, payload)) {
                        out.push(prev);
                    }
                }
                NetFault::Deliver => {
                    out.push((idx, payload));
                    if let Some(prev) = held.take() {
                        out.push(prev);
                    }
                }
                NetFault::Duplicate => {
                    out.push((idx, payload.clone()));
                    out.push((idx, payload));
                    if let Some(prev) = held.take() {
                        out.push(prev);
                    }
                }
                NetFault::DelayAck => {
                    redeliver = Some(redeliver.map_or(idx, |r| r.min(idx)));
                    out.push((idx, payload));
                    if let Some(prev) = held.take() {
                        out.push(prev);
                    }
                }
            }
        }
        if let Some(prev) = held.take() {
            out.push(prev);
        }
        if let Some(lo) = redeliver {
            self.rewind_to(lo);
        }
        Ok(out)
    }
}

/// A delivery-side fault adapter: wraps a [`PersistentQueue`]'s batched
/// dequeue with a seeded [`NetFaultSim`], so a drained run exhibits loss
/// (run truncated and redelivered next round), duplication, reordering, and
/// lost-ack redelivery — while the spool itself stays intact. The queue's
/// at-least-once guarantee is preserved: every enqueued message is still
/// delivered at least once, possibly more than once and out of index order,
/// so consumers must restore order and deduplicate by sequence id.
pub struct FaultyQueue<'a> {
    queue: &'a PersistentQueue,
    sim: NetFaultSim,
}

impl<'a> FaultyQueue<'a> {
    pub fn new(queue: &'a PersistentQueue, sim: NetFaultSim) -> FaultyQueue<'a> {
        FaultyQueue { queue, sim }
    }

    /// Fate counters drawn so far.
    pub fn stats(&self) -> NetFaultStats {
        self.sim.stats()
    }

    /// Dequeue a run through the seeded fault plan — see
    /// [`PersistentQueue::dequeue_up_to_with_faults`].
    pub fn dequeue_up_to(&mut self, max: u64) -> StorageResult<Vec<(u64, Vec<u8>)>> {
        self.queue.dequeue_up_to_with_faults(max, &mut self.sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qpath(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "delta-queue-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        let _ = std::fs::remove_file(&p);
        let _ = std::fs::remove_file(PersistentQueue::ack_file(&p));
        p
    }

    #[test]
    fn sibling_queues_get_distinct_ack_files() {
        // `pipe.q`, `pipe.dlq`, and `pipe.audit` share a stem; replacing the
        // extension would collapse all three onto `pipe.ack`, letting one
        // queue's ack clobber another's durable watermark.
        let main = qpath("pipe.q");
        let side = PersistentQueue::ack_file(main.with_extension("audit"));
        assert_ne!(PersistentQueue::ack_file(&main), side);
        let _ = std::fs::remove_file(&side);

        let q = PersistentQueue::open(&main).unwrap();
        q.enqueue(b"a").unwrap();
        q.enqueue(b"b").unwrap();
        let (idx, _) = q.dequeue().unwrap().unwrap();
        q.ack(idx).unwrap();

        // An independently acked sibling must not move the main watermark.
        let audit = PersistentQueue::open(main.with_extension("audit")).unwrap();
        audit.enqueue(b"digest").unwrap();
        let (aidx, _) = audit.dequeue().unwrap().unwrap();
        audit.ack(aidx).unwrap();

        let reopened = PersistentQueue::open(&main).unwrap();
        assert_eq!(reopened.acked(), 1, "main ack watermark survived");
        let (_, payload) = reopened.dequeue().unwrap().unwrap();
        assert_eq!(payload, b"b", "only the unacked suffix redelivers");
    }

    #[test]
    fn fifo_order_and_ack() {
        let q = PersistentQueue::open(qpath("fifo.q")).unwrap();
        for i in 0..5u8 {
            q.enqueue(&[i]).unwrap();
        }
        for i in 0..5u8 {
            let (idx, payload) = q.dequeue().unwrap().unwrap();
            assert_eq!(payload, vec![i]);
            q.ack(idx).unwrap();
        }
        assert!(q.dequeue().unwrap().is_none());
        assert_eq!(q.acked(), 5);
    }

    #[test]
    fn unacked_messages_redeliver_after_reopen() {
        let path = qpath("redeliver.q");
        {
            let q = PersistentQueue::open(&path).unwrap();
            q.enqueue(b"one").unwrap();
            q.enqueue(b"two").unwrap();
            let (idx, _) = q.dequeue().unwrap().unwrap();
            q.ack(idx).unwrap();
            // Deliver "two" but crash before acking.
            let _ = q.dequeue().unwrap().unwrap();
        }
        let q = PersistentQueue::open(&path).unwrap();
        let (_, payload) = q.dequeue().unwrap().unwrap();
        assert_eq!(payload, b"two", "unacked message redelivered");
    }

    #[test]
    fn acked_messages_do_not_redeliver() {
        let path = qpath("acked.q");
        {
            let q = PersistentQueue::open(&path).unwrap();
            q.enqueue(b"a").unwrap();
            q.enqueue(b"b").unwrap();
            q.ack(1).unwrap(); // ack both
        }
        let q = PersistentQueue::open(&path).unwrap();
        assert!(q.dequeue().unwrap().is_none());
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let path = qpath("torn.q");
        {
            let q = PersistentQueue::open(&path).unwrap();
            q.enqueue(b"good").unwrap();
        }
        // Append garbage simulating a torn write.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[9, 0, 0, 0, 1, 2]).unwrap();
        }
        let q = PersistentQueue::open(&path).unwrap();
        assert_eq!(q.total(), 1);
        let (_, payload) = q.dequeue().unwrap().unwrap();
        assert_eq!(payload, b"good");
        // And the queue keeps working after truncation.
        q.enqueue(b"after").unwrap();
        let (_, payload) = q.dequeue().unwrap().unwrap();
        assert_eq!(payload, b"after");
    }

    #[test]
    fn large_payloads_round_trip() {
        let q = PersistentQueue::open(qpath("large.q")).unwrap();
        let big = vec![0xABu8; 1 << 20];
        q.enqueue(&big).unwrap();
        let (_, payload) = q.dequeue().unwrap().unwrap();
        assert_eq!(payload.len(), big.len());
        assert_eq!(payload, big);
    }

    #[test]
    fn dequeue_up_to_returns_a_run_in_order() {
        let q = PersistentQueue::open(qpath("batch.q")).unwrap();
        for i in 0..7u8 {
            q.enqueue(&[i]).unwrap();
        }
        let run = q.dequeue_up_to(4).unwrap();
        assert_eq!(run.len(), 4);
        for (want, (idx, payload)) in run.iter().enumerate() {
            assert_eq!(*idx, want as u64);
            assert_eq!(payload, &vec![want as u8]);
        }
        // Remaining messages still deliverable; over-asking clamps.
        let rest = q.dequeue_up_to(100).unwrap();
        assert_eq!(rest.len(), 3);
        assert_eq!(rest[0].0, 4);
        assert!(q.dequeue_up_to(5).unwrap().is_empty());
        assert_eq!(q.dequeue_up_to(0).unwrap().len(), 0);
    }

    #[test]
    fn rewind_to_acked_redelivers_unacked_run() {
        let q = PersistentQueue::open(qpath("rewind.q")).unwrap();
        for i in 0..4u8 {
            q.enqueue(&[i]).unwrap();
        }
        let run = q.dequeue_up_to(3).unwrap();
        q.ack(run[0].0).unwrap(); // ack only the first
        q.rewind_to_acked();
        let again = q.dequeue_up_to(10).unwrap();
        assert_eq!(again.len(), 3, "unacked messages redeliver");
        assert_eq!(again[0].0, 1);
        assert_eq!(again[0].1, vec![1u8]);
    }

    #[test]
    fn rewind_below_ack_redelivers_acked_messages() {
        let q = PersistentQueue::open(qpath("reack.q")).unwrap();
        for i in 0..3u8 {
            q.enqueue(&[i]).unwrap();
        }
        let run = q.dequeue_up_to(10).unwrap();
        q.ack(run.last().unwrap().0).unwrap();
        assert_eq!(q.acked(), 3);
        // Lost-ack simulation: the sender never saw the acks and retransmits.
        q.rewind_to(0);
        let again = q.dequeue_up_to(10).unwrap();
        assert_eq!(again.len(), 3, "acked messages redeliver after rewind_to");
        assert_eq!(again[0], (0, vec![0u8]));
        assert_eq!(q.acked(), 3, "the durable watermark is untouched");
    }

    #[test]
    fn faulty_queue_clean_plan_is_transparent() {
        use crate::netsim::{NetFaultPlan, NetFaultSim};
        let q = PersistentQueue::open(qpath("fclean.q")).unwrap();
        for i in 0..6u8 {
            q.enqueue(&[i]).unwrap();
        }
        let mut fq = FaultyQueue::new(&q, NetFaultSim::new(NetFaultPlan::clean(1)));
        let run = fq.dequeue_up_to(10).unwrap();
        assert_eq!(run.len(), 6);
        for (want, (idx, payload)) in run.iter().enumerate() {
            assert_eq!(*idx, want as u64);
            assert_eq!(payload, &vec![want as u8]);
        }
        assert_eq!(fq.stats().delivered, 6);
    }

    #[test]
    fn faulty_queue_loss_truncates_and_redelivers() {
        use crate::netsim::{NetFaultPlan, NetFaultSim};
        let q = PersistentQueue::open(qpath("floss.q")).unwrap();
        for i in 0..4u8 {
            q.enqueue(&[i]).unwrap();
        }
        let mut plan = NetFaultPlan::clean(7);
        plan.loss_pct = 100;
        let mut fq = FaultyQueue::new(&q, NetFaultSim::new(plan));
        assert!(fq.dequeue_up_to(10).unwrap().is_empty());
        assert_eq!(q.pending(), 4, "lost messages stay pending for retransmit");
        // A clean consumer still gets everything.
        let run = q.dequeue_up_to(10).unwrap();
        assert_eq!(run.len(), 4);
    }

    #[test]
    fn faulty_queue_duplicates_every_message() {
        use crate::netsim::{NetFaultPlan, NetFaultSim};
        let q = PersistentQueue::open(qpath("fdup.q")).unwrap();
        for i in 0..3u8 {
            q.enqueue(&[i]).unwrap();
        }
        let mut plan = NetFaultPlan::clean(9);
        plan.dup_pct = 100;
        let mut fq = FaultyQueue::new(&q, NetFaultSim::new(plan));
        let run = fq.dequeue_up_to(10).unwrap();
        assert_eq!(run.len(), 6);
        for i in 0..3u64 {
            assert_eq!(run[2 * i as usize].0, i);
            assert_eq!(run[2 * i as usize + 1].0, i, "each index arrives twice");
        }
    }

    #[test]
    fn faulty_queue_is_at_least_once_and_deterministic() {
        use crate::netsim::{NetFaultPlan, NetFaultSim};
        use std::collections::BTreeSet;
        let deliver = |label: &str| -> Vec<u64> {
            let q = PersistentQueue::open(qpath(label)).unwrap();
            for i in 0..20u8 {
                q.enqueue(&[i]).unwrap();
            }
            let mut fq = FaultyQueue::new(&q, NetFaultSim::new(NetFaultPlan::lossy(42)));
            let mut order = Vec::new();
            let mut seen = BTreeSet::new();
            for _ in 0..200 {
                let run = fq.dequeue_up_to(5).unwrap();
                for (idx, payload) in run {
                    assert_eq!(payload, vec![idx as u8], "payload matches its id");
                    order.push(idx);
                    seen.insert(idx);
                }
                if seen.len() == 20 && q.pending() == 0 {
                    break;
                }
            }
            assert_eq!(seen.len(), 20, "every message delivered at least once");
            order
        };
        let a = deliver("fdet-a.q");
        let b = deliver("fdet-b.q");
        assert_eq!(a, b, "same seed, same delivery sequence");
    }

    #[test]
    fn dequeue_run_reuses_the_arena_across_calls() {
        let q = PersistentQueue::open(qpath("arena.q")).unwrap();
        for i in 0..8u8 {
            q.enqueue(&[i; 64]).unwrap();
        }
        let mut arena = Vec::new();
        let run = q.dequeue_run(4, &mut arena).unwrap();
        assert_eq!(run.len(), 4);
        for (want, (idx, range)) in run.iter().enumerate() {
            assert_eq!(*idx, want as u64);
            assert_eq!(&arena[range.clone()], &vec![want as u8; 64][..]);
        }
        let cap_after_first = arena.capacity();
        let run = q.dequeue_run(4, &mut arena).unwrap();
        assert_eq!(run.len(), 4);
        assert_eq!(run[0].0, 4);
        assert_eq!(&arena[run[0].1.clone()], &vec![4u8; 64][..]);
        assert_eq!(
            arena.capacity(),
            cap_after_first,
            "equal-sized runs reuse the arena allocation"
        );
        assert!(q.dequeue_run(4, &mut arena).unwrap().is_empty());
    }

    #[test]
    fn faulted_arena_dequeue_matches_the_owned_path() {
        use crate::netsim::{NetFaultPlan, NetFaultSim};
        let build = |label: &str| {
            let q = PersistentQueue::open(qpath(label)).unwrap();
            for i in 0..16u8 {
                q.enqueue(&[i; 32]).unwrap();
            }
            q
        };
        let owned = {
            let q = build("farena-a.q");
            let mut sim = NetFaultSim::new(NetFaultPlan::lossy(31));
            let mut out = Vec::new();
            for _ in 0..50 {
                out.extend(q.dequeue_up_to_with_faults(5, &mut sim).unwrap());
                if q.pending() == 0 {
                    break;
                }
            }
            out
        };
        let ranged = {
            let q = build("farena-b.q");
            let mut sim = NetFaultSim::new(NetFaultPlan::lossy(31));
            let mut arena = Vec::new();
            let mut out = Vec::new();
            for _ in 0..50 {
                let run = q.dequeue_run_with_faults(5, &mut sim, &mut arena).unwrap();
                out.extend(
                    run.into_iter()
                        .map(|(idx, range)| (idx, arena[range].to_vec())),
                );
                if q.pending() == 0 {
                    break;
                }
            }
            out
        };
        assert_eq!(owned, ranged, "same seed, same faulted delivery sequence");
    }

    #[test]
    fn dequeue_run_detects_in_place_corruption() {
        let path = qpath("arenacorrupt.q");
        let q = PersistentQueue::open(&path).unwrap();
        q.enqueue(b"payload-bytes").unwrap();
        drop(q);
        // Flip one payload byte on disk (offset 4 = first body byte).
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        // Reopen sees a corrupt (sole) frame and truncates it as a torn tail;
        // a frame corrupted *after* open must surface as a typed error.
        let q = PersistentQueue::open(&path).unwrap();
        assert_eq!(q.total(), 0, "corrupt tail frame dropped on open");
        q.enqueue(b"good").unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let mut arena = Vec::new();
        let err = q.dequeue_run(10, &mut arena).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)));
    }

    #[test]
    fn short_write_admission_leaves_a_recoverable_spool() {
        use delta_storage::pressure::DiskBudget;
        let path = qpath("short.q");
        // 112-byte frames; the second append is admitted only partially.
        let budget = Arc::new(DiskBudget::bytes(112 + 50));
        let q = PersistentQueue::open(&path)
            .unwrap()
            .with_spool_budget(budget);
        q.enqueue(&[1u8; 100]).unwrap();
        let err = q.enqueue(&[2u8; 100]).unwrap_err();
        assert!(matches!(err, StorageError::DiskFull { .. }));
        // The torn tail reached the file (short write acted out)...
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 112 + 50);
        drop(q);
        // ...and a restart truncates it back to the last whole frame.
        let q = PersistentQueue::open(&path).unwrap();
        assert_eq!(q.total(), 1);
        let (_, payload) = q.dequeue().unwrap().unwrap();
        assert_eq!(payload, vec![1u8; 100]);
        q.enqueue(b"after recovery").unwrap();
    }

    #[test]
    fn live_queue_repairs_its_own_torn_tail() {
        use delta_storage::pressure::DiskBudget;
        let path = qpath("repair.q");
        let budget = Arc::new(DiskBudget::bytes(112 + 50));
        let q = PersistentQueue::open(&path)
            .unwrap()
            .with_spool_budget(budget.clone());
        q.enqueue(&[1u8; 100]).unwrap();
        assert!(q.enqueue(&[2u8; 100]).is_err());
        // Pressure lifts; the next append first truncates the torn tail
        // (crediting its bytes) and then writes a whole frame.
        budget.set_global(None);
        q.enqueue(&[3u8; 100]).unwrap();
        let run = q.dequeue_up_to(10).unwrap();
        assert_eq!(run.len(), 2);
        assert_eq!(run[1].1, vec![3u8; 100]);
        drop(q);
        let q = PersistentQueue::open(&path).unwrap();
        assert_eq!(q.total(), 2, "no torn bytes left behind");
    }

    #[test]
    fn enqueue_all_is_all_or_nothing_under_budget() {
        use delta_storage::pressure::DiskBudget;
        let path = qpath("batch-budget.q");
        // Three 13-byte frames would need 39; admit fewer.
        let budget = Arc::new(DiskBudget::bytes(30));
        let q = PersistentQueue::open(&path)
            .unwrap()
            .with_spool_budget(budget.clone());
        let batch: Vec<Vec<u8>> = vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()];
        let err = q.enqueue_all(&batch).unwrap_err();
        assert!(matches!(err, StorageError::DiskFull { .. }));
        assert_eq!(q.total(), 0, "denied batch wrote nothing");
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        // With room, the whole batch lands and indices are contiguous.
        budget.set_global(None);
        let first = q.enqueue_all(&batch).unwrap();
        assert_eq!(first, 0);
        assert_eq!(q.total(), 3);
        let run = q.dequeue_up_to(10).unwrap();
        assert_eq!(run[2], (2, b"c".to_vec()));
        // An empty batch is a no-op that reports the next index.
        assert_eq!(q.enqueue_all(&[]).unwrap(), 3);
    }

    #[test]
    fn pressure_signal_tracks_headroom() {
        use delta_storage::pressure::DiskBudget;
        let path = qpath("pressure.q");
        let budget = Arc::new(DiskBudget::bytes(PRESSURE_NEAR_BYTES * 4));
        let q = PersistentQueue::open(&path)
            .unwrap()
            .with_spool_budget(budget.clone());
        assert_eq!(q.pressure(), SpoolPressure::Normal);
        // Burn headroom down into the Near band.
        let frame = vec![0u8; PRESSURE_NEAR_BYTES as usize * 3];
        q.enqueue(&frame).unwrap();
        assert_eq!(q.pressure(), SpoolPressure::Near);
        budget.set_global(Some(0));
        assert_eq!(q.pressure(), SpoolPressure::Exhausted);
        budget.set_global(None);
        assert_eq!(q.pressure(), SpoolPressure::Normal);
        // No budget armed: always Normal.
        let free = PersistentQueue::open(qpath("free.q")).unwrap();
        assert_eq!(free.pressure(), SpoolPressure::Normal);
        assert_eq!(free.spool_headroom(), None);
    }

    #[test]
    fn pending_counts() {
        let q = PersistentQueue::open(qpath("pending.q")).unwrap();
        q.enqueue(b"x").unwrap();
        q.enqueue(b"y").unwrap();
        assert_eq!(q.pending(), 2);
        let (i, _) = q.dequeue().unwrap().unwrap();
        assert_eq!(q.pending(), 1);
        q.ack(i).unwrap();
        assert_eq!(q.pending(), 1);
    }
}
