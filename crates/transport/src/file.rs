//! File shipping with a checksummed manifest.
//!
//! The ftp analogue of §1: extraction outputs (ASCII dumps, Export files,
//! archived WAL segments, Op-Delta logs) are copied into a destination
//! directory; a manifest records each file's size and checksum, and the
//! receiving side verifies before consuming. Optionally charges the transfer
//! to a [`crate::netsim::SimulatedConnection`] so end-to-end experiments can
//! account for network time.

use std::fs::{self, File};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use delta_storage::{StorageError, StorageResult};

use crate::netsim::SimulatedConnection;

fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A one-directional file channel into `dest_dir`.
pub struct FileTransport {
    dest_dir: PathBuf,
}

/// One shipped file, as recorded in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShippedFile {
    pub name: String,
    pub bytes: u64,
    pub checksum: u64,
}

impl FileTransport {
    /// Create a transport delivering into `dest_dir` (created if needed).
    pub fn new(dest_dir: impl Into<PathBuf>) -> StorageResult<FileTransport> {
        let dest_dir = dest_dir.into();
        fs::create_dir_all(&dest_dir)?;
        Ok(FileTransport { dest_dir })
    }

    /// Destination directory.
    pub fn dest_dir(&self) -> &Path {
        &self.dest_dir
    }

    fn manifest_path(&self) -> PathBuf {
        self.dest_dir.join("MANIFEST")
    }

    /// Ship `src` into the destination directory, appending to the manifest.
    /// When `conn` is given, the transfer is charged to the simulated link.
    pub fn ship(
        &self,
        src: impl AsRef<Path>,
        conn: Option<&mut SimulatedConnection>,
    ) -> StorageResult<ShippedFile> {
        let src = src.as_ref();
        let mut bytes = Vec::new();
        File::open(src)?.read_to_end(&mut bytes)?;
        let name = src
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or_else(|| StorageError::NotFound(format!("bad source path {}", src.display())))?
            .to_string();
        if let Some(conn) = conn {
            conn.send(bytes.len() as u64);
        }
        let dest = self.dest_dir.join(&name);
        let tmp = self.dest_dir.join(format!(".{name}.part"));
        fs::write(&tmp, &bytes)?;
        fs::rename(&tmp, &dest)?;
        let shipped = ShippedFile {
            name,
            bytes: bytes.len() as u64,
            checksum: checksum(&bytes),
        };
        let mut manifest = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.manifest_path())?;
        writeln!(
            manifest,
            "{}\t{}\t{}",
            shipped.name, shipped.bytes, shipped.checksum
        )?;
        Ok(shipped)
    }

    /// Parse the manifest (most recent entry wins per name).
    pub fn manifest(&self) -> StorageResult<Vec<ShippedFile>> {
        let path = self.manifest_path();
        if !path.exists() {
            return Ok(Vec::new());
        }
        let mut by_name: Vec<ShippedFile> = Vec::new();
        for line in fs::read_to_string(&path)?.lines() {
            let mut parts = line.split('\t');
            let (name, bytes, sum) = match (parts.next(), parts.next(), parts.next()) {
                (Some(a), Some(b), Some(c)) => (a, b, c),
                _ => return Err(StorageError::Corrupt(format!("bad manifest line '{line}'"))),
            };
            let entry = ShippedFile {
                name: name.to_string(),
                bytes: bytes
                    .parse()
                    .map_err(|_| StorageError::Corrupt("bad manifest size".into()))?,
                checksum: sum
                    .parse()
                    .map_err(|_| StorageError::Corrupt("bad manifest checksum".into()))?,
            };
            by_name.retain(|e| e.name != entry.name);
            by_name.push(entry);
        }
        Ok(by_name)
    }

    /// Verify a received file against the manifest and return its path.
    pub fn receive(&self, name: &str) -> StorageResult<PathBuf> {
        let entry = self
            .manifest()?
            .into_iter()
            .find(|e| e.name == name)
            .ok_or_else(|| StorageError::NotFound(format!("manifest entry '{name}'")))?;
        let path = self.dest_dir.join(name);
        let mut bytes = Vec::new();
        File::open(&path)?.read_to_end(&mut bytes)?;
        if bytes.len() as u64 != entry.bytes || checksum(&bytes) != entry.checksum {
            return Err(StorageError::Corrupt(format!(
                "shipped file '{name}' failed verification"
            )));
        }
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netsim::{LinkProfile, VirtualClock};

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "delta-ft-{}-{:?}-{name}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn ship_and_receive_round_trip() {
        let dir = tmp("rt");
        let src = dir.join("delta.txt");
        fs::write(&src, b"1|a\n2|b\n").unwrap();
        let t = FileTransport::new(dir.join("inbox")).unwrap();
        let shipped = t.ship(&src, None).unwrap();
        assert_eq!(shipped.bytes, 8);
        let received = t.receive("delta.txt").unwrap();
        assert_eq!(fs::read(received).unwrap(), b"1|a\n2|b\n");
    }

    #[test]
    fn corruption_is_detected_on_receive() {
        let dir = tmp("corrupt");
        let src = dir.join("delta.txt");
        fs::write(&src, b"payload").unwrap();
        let t = FileTransport::new(dir.join("inbox")).unwrap();
        t.ship(&src, None).unwrap();
        fs::write(dir.join("inbox/delta.txt"), b"tampered").unwrap();
        assert!(t.receive("delta.txt").is_err());
    }

    #[test]
    fn missing_manifest_entry_errors() {
        let dir = tmp("missing");
        let t = FileTransport::new(dir.join("inbox")).unwrap();
        assert!(t.receive("nope.txt").is_err());
    }

    #[test]
    fn reship_updates_manifest() {
        let dir = tmp("reship");
        let src = dir.join("d.txt");
        let t = FileTransport::new(dir.join("inbox")).unwrap();
        fs::write(&src, b"v1").unwrap();
        t.ship(&src, None).unwrap();
        fs::write(&src, b"v2-longer").unwrap();
        t.ship(&src, None).unwrap();
        let m = t.manifest().unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].bytes, 9);
        assert_eq!(fs::read(t.receive("d.txt").unwrap()).unwrap(), b"v2-longer");
    }

    #[test]
    fn simulated_link_is_charged() {
        let dir = tmp("sim");
        let src = dir.join("d.txt");
        fs::write(&src, vec![0u8; 125_000]).unwrap(); // 0.1 s at 10 Mb/s
        let clock = VirtualClock::new();
        let mut conn = SimulatedConnection::new(LinkProfile::lan_10mbps(), clock.clone());
        let t = FileTransport::new(dir.join("inbox")).unwrap();
        t.ship(&src, Some(&mut conn)).unwrap();
        assert!(clock.now() >= std::time::Duration::from_millis(100));
        assert_eq!(conn.stats().bytes, 125_000);
    }
}
