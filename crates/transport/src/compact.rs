//! Prefix compaction for the persistent queue's spool.
//!
//! A [`crate::PersistentQueue`] only ever appends, so without intervention
//! the spool grows forever even though everything before the durable `.ack`
//! watermark is dead weight. [`PersistentQueue::compact`] rewrites the spool
//! without the fully-acked prefix, staged to a sibling temp file and
//! committed with a single atomic rename:
//!
//! * **Crash before the rename** — the original spool is untouched; the
//!   staged temp is deleted at the next open.
//! * **Crash after the rename** — the new spool is complete (it was synced
//!   before the rename) and carries a header recording how many frames were
//!   dropped, so absolute message indices — and with them the `.ack` file,
//!   consumer dedupe state, and sibling `.audit`/`.dlq` queues — are
//!   unaffected.
//!
//! The header's first four bytes are `0xFFFFFFFF`: read as a frame length by
//! a scanner that does not understand headers, it exceeds any real spool, so
//! the file parses as zero frames rather than as garbage.

use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use delta_storage::StorageResult;

use crate::queue::PersistentQueue;

/// Bytes of the compacted-spool header: 8 magic + u64 LE base.
pub const HEADER_LEN: usize = 16;

/// Magic prefix of a compacted spool. Starts with an impossible frame
/// length so legacy scanners fail safe (see module docs).
const MAGIC: [u8; 8] = [0xFF, 0xFF, 0xFF, 0xFF, b'D', b'Q', b'C', b'1'];

/// Encode a compacted-spool header with `base` frames dropped.
pub fn encode_header(base: u64) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..8].copy_from_slice(&MAGIC);
    h[8..].copy_from_slice(&base.to_le_bytes());
    h
}

/// Decode a compacted-spool header, if `bytes` starts with one.
pub fn decode_header(bytes: &[u8]) -> Option<u64> {
    if bytes.len() < HEADER_LEN || bytes[..8] != MAGIC {
        return None;
    }
    bytes[8..HEADER_LEN]
        .try_into()
        .ok()
        .map(u64::from_le_bytes)
}

/// The staged rewrite a compaction commits via rename. Deleted at open if a
/// crash left it behind.
pub fn compact_tmp_path(spool: &Path) -> PathBuf {
    let mut name = spool
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".compact.tmp");
    spool.with_file_name(name)
}

/// What a compaction pass accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactStats {
    /// Fully-acked frames physically dropped from the spool.
    pub frames_dropped: u64,
    /// Spool bytes reclaimed (zero when the header overhead exceeded the
    /// dropped frames).
    pub bytes_reclaimed: u64,
    /// Absolute index of the first resident frame after the pass.
    pub base: u64,
}

impl PersistentQueue {
    /// Rewrite the spool dropping every fully-acked frame, committing with
    /// one atomic rename (see the module docs for the crash story). Message
    /// indices are absolute and unaffected; unacked frames, sibling queues
    /// and the `.ack` file are untouched. Under an armed disk budget the
    /// staged rewrite must be admitted (it coexists with the old spool
    /// until the rename) and the old spool's bytes are credited back after
    /// the commit. Returns what was reclaimed.
    pub fn compact(&self) -> StorageResult<CompactStats> {
        // lint: allow(lock_hygiene) -- the rewrite must exclude concurrent
        // appends: the staged file's byte range and the offset table are
        // rebuilt together under the queue mutex.
        let mut inner = self.inner.lock();
        self.repair_dirty_tail(&mut inner)?;
        inner.writer.flush()?;
        let drop_n = (inner.acked - inner.base) as usize;
        if drop_n == 0 {
            return Ok(CompactStats {
                frames_dropped: 0,
                bytes_reclaimed: 0,
                base: inner.base,
            });
        }
        let old_len = inner.spool_len;
        // First byte of the first surviving frame.
        let cut = inner.offsets.get(drop_n).copied().unwrap_or(old_len);
        let mut staged = Vec::with_capacity(HEADER_LEN + (old_len - cut) as usize);
        staged.extend_from_slice(&encode_header(inner.acked));
        {
            let mut f = File::open(&self.spool_path)?;
            f.seek(SeekFrom::Start(cut))?;
            f.take(old_len - cut).read_to_end(&mut staged)?;
        }
        let tmp = compact_tmp_path(&self.spool_path);
        // The staged rewrite is deliberately *exempt* from budget
        // admission: compaction is the maintenance pass that lifts
        // pressure, and gating it on free space would deadlock an exhausted
        // spool (the classic "no room to make room"). The accounting is
        // settled after the commit instead, so the budget still reflects
        // every byte on disk.
        let write_tmp = || -> std::io::Result<()> {
            let mut t = File::create(&tmp)?;
            t.write_all(&staged)?;
            t.sync_all()
        };
        if let Err(e) = write_tmp() {
            let _ = fs::remove_file(&tmp);
            return Err(e.into());
        }
        // The commit point: before this the original spool is authoritative
        // (a leftover tmp is deleted at open); after it the rewrite is.
        fs::rename(&tmp, &self.spool_path)?;
        if let Some(b) = &self.budget {
            let new_len = staged.len() as u64;
            if old_len >= new_len {
                b.credit(&self.spool_path, old_len - new_len);
            } else {
                // Degenerate case: the header outweighed the dropped frames.
                b.charge(&self.spool_path, new_len - old_len);
            }
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.spool_path)?;
        let new_base = inner.acked;
        let frames_dropped = drop_n as u64;
        let new_len = staged.len() as u64;
        inner.writer = BufWriter::new(file);
        inner.offsets.drain(..drop_n);
        for off in inner.offsets.iter_mut() {
            *off = *off - cut + HEADER_LEN as u64;
        }
        inner.spool_len = new_len;
        inner.base = new_base;
        // Frames below the new base are physically gone; a cursor rewound
        // below the watermark (lost-ack simulation) can no longer reach them.
        inner.cursor = inner.cursor.max(new_base);
        Ok(CompactStats {
            frames_dropped,
            bytes_reclaimed: old_len.saturating_sub(new_len),
            base: new_base,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delta_storage::pressure::DiskBudget;
    use delta_storage::StorageError;
    use std::sync::Arc;

    fn qpath(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "delta-compact-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        let _ = fs::remove_file(&p);
        let _ = fs::remove_file(PersistentQueue::ack_file(&p));
        let _ = fs::remove_file(compact_tmp_path(&p));
        p
    }

    #[test]
    fn header_round_trips_and_rejects_non_headers() {
        let h = encode_header(42);
        assert_eq!(decode_header(&h), Some(42));
        assert_eq!(decode_header(b""), None);
        assert_eq!(decode_header(&[0u8; 32]), None);
        // A plain frame (small length prefix) is not a header.
        let mut frame = vec![3, 0, 0, 0];
        frame.extend_from_slice(b"abc");
        frame.extend_from_slice(&[0u8; 8]);
        assert_eq!(decode_header(&frame), None);
    }

    #[test]
    fn compact_drops_acked_prefix_and_preserves_indices() {
        let path = qpath("basic.q");
        let q = PersistentQueue::open(&path).unwrap();
        for i in 0..10u8 {
            q.enqueue(&[i; 100]).unwrap();
        }
        let run = q.dequeue_up_to(6).unwrap();
        q.ack(run.last().unwrap().0).unwrap();
        let before = q.spool_bytes();
        let stats = q.compact().unwrap();
        assert_eq!(stats.frames_dropped, 6);
        assert_eq!(stats.base, 6);
        assert!(stats.bytes_reclaimed > 0);
        assert!(q.spool_bytes() < before);
        assert_eq!(q.total(), 10, "indices stay absolute");
        // The unacked suffix still delivers under its original indices.
        let rest = q.dequeue_up_to(100).unwrap();
        assert_eq!(rest.len(), 4);
        for (want, (idx, payload)) in rest.iter().enumerate() {
            assert_eq!(*idx, 6 + want as u64);
            assert_eq!(payload, &vec![6 + want as u8; 100]);
        }
        // Idempotent: nothing newly acked, nothing to drop.
        assert_eq!(q.compact().unwrap().frames_dropped, 0);
    }

    #[test]
    fn compacted_spool_survives_reopen() {
        let path = qpath("reopen.q");
        {
            let q = PersistentQueue::open(&path).unwrap();
            for i in 0..8u8 {
                q.enqueue(&[i]).unwrap();
            }
            let run = q.dequeue_up_to(5).unwrap();
            q.ack(run.last().unwrap().0).unwrap();
            q.compact().unwrap();
            q.enqueue(&[8]).unwrap(); // appends after the header work
        }
        let q = PersistentQueue::open(&path).unwrap();
        assert_eq!(q.compacted_base(), 5);
        assert_eq!(q.total(), 9);
        assert_eq!(q.acked(), 5);
        let run = q.dequeue_up_to(100).unwrap();
        let ids: Vec<u64> = run.iter().map(|(i, _)| *i).collect();
        assert_eq!(ids, vec![5, 6, 7, 8]);
        for (idx, payload) in run {
            assert_eq!(payload, vec![idx as u8]);
        }
    }

    #[test]
    fn crash_before_rename_leaves_old_spool_authoritative() {
        let path = qpath("crash.q");
        {
            let q = PersistentQueue::open(&path).unwrap();
            for i in 0..4u8 {
                q.enqueue(&[i]).unwrap();
            }
            q.ack(1).unwrap();
        }
        // Simulate a crash mid-compaction: a staged rewrite exists but the
        // rename never happened.
        fs::write(compact_tmp_path(&path), b"half-written garbage").unwrap();
        let q = PersistentQueue::open(&path).unwrap();
        assert!(!compact_tmp_path(&path).exists(), "stale tmp cleaned up");
        assert_eq!(q.total(), 4, "original spool intact");
        assert_eq!(q.acked(), 2);
        let run = q.dequeue_up_to(100).unwrap();
        assert_eq!(run.len(), 2);
        assert_eq!(run[0], (2, vec![2u8]));
    }

    #[test]
    fn compact_ignores_sibling_audit_and_dlq_files() {
        let main = qpath("pipe.q");
        let audit_path = main.with_extension("audit");
        let dlq_path = main.with_extension("dlq");
        let _ = fs::remove_file(&audit_path);
        let _ = fs::remove_file(&dlq_path);
        let _ = fs::remove_file(PersistentQueue::ack_file(&audit_path));
        let _ = fs::remove_file(PersistentQueue::ack_file(&dlq_path));

        let q = PersistentQueue::open(&main).unwrap();
        let audit = PersistentQueue::open(&audit_path).unwrap();
        let dlq = PersistentQueue::open(&dlq_path).unwrap();
        for i in 0..6u8 {
            q.enqueue(&[i]).unwrap();
        }
        audit.enqueue(b"digest-1").unwrap();
        let (aidx, _) = audit.dequeue().unwrap().unwrap();
        audit.ack(aidx).unwrap();
        dlq.enqueue(b"poison-frame").unwrap();
        let audit_bytes = fs::read(&audit_path).unwrap();
        let dlq_bytes = fs::read(&dlq_path).unwrap();

        let run = q.dequeue_up_to(4).unwrap();
        q.ack(run.last().unwrap().0).unwrap();
        q.compact().unwrap();

        assert_eq!(fs::read(&audit_path).unwrap(), audit_bytes);
        assert_eq!(fs::read(&dlq_path).unwrap(), dlq_bytes);
        let audit2 = PersistentQueue::open(&audit_path).unwrap();
        assert_eq!(audit2.acked(), 1, "sibling ack watermark untouched");
        let dlq2 = PersistentQueue::open(&dlq_path).unwrap();
        let (_, payload) = dlq2.dequeue().unwrap().unwrap();
        assert_eq!(payload, b"poison-frame");
    }

    #[test]
    fn compaction_credits_budget_and_unblocks_enqueue() {
        let path = qpath("budget.q");
        // Room for ~4 frames of 112 bytes each.
        let budget = Arc::new(DiskBudget::bytes(4 * 112 + 60));
        let q = PersistentQueue::open(&path)
            .unwrap()
            .with_spool_budget(budget);
        for i in 0..4u8 {
            q.enqueue(&[i; 100]).unwrap();
        }
        let err = q.enqueue(&[9u8; 100]).unwrap_err();
        assert!(matches!(err, StorageError::DiskFull { .. }));
        // Consumer catches up; compaction reclaims the acked prefix.
        let run = q.dequeue_up_to(3).unwrap();
        q.ack(run.last().unwrap().0).unwrap();
        let stats = q.compact().unwrap();
        assert_eq!(stats.frames_dropped, 3);
        // Pressure lifted: the append that failed now fits.
        q.enqueue(&[9u8; 100]).unwrap();
        let rest = q.dequeue_up_to(100).unwrap();
        let ids: Vec<u64> = rest.iter().map(|(i, _)| *i).collect();
        assert_eq!(ids, vec![3, 4]);
    }

    #[test]
    fn rewind_below_base_clamps_to_resident_frames() {
        let path = qpath("clamp.q");
        let q = PersistentQueue::open(&path).unwrap();
        for i in 0..5u8 {
            q.enqueue(&[i]).unwrap();
        }
        let run = q.dequeue_up_to(3).unwrap();
        q.ack(run.last().unwrap().0).unwrap();
        q.compact().unwrap();
        // A lost-ack rewind targeting compacted history clamps to the base.
        q.rewind_to(0);
        let run = q.dequeue_up_to(100).unwrap();
        assert_eq!(run[0].0, 3, "delivery restarts at the compaction base");
        assert_eq!(run.len(), 2);
    }
}
