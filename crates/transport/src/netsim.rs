//! Virtual-time network simulator.
//!
//! The paper's remote-capture experiments ran on a 10 Mb/s switched LAN and
//! found writing deltas to an external database "ten to hundred times more
//! expensive … attributable to the penalty for establishing database
//! connections, extra inter-process communications, and I/O and memory
//! contentions" (§3.1.3). We reproduce the *mechanism* — connection setup,
//! per-message round trips, bandwidth-limited payloads — in deterministic
//! virtual time, so Experiment R is exactly repeatable on any machine.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use delta_storage::fault::splitmix64;

/// A monotonically advancing virtual clock (microseconds).
#[derive(Debug, Default)]
pub struct VirtualClock {
    micros: AtomicU64,
}

impl VirtualClock {
    pub fn new() -> Arc<VirtualClock> {
        Arc::new(VirtualClock::default())
    }

    /// Current virtual time.
    pub fn now(&self) -> Duration {
        Duration::from_micros(self.micros.load(Ordering::SeqCst))
    }

    /// Advance by `d`, returning the new time.
    pub fn advance(&self, d: Duration) -> Duration {
        let new = self
            .micros
            .fetch_add(d.as_micros() as u64, Ordering::SeqCst)
            + d.as_micros() as u64;
        Duration::from_micros(new)
    }
}

/// Cost model for one link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkProfile {
    /// Payload bandwidth.
    pub bandwidth_bytes_per_sec: u64,
    /// One-way latency added to every message round trip.
    pub latency: Duration,
    /// One-time cost of establishing a database connection over this link.
    pub connect_cost: Duration,
}

impl LinkProfile {
    /// Writing into the *same* database: no connection, no network.
    pub fn same_database() -> LinkProfile {
        LinkProfile {
            bandwidth_bytes_per_sec: u64::MAX,
            latency: Duration::ZERO,
            connect_cost: Duration::ZERO,
        }
    }

    /// A different database on the same machine: loopback IPC. The paper
    /// observed roughly an order of magnitude over same-database writes,
    /// driven by connection establishment and inter-process communication.
    pub fn same_machine_ipc() -> LinkProfile {
        LinkProfile {
            bandwidth_bytes_per_sec: 200 * 1024 * 1024,
            latency: Duration::from_micros(150),
            connect_cost: Duration::from_millis(30),
        }
    }

    /// The paper's 10 Mb/s switched LAN.
    pub fn lan_10mbps() -> LinkProfile {
        LinkProfile {
            bandwidth_bytes_per_sec: 10_000_000 / 8,
            latency: Duration::from_micros(500),
            connect_cost: Duration::from_millis(150),
        }
    }

    /// Pure transfer time for `bytes` of payload (no latency).
    pub fn transfer_time(&self, bytes: u64) -> Duration {
        if self.bandwidth_bytes_per_sec == u64::MAX {
            return Duration::ZERO;
        }
        Duration::from_nanos(
            (bytes as u128 * 1_000_000_000 / self.bandwidth_bytes_per_sec as u128) as u64,
        )
    }
}

/// Cumulative transfer accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransferStats {
    pub messages: u64,
    pub bytes: u64,
    pub connects: u64,
    /// Total virtual time spent in this connection.
    pub busy: Duration,
}

/// A connection from a source to a remote database or staging area,
/// advancing a shared virtual clock.
pub struct SimulatedConnection {
    link: LinkProfile,
    clock: Arc<VirtualClock>,
    connected: bool,
    stats: TransferStats,
}

impl SimulatedConnection {
    pub fn new(link: LinkProfile, clock: Arc<VirtualClock>) -> SimulatedConnection {
        SimulatedConnection {
            link,
            clock,
            connected: false,
            stats: TransferStats::default(),
        }
    }

    /// The link this connection runs over.
    pub fn link(&self) -> LinkProfile {
        self.link
    }

    /// Accounting so far.
    pub fn stats(&self) -> TransferStats {
        self.stats
    }

    fn charge(&mut self, d: Duration) -> Duration {
        self.stats.busy += d;
        self.clock.advance(d);
        d
    }

    /// Establish the connection if not yet connected; returns the cost paid.
    pub fn ensure_connected(&mut self) -> Duration {
        if self.connected {
            return Duration::ZERO;
        }
        self.connected = true;
        self.stats.connects += 1;
        self.charge(self.link.connect_cost)
    }

    /// Drop the connection (the next send reconnects).
    pub fn disconnect(&mut self) {
        self.connected = false;
    }

    /// Send one message of `bytes` and wait for the acknowledgement:
    /// connect-if-needed + round-trip latency + payload transfer time.
    pub fn send(&mut self, bytes: u64) -> Duration {
        let mut total = self.ensure_connected();
        self.stats.messages += 1;
        self.stats.bytes += bytes;
        total += self.charge(self.link.latency * 2 + self.link.transfer_time(bytes));
        total
    }

    /// Send `rows` rows of `row_bytes` each as individual statements (one
    /// round trip per row) — how a trigger writing to a remote delta table
    /// behaves.
    pub fn send_per_row(&mut self, rows: u64, row_bytes: u64) -> Duration {
        let mut total = Duration::ZERO;
        for _ in 0..rows {
            total += self.send(row_bytes);
        }
        total
    }

    /// Send the same rows as one batched message (one round trip) — how a
    /// file/batch shipment behaves.
    pub fn send_batched(&mut self, rows: u64, row_bytes: u64) -> Duration {
        self.send(rows * row_bytes)
    }
}

/// The fate of one delivered message, drawn from a seeded [`NetFaultSim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// Normal delivery.
    Deliver,
    /// The message is lost in flight; the transport must redeliver it later
    /// (at-least-once queues do this by not advancing past it).
    Drop,
    /// The message arrives twice; consumers must deduplicate by sequence id.
    Duplicate,
    /// The message arrives late, after messages sent behind it; consumers
    /// restore order by sequence id.
    Reorder,
    /// The message arrives and is processed, but its acknowledgement is lost
    /// — the sender redelivers an already-applied message.
    DelayAck,
}

/// Seeded per-message fault probabilities (percent, 0–100 each; the sum of
/// the four fault classes must stay ≤ 100).
#[derive(Debug, Clone, Copy)]
pub struct NetFaultPlan {
    pub seed: u64,
    pub loss_pct: u8,
    pub dup_pct: u8,
    pub reorder_pct: u8,
    pub delay_ack_pct: u8,
}

impl NetFaultPlan {
    /// A plan that always delivers (fault-free baseline).
    pub fn clean(seed: u64) -> NetFaultPlan {
        NetFaultPlan {
            seed,
            loss_pct: 0,
            dup_pct: 0,
            reorder_pct: 0,
            delay_ack_pct: 0,
        }
    }

    /// A moderately hostile link: 8% loss, 8% duplication, 8% reordering,
    /// 6% lost acks.
    pub fn lossy(seed: u64) -> NetFaultPlan {
        NetFaultPlan {
            seed,
            loss_pct: 8,
            dup_pct: 8,
            reorder_pct: 8,
            delay_ack_pct: 6,
        }
    }
}

/// Counters of fates drawn so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetFaultStats {
    pub delivered: u64,
    pub dropped: u64,
    pub duplicated: u64,
    pub reordered: u64,
    pub delayed_acks: u64,
}

/// Deterministic message-fate generator: the same seed always produces the
/// same fate sequence, so any transport failure reproduces exactly.
#[derive(Debug, Clone)]
pub struct NetFaultSim {
    plan: NetFaultPlan,
    rng: u64,
    stats: NetFaultStats,
}

impl NetFaultSim {
    pub fn new(plan: NetFaultPlan) -> NetFaultSim {
        NetFaultSim {
            rng: plan.seed,
            plan,
            stats: NetFaultStats::default(),
        }
    }

    /// Draw the fate of the next message.
    pub fn next_fault(&mut self) -> NetFault {
        let draw = (splitmix64(&mut self.rng) % 100) as u8;
        let p = &self.plan;
        let mut bound = p.loss_pct;
        let fate = if draw < bound {
            NetFault::Drop
        } else if draw < {
            bound += p.dup_pct;
            bound
        } {
            NetFault::Duplicate
        } else if draw < {
            bound += p.reorder_pct;
            bound
        } {
            NetFault::Reorder
        } else if draw < {
            bound += p.delay_ack_pct;
            bound
        } {
            NetFault::DelayAck
        } else {
            NetFault::Deliver
        };
        match fate {
            NetFault::Deliver => self.stats.delivered += 1,
            NetFault::Drop => self.stats.dropped += 1,
            NetFault::Duplicate => self.stats.duplicated += 1,
            NetFault::Reorder => self.stats.reordered += 1,
            NetFault::DelayAck => self.stats.delayed_acks += 1,
        }
        fate
    }

    /// Fate counters so far.
    pub fn stats(&self) -> NetFaultStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_monotonically() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), Duration::ZERO);
        c.advance(Duration::from_millis(5));
        c.advance(Duration::from_millis(7));
        assert_eq!(c.now(), Duration::from_millis(12));
    }

    #[test]
    fn transfer_time_matches_bandwidth() {
        let lan = LinkProfile::lan_10mbps();
        // 1.25 MB at 10 Mb/s = 1 second.
        assert_eq!(lan.transfer_time(1_250_000), Duration::from_secs(1));
        assert_eq!(
            LinkProfile::same_database().transfer_time(u64::MAX / 2),
            Duration::ZERO
        );
    }

    #[test]
    fn connection_cost_paid_once_until_disconnect() {
        let clock = VirtualClock::new();
        let mut conn = SimulatedConnection::new(LinkProfile::lan_10mbps(), clock.clone());
        let first = conn.send(100);
        let second = conn.send(100);
        assert!(first > second, "first send pays the connect cost");
        conn.disconnect();
        let third = conn.send(100);
        assert_eq!(third, first, "reconnect pays it again");
        assert_eq!(conn.stats().connects, 2);
        assert_eq!(conn.stats().messages, 3);
        assert_eq!(clock.now(), conn.stats().busy);
    }

    #[test]
    fn per_row_writes_cost_far_more_than_batched() {
        // The §3.1.3 observation: remote per-row capture is 10–100× a batch.
        let clock = VirtualClock::new();
        let mut per_row = SimulatedConnection::new(LinkProfile::lan_10mbps(), clock.clone());
        let t_rows = per_row.send_per_row(1000, 100);
        let mut batch = SimulatedConnection::new(LinkProfile::lan_10mbps(), clock.clone());
        let t_batch = batch.send_batched(1000, 100);
        let ratio = t_rows.as_secs_f64() / t_batch.as_secs_f64();
        assert!(
            ratio > 5.0,
            "per-row {t_rows:?} vs batched {t_batch:?} (ratio {ratio:.1})"
        );
    }

    #[test]
    fn fault_sim_is_deterministic_per_seed() {
        let fates = |seed: u64| -> Vec<NetFault> {
            let mut sim = NetFaultSim::new(NetFaultPlan::lossy(seed));
            (0..256).map(|_| sim.next_fault()).collect()
        };
        assert_eq!(fates(7), fates(7), "same seed, same fate sequence");
        assert_ne!(fates(7), fates(8), "different seeds diverge");
    }

    #[test]
    fn clean_plan_always_delivers() {
        let mut sim = NetFaultSim::new(NetFaultPlan::clean(3));
        for _ in 0..512 {
            assert_eq!(sim.next_fault(), NetFault::Deliver);
        }
        assert_eq!(sim.stats().delivered, 512);
        assert_eq!(sim.stats().dropped, 0);
    }

    #[test]
    fn lossy_plan_roughly_matches_configured_rates() {
        let mut sim = NetFaultSim::new(NetFaultPlan::lossy(99));
        let n = 20_000u64;
        for _ in 0..n {
            sim.next_fault();
        }
        let s = sim.stats();
        assert_eq!(
            s.delivered + s.dropped + s.duplicated + s.reordered + s.delayed_acks,
            n
        );
        // 8% of 20k = 1600; allow a generous band around each rate.
        for (got, want_pct) in [(s.dropped, 8), (s.duplicated, 8), (s.reordered, 8)] {
            let want = n * want_pct / 100;
            assert!(
                got > want / 2 && got < want * 2,
                "rate off: got {got}, configured {want}"
            );
        }
        assert!(s.delivered > n / 2, "most messages still deliver");
    }

    #[test]
    fn link_ordering_same_db_lt_ipc_lt_lan() {
        let clock = VirtualClock::new();
        let mut local = SimulatedConnection::new(LinkProfile::same_database(), clock.clone());
        let mut ipc = SimulatedConnection::new(LinkProfile::same_machine_ipc(), clock.clone());
        let mut lan = SimulatedConnection::new(LinkProfile::lan_10mbps(), clock.clone());
        let t_local = local.send_per_row(100, 100);
        let t_ipc = ipc.send_per_row(100, 100);
        let t_lan = lan.send_per_row(100, 100);
        assert!(
            t_local < t_ipc && t_ipc < t_lan,
            "{t_local:?} {t_ipc:?} {t_lan:?}"
        );
    }
}
