//! # delta-transport
//!
//! Moving extracted deltas from source systems to the warehouse (or a
//! staging area) — the middle of Figure 1's reference architecture. The
//! paper names ftp-style file movement, persistent queues, and fault-tolerant
//! logs as the options, with the choice driven by transaction guarantees:
//!
//! * [`mod@file`] — file shipping with checksummed manifests (the ftp analogue);
//! * [`queue`] — a durable at-least-once queue with consumer acknowledgements
//!   (the persistent-queue analogue), with optional disk budgets and a
//!   producer-side backpressure signal;
//! * [`compact`] — prefix compaction for the queue's spool (drop fully-acked
//!   frames, atomically, preserving absolute message indices);
//! * [`netsim`] — a deterministic **virtual-time network simulator** used to
//!   reproduce the §3.1.3 remote-write findings (the 10 Mb/s switched LAN,
//!   connection-establishment penalties, per-row round trips) without real
//!   hardware. See DESIGN.md §2 for the substitution rationale.

pub mod compact;
pub mod file;
pub mod netsim;
pub mod queue;

pub use compact::CompactStats;
pub use file::FileTransport;
pub use netsim::{
    LinkProfile, NetFault, NetFaultPlan, NetFaultSim, NetFaultStats, SimulatedConnection,
    TransferStats, VirtualClock,
};
pub use queue::{FaultyQueue, PersistentQueue, SpoolPressure, PRESSURE_NEAR_BYTES};
