//! CI-grade torture smoke: a fixed-seed matrix of crash–recover–resync
//! cycles must all converge. Failures print the seed, which reproduces the
//! exact schedule via `cargo run -p delta-bench --bin torture -- --seed N`.

use delta_bench::torture::{run, TortureConfig};

#[test]
fn twenty_seeded_cycles_converge() {
    let cfg = TortureConfig {
        seed: 0xDE17A,
        cycles: 20,
        txns: 8,
        sync_workers: 1,
        audit: false,
        pressure: false,
    };
    let stats = run(&cfg).expect("every cycle must converge");
    assert_eq!(stats.cycles, 20);
    // The schedule must actually exercise the machinery, not tiptoe past it.
    assert!(stats.txns_ok > 0, "no transaction ever committed");
    assert!(stats.published > 0, "no delta was ever shipped");
    assert!(
        stats.source_crashes + stats.txns_faulted > 0,
        "the fault plan never fired: {}",
        stats.summary()
    );
}

#[test]
fn alternate_seed_also_converges_and_is_deterministic() {
    let cfg = TortureConfig {
        seed: 99,
        cycles: 6,
        txns: 6,
        sync_workers: 1,
        audit: false,
        pressure: false,
    };
    let a = run(&cfg).expect("seed 99 must converge");
    let b = run(&cfg).expect("seed 99 must converge again");
    // Identical seeds replay identical schedules: the counters must match
    // exactly, which is what makes a printed seed a faithful reproduction.
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}

#[test]
fn parallel_scheduler_converges_on_the_ci_seed_matrix() {
    // The staged parallel apply path must survive the same seeded
    // crash-convergence schedules CI runs serially (see torture-smoke in
    // ci.yml), at a reduced cycle count to stay smoke-sized.
    for seed in [909690, 7, 1234] {
        let cfg = TortureConfig {
            seed,
            cycles: 6,
            txns: 8,
            sync_workers: 4,
            audit: false,
            pressure: false,
        };
        let stats =
            run(&cfg).unwrap_or_else(|e| panic!("seed {seed} with 4 workers must converge: {e}"));
        assert_eq!(stats.cycles, 6, "seed {seed}");
        assert!(stats.published > 0, "seed {seed}: no delta ever shipped");
    }
}

#[test]
fn pressure_mode_converges_under_shrinking_budgets_and_stalls() {
    // Resource-exhaustion smoke: shrinking spool budgets force the ship
    // degradation ladder (compact → coalesce → defer) and seeded stalls
    // exercise the watchdog; every cycle must still end byte-equal.
    let cfg = TortureConfig {
        seed: 424242,
        cycles: 20,
        txns: 8,
        sync_workers: 2,
        audit: false,
        pressure: true,
    };
    let stats = run(&cfg).expect("every pressured cycle must converge");
    assert_eq!(stats.cycles, 20);
    assert!(
        stats.backpressure > 0,
        "the budget never bit: {}",
        stats.summary()
    );
    assert!(
        stats.ship_compactions > 0,
        "backpressure never triggered spool compaction: {}",
        stats.summary()
    );
    assert!(
        stats.ship_deferrals > 0 && stats.pressure_lifts > 0,
        "no round was ever deferred past a pressure lift: {}",
        stats.summary()
    );
}

#[test]
fn audit_mode_detects_and_repairs_seeded_divergence() {
    // Anti-entropy smoke: every cycle injects one seeded silent divergence
    // (flipped/lost/phantom rows, poison batches, ack-then-drop) and the
    // audit pass must repair the mirror back to byte-equality before the
    // cycle's convergence check — which `run` enforces internally.
    let cfg = TortureConfig {
        seed: 909690,
        cycles: 8,
        txns: 8,
        sync_workers: 1,
        audit: true,
        pressure: false,
    };
    let stats = run(&cfg).expect("every audited cycle must converge");
    assert_eq!(stats.cycles, 8);
    assert_eq!(stats.audits, 8, "one audit per cycle");
    assert_eq!(stats.divergences_injected, 8, "one divergence per cycle");
    assert!(
        stats.repair_records > 0,
        "audits never shipped a repair: {}",
        stats.summary()
    );
}
