//! Criterion bench for **Experiment W**: warehouse apply time of the same
//! source update transaction as a value delta vs an Op-Delta. Expected: the
//! Op-Delta apply substantially cheaper (one statement vs 2n statements).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use delta_bench::workload::{filler, op_schema, seed_rows, update_txn_sql, SourceBuilder};
use delta_core::opdelta::{collect_from_table, OpDeltaCapture, OpLogSink};
use delta_core::trigger_extract::TriggerExtractor;
use delta_warehouse::apply::{OpDeltaApplier, ValueDeltaApplier, Warehouse};
use delta_warehouse::mirror::MirrorConfig;

const ROWS: usize = 5000;
const N: usize = 100;

fn bench(c: &mut Criterion) {
    // Capture one 100-row update both ways at the source.
    let b = SourceBuilder::new("crit-w");
    let src = b.db(false).unwrap();
    b.seeded_op_table(&src, "parts", ROWS).unwrap();
    let extractor = TriggerExtractor::new("parts");
    extractor.install(&src).unwrap();
    let mut cap = OpDeltaCapture::new(src.session(), OpLogSink::Table("op_log".into())).unwrap();
    cap.execute(&update_txn_sql("parts", 0, N)).unwrap();
    let value_delta = extractor.drain(&src).unwrap();
    let op_deltas = collect_from_table(&src, "op_log").unwrap();

    // One warehouse per strategy; re-applying the same update is idempotent
    // in timing terms (same rows rewritten), so plain iteration is fine for
    // the op path; the value path deletes+inserts the same keys, also stable.
    let make_wh = || {
        let db = b.db(false).unwrap();
        let mut wh = Warehouse::new(db);
        wh.add_mirror(MirrorConfig::full("parts", op_schema()))
            .unwrap();
        wh.db()
            .create_index("grp_idx", "parts", "grp", false)
            .unwrap();
        seed_rows(wh.db(), "parts", 0, ROWS, |id| {
            format!("({id}, {id}, 0, '{}')", filler(id))
        })
        .unwrap();
        wh
    };

    let mut g = c.benchmark_group("expw");
    g.sample_size(20);
    let wh_value = make_wh();
    g.bench_function("value_delta_apply_update100", |bench| {
        bench.iter_batched(
            || (),
            |_| ValueDeltaApplier::apply(&wh_value, &value_delta).unwrap(),
            BatchSize::PerIteration,
        )
    });
    let wh_op = make_wh();
    g.bench_function("op_delta_apply_update100", |bench| {
        bench.iter(|| OpDeltaApplier::apply_all(&wh_op, &op_deltas).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
