//! Criterion bench for **Figure 3**: transaction cost with and without
//! Op-Delta capture (transactional DB-table log). Expected: insert capture
//! costs noticeably (op volume ~ row volume); update capture costs almost
//! nothing (op is ~70 bytes).

use criterion::{criterion_group, criterion_main, Criterion};

use delta_bench::workload::{insert_txn_sql, update_txn_sql, SourceBuilder};
use delta_core::opdelta::{OpDeltaCapture, OpLogSink};

const ROWS: usize = 5000;
const N: usize = 100;

fn bench(c: &mut Criterion) {
    let b = SourceBuilder::new("crit-f3");
    let plain = b.db(false).unwrap();
    b.seeded_op_table(&plain, "parts", ROWS).unwrap();
    let captured = b.db(false).unwrap();
    b.seeded_op_table(&captured, "parts", ROWS).unwrap();

    let mut g = c.benchmark_group("fig3");
    g.sample_size(30);
    let mut s_plain = plain.session();
    g.bench_function("update100_no_capture", |bench| {
        bench.iter(|| s_plain.execute(&update_txn_sql("parts", 0, N)).unwrap())
    });
    let mut cap =
        OpDeltaCapture::new(captured.session(), OpLogSink::Table("op_log".into())).unwrap();
    g.bench_function("update100_with_capture", |bench| {
        bench.iter(|| cap.execute(&update_txn_sql("parts", 0, N)).unwrap())
    });
    let mut next = (ROWS * 10) as i64;
    g.bench_function("insert100_no_capture", |bench| {
        bench.iter(|| {
            s_plain.execute(&insert_txn_sql("parts", next, N)).unwrap();
            next += N as i64;
        })
    });
    let mut next_c = (ROWS * 10) as i64;
    g.bench_function("insert100_with_capture", |bench| {
        bench.iter(|| {
            cap.execute(&insert_txn_sql("parts", next_c, N)).unwrap();
            next_c += N as i64;
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
