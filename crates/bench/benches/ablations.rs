//! Criterion benches for the DESIGN.md ablations: snapshot-diff algorithm
//! choice and index-vs-scan timestamp extraction.

use criterion::{criterion_group, criterion_main, Criterion};

use delta_bench::workload::SourceBuilder;
use delta_core::snapshot::{diff_snapshots, take_snapshot, DiffAlgorithm};
use delta_core::timestamp::TimestampExtractor;

const ROWS: usize = 2000;

fn bench(c: &mut Criterion) {
    let b = SourceBuilder::new("crit-abl");

    // Snapshot-diff inputs: 5% churn, in-place (small displacement).
    let db = b.db(false).unwrap();
    b.seeded_ts_table(&db, "parts", ROWS).unwrap();
    let old_path = b.path("old.txt");
    take_snapshot(&db, "parts", &old_path).unwrap();
    db.session()
        .execute(&format!(
            "UPDATE parts SET grp = grp + 1000000 WHERE id < {}",
            ROWS / 20
        ))
        .unwrap();
    let new_path = b.path("new.txt");
    take_snapshot(&db, "parts", &new_path).unwrap();
    let schema = db.table("parts").unwrap().schema.clone();

    let mut g = c.benchmark_group("ablation_snapshot");
    g.sample_size(20);
    g.bench_function("sort_merge", |bench| {
        bench.iter(|| {
            diff_snapshots(
                "parts",
                &schema,
                &[0],
                &old_path,
                &new_path,
                DiffAlgorithm::SortMerge { run_size: 500 },
            )
            .unwrap()
        })
    });
    g.bench_function("window_256", |bench| {
        bench.iter(|| {
            diff_snapshots(
                "parts",
                &schema,
                &[0],
                &old_path,
                &new_path,
                DiffAlgorithm::Window { size: 256 },
            )
            .unwrap()
        })
    });
    g.finish();

    // Timestamp extraction: 2% delta, with and without an index.
    let plain = b.db(false).unwrap();
    b.seeded_ts_table(&plain, "parts", ROWS).unwrap();
    let indexed = b.db(false).unwrap();
    b.seeded_ts_table(&indexed, "parts", ROWS).unwrap();
    indexed
        .create_index("ts_idx", "parts", "last_modified", false)
        .unwrap();
    let n = ROWS / 50;
    let (wm_plain, wm_indexed) = (plain.peek_clock(), indexed.peek_clock());
    for db in [&plain, &indexed] {
        db.session()
            .execute(&format!("UPDATE parts SET grp = grp WHERE id < {n}"))
            .unwrap();
    }
    let x = TimestampExtractor::new("parts", "last_modified");
    let mut g = c.benchmark_group("ablation_ts_index");
    g.sample_size(30);
    g.bench_function("scan_2pct_delta", |bench| {
        bench.iter(|| assert_eq!(x.extract(&plain, wm_plain).unwrap().len(), n))
    });
    g.bench_function("index_2pct_delta", |bench| {
        bench.iter(|| assert_eq!(x.extract(&indexed, wm_indexed).unwrap().len(), n))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
