//! Criterion bench for **Figure 2**: transaction cost with and without
//! delta-capture triggers (update and insert transactions of 100 rows).
//! Expected: with-trigger clearly above the baseline for both.

use criterion::{criterion_group, criterion_main, Criterion};

use delta_bench::workload::{insert_txn_sql, update_txn_sql, SourceBuilder};
use delta_core::trigger_extract::TriggerExtractor;

const ROWS: usize = 5000;
const N: usize = 100;

fn bench(c: &mut Criterion) {
    let b = SourceBuilder::new("crit-f2");
    let plain = b.db(false).unwrap();
    b.seeded_op_table(&plain, "parts", ROWS).unwrap();
    let triggered = b.db(false).unwrap();
    b.seeded_op_table(&triggered, "parts", ROWS).unwrap();
    TriggerExtractor::new("parts").install(&triggered).unwrap();

    let mut g = c.benchmark_group("fig2");
    g.sample_size(30);
    // Updates are state-stable (val = val + 1), so plain iteration is safe.
    let mut s_plain = plain.session();
    g.bench_function("update100_no_trigger", |bench| {
        bench.iter(|| s_plain.execute(&update_txn_sql("parts", 0, N)).unwrap())
    });
    let mut s_trig = triggered.session();
    g.bench_function("update100_with_trigger", |bench| {
        bench.iter(|| s_trig.execute(&update_txn_sql("parts", 0, N)).unwrap())
    });
    // Inserts grow the table; use a moving id cursor (growth over the run is
    // small relative to the table).
    let mut next = (ROWS * 10) as i64;
    g.bench_function("insert100_no_trigger", |bench| {
        bench.iter(|| {
            s_plain.execute(&insert_txn_sql("parts", next, N)).unwrap();
            next += N as i64;
        })
    });
    let mut next_t = (ROWS * 10) as i64;
    g.bench_function("insert100_with_trigger", |bench| {
        bench.iter(|| {
            s_trig.execute(&insert_txn_sql("parts", next_t, N)).unwrap();
            next_t += N as i64;
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
