//! Criterion bench for **Table 3**: the two extract-and-load pipelines.
//! Expected: file+Loader clearly faster than table+Export+Import.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use delta_bench::workload::SourceBuilder;
use delta_core::timestamp::TimestampExtractor;
use delta_engine::util::{import_table, loader_load, LoadMode};

const ROWS: usize = 2000;
const DELTA: usize = 200;
const DDL: &str = "(id INT PRIMARY KEY, grp INT, filler VARCHAR, last_modified TIMESTAMP)";

fn bench(c: &mut Criterion) {
    let b = SourceBuilder::new("crit-t3");
    let source = b.db(false).unwrap();
    let warehouse = b.db(false).unwrap();
    b.seeded_ts_table(&source, "parts", ROWS).unwrap();
    let watermark = source.peek_clock();
    source
        .session()
        .execute(&format!("UPDATE parts SET grp = grp WHERE id < {DELTA}"))
        .unwrap();
    let x = TimestampExtractor::new("parts", "last_modified");
    let txt = b.path("p.txt");
    let exp = b.path("p.exp");
    warehouse
        .session()
        .execute(&format!("CREATE TABLE wa {DDL}"))
        .unwrap();

    let mut g = c.benchmark_group("table3");
    g.sample_size(15);
    g.bench_function("file_plus_loader", |bench| {
        bench.iter(|| {
            x.extract_to_file(&source, watermark, &txt).unwrap();
            loader_load(&warehouse, "wa", &txt, LoadMode::Replace).unwrap()
        })
    });
    g.bench_function("table_export_import", |bench| {
        bench.iter_batched(
            || {
                source.drop_table("t3d").ok();
                warehouse.drop_table("wb").ok();
                warehouse
                    .session()
                    .execute(&format!("CREATE TABLE wb {DDL}"))
                    .unwrap();
            },
            |_| {
                x.extract_to_table_and_export(&source, watermark, "t3d", &exp)
                    .unwrap();
                import_table(&warehouse, "wb", &exp).unwrap()
            },
            BatchSize::PerIteration,
        )
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
