//! Criterion bench for **Experiment C**: OLAP query latency while the two
//! maintenance strategies hold their locks. Measures a single warehouse scan
//! issued (a) on an idle warehouse, (b) between Op-Delta transactions, and
//! (c) the cost of waiting out a value-delta batch (lock handoff included).
//! The full reader-pool experiment with starvation counts lives in
//! `repro expc`.

use criterion::{criterion_group, criterion_main, Criterion};

use delta_bench::workload::{filler, op_schema, seed_rows, update_txn_sql, SourceBuilder};
use delta_core::opdelta::{collect_from_table, OpDeltaCapture, OpLogSink};
use delta_core::trigger_extract::TriggerExtractor;
use delta_warehouse::apply::{OpDeltaApplier, ValueDeltaApplier, Warehouse};
use delta_warehouse::mirror::MirrorConfig;

const ROWS: usize = 2000;
const N: usize = 200;

fn bench(c: &mut Criterion) {
    let b = SourceBuilder::new("crit-c");
    let src = b.db(false).unwrap();
    b.seeded_op_table(&src, "parts", ROWS).unwrap();
    let extractor = TriggerExtractor::new("parts");
    extractor.install(&src).unwrap();
    let mut cap = OpDeltaCapture::new(src.session(), OpLogSink::Table("op_log".into())).unwrap();
    cap.execute(&update_txn_sql("parts", 0, N)).unwrap();
    let value_delta = extractor.drain(&src).unwrap();
    let op_deltas = collect_from_table(&src, "op_log").unwrap();

    let db = b.db(false).unwrap();
    let mut wh = Warehouse::new(db);
    wh.add_mirror(MirrorConfig::full("parts", op_schema()))
        .unwrap();
    seed_rows(wh.db(), "parts", 0, ROWS, |id| {
        format!("({id}, {id}, 0, '{}')", filler(id))
    })
    .unwrap();

    let mut g = c.benchmark_group("expc");
    g.sample_size(20);
    let mut reader = wh.db().session();
    g.bench_function("olap_scan_idle", |bench| {
        bench.iter(|| reader.execute("SELECT * FROM parts").unwrap())
    });
    g.bench_function("olap_scan_after_op_delta_txn", |bench| {
        bench.iter(|| {
            OpDeltaApplier::apply_all(&wh, &op_deltas).unwrap();
            reader.execute("SELECT * FROM parts").unwrap()
        })
    });
    g.bench_function("olap_scan_after_value_batch", |bench| {
        bench.iter(|| {
            ValueDeltaApplier::apply(&wh, &value_delta).unwrap();
            reader.execute("SELECT * FROM parts").unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
