//! Criterion bench for **Table 1**: Export vs Import vs DBMS Loader.
//!
//! Statistically sampled at a small fixed size; the full size sweep lives in
//! `repro table1`. Expected ordering: export < loader < import.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use delta_bench::workload::SourceBuilder;
use delta_engine::util::{ascii_dump, export_table, import_table, loader_load, LoadMode};

const ROWS: usize = 1000;
const DDL: &str = "(id INT PRIMARY KEY, grp INT, filler VARCHAR, last_modified TIMESTAMP)";

fn bench(c: &mut Criterion) {
    let b = SourceBuilder::new("crit-t1");
    let db = b.db(false).unwrap();
    b.seeded_ts_table(&db, "delta", ROWS).unwrap();
    let exp_path = b.path("delta.exp");
    let txt_path = b.path("delta.txt");
    export_table(&db, "delta", &exp_path).unwrap();
    ascii_dump(&db, "delta", &txt_path).unwrap();
    db.session()
        .execute(&format!("CREATE TABLE target {DDL}"))
        .unwrap();

    let mut g = c.benchmark_group("table1");
    g.sample_size(20);

    g.bench_function("export_1k_rows", |bench| {
        bench.iter(|| export_table(&db, "delta", &exp_path).unwrap())
    });
    g.bench_function("loader_1k_rows", |bench| {
        // Replace mode makes the load idempotent across iterations.
        bench.iter(|| loader_load(&db, "target", &txt_path, LoadMode::Replace).unwrap())
    });
    g.bench_function("import_1k_rows", |bench| {
        bench.iter_batched(
            || {
                db.drop_table("imp").ok();
                db.session()
                    .execute(&format!("CREATE TABLE imp {DDL}"))
                    .unwrap();
            },
            |_| import_table(&db, "imp", &exp_path).unwrap(),
            BatchSize::PerIteration,
        )
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
