//! Criterion bench for **Table 4**: Op-Delta DB-table log vs file log.
//! Expected: the file log clearly cheaper for inserts, about equal for
//! updates.

use criterion::{criterion_group, criterion_main, Criterion};

use delta_bench::workload::{insert_txn_sql, update_txn_sql, SourceBuilder};
use delta_core::opdelta::{OpDeltaCapture, OpLogSink};

const ROWS: usize = 5000;
const N: usize = 100;

fn bench(c: &mut Criterion) {
    let b = SourceBuilder::new("crit-t4");
    let db_sink = b.db(false).unwrap();
    b.seeded_op_table(&db_sink, "parts", ROWS).unwrap();
    let file_sink = b.db(false).unwrap();
    b.seeded_op_table(&file_sink, "parts", ROWS).unwrap();

    let mut cap_db =
        OpDeltaCapture::new(db_sink.session(), OpLogSink::Table("op_log".into())).unwrap();
    let mut cap_file =
        OpDeltaCapture::new(file_sink.session(), OpLogSink::File(b.path("t4.oplog"))).unwrap();

    let mut g = c.benchmark_group("table4");
    g.sample_size(30);
    let mut next = (ROWS * 10) as i64;
    g.bench_function("insert100_db_log", |bench| {
        bench.iter(|| {
            cap_db.execute(&insert_txn_sql("parts", next, N)).unwrap();
            next += N as i64;
        })
    });
    let mut next_f = (ROWS * 10) as i64;
    g.bench_function("insert100_file_log", |bench| {
        bench.iter(|| {
            cap_file
                .execute(&insert_txn_sql("parts", next_f, N))
                .unwrap();
            next_f += N as i64;
        })
    });
    g.bench_function("update100_db_log", |bench| {
        bench.iter(|| cap_db.execute(&update_txn_sql("parts", 0, N)).unwrap())
    });
    g.bench_function("update100_file_log", |bench| {
        bench.iter(|| cap_file.execute(&update_txn_sql("parts", 0, N)).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
