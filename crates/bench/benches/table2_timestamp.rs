//! Criterion bench for **Table 2**: timestamp extraction output modes.
//! Expected ordering: file output < table output < table output + export.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use delta_bench::workload::SourceBuilder;
use delta_core::timestamp::TimestampExtractor;

const ROWS: usize = 2000;
const DELTA: usize = 200;

fn bench(c: &mut Criterion) {
    let b = SourceBuilder::new("crit-t2");
    let db = b.db(false).unwrap();
    b.seeded_ts_table(&db, "parts", ROWS).unwrap();
    let watermark = db.peek_clock();
    db.session()
        .execute(&format!("UPDATE parts SET grp = grp WHERE id < {DELTA}"))
        .unwrap();
    let x = TimestampExtractor::new("parts", "last_modified");
    let file_path = b.path("ts.txt");
    let exp_path = b.path("ts.exp");

    let mut g = c.benchmark_group("table2");
    g.sample_size(20);
    g.bench_function("file_output", |bench| {
        bench.iter(|| {
            assert_eq!(
                x.extract_to_file(&db, watermark, &file_path).unwrap(),
                DELTA as u64
            )
        })
    });
    g.bench_function("table_output", |bench| {
        bench.iter_batched(
            || {
                db.drop_table("tsd").ok();
            },
            |_| {
                assert_eq!(
                    x.extract_to_table(&db, watermark, "tsd").unwrap(),
                    DELTA as u64
                )
            },
            BatchSize::PerIteration,
        )
    });
    g.bench_function("table_output_plus_export", |bench| {
        bench.iter_batched(
            || {
                db.drop_table("tsd2").ok();
            },
            |_| {
                assert_eq!(
                    x.extract_to_table_and_export(&db, watermark, "tsd2", &exp_path)
                        .unwrap(),
                    DELTA as u64
                )
            },
            BatchSize::PerIteration,
        )
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
