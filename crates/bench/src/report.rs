//! Experiment reporting: paper-style tables, rendered as markdown and
//! persisted as JSON.

use std::path::Path;
use std::time::Duration;

use crate::json::Json;

/// One reproduced table or figure.
#[derive(Debug, Clone, PartialEq)]
pub struct TableReport {
    /// Experiment id (e.g. "T1", "F2").
    pub id: String,
    /// Human title, matching the paper artifact.
    pub title: String,
    /// What shape the paper reports, for eyeballing the output.
    pub expectation: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (scaling, substitutions, virtual time, ...).
    pub notes: Vec<String>,
    /// Programmatic shape assertions evaluated on the measured data: the
    /// paper's qualitative findings as pass/fail checks. Absent in older
    /// persisted reports, which load as an empty list.
    pub checks: Vec<ShapeCheck>,
}

/// One verified property of the measured shape.
#[derive(Debug, Clone, PartialEq)]
pub struct ShapeCheck {
    /// What the paper claims about the measured shape.
    pub name: String,
    /// Whether the measurement agrees.
    pub pass: bool,
}

impl TableReport {
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        expectation: impl Into<String>,
        headers: &[&str],
    ) -> TableReport {
        TableReport {
            id: id.into(),
            title: title.into(),
            expectation: expectation.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
            checks: Vec::new(),
        }
    }

    /// Append a data row (stringified cells).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Append a note.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Record a shape assertion.
    pub fn check(&mut self, name: impl Into<String>, pass: bool) {
        self.checks.push(ShapeCheck {
            name: name.into(),
            pass,
        });
    }

    /// Whether every shape check passed (vacuously true when none).
    pub fn all_checks_pass(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// Render as a markdown section.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {} — {}\n\n", self.id, self.title);
        out.push_str(&format!("*Paper's shape:* {}\n\n", self.expectation));
        let widths: Vec<usize> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain([h.len()])
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let fmt_row = |cells: &[String]| {
            let padded: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |\n", padded.join(" | "))
        };
        out.push_str(&fmt_row(&self.headers));
        out.push_str(&format!(
            "|{}|\n",
            widths
                .iter()
                .map(|w| "-".repeat(w + 2))
                .collect::<Vec<_>>()
                .join("|")
        ));
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        if !self.notes.is_empty() {
            out.push('\n');
            for n in &self.notes {
                out.push_str(&format!("- {n}\n"));
            }
        }
        if !self.checks.is_empty() {
            out.push_str("\nShape checks:\n");
            for c in &self.checks {
                out.push_str(&format!(
                    "- [{}] {}\n",
                    if c.pass { "PASS" } else { "FAIL" },
                    c.name
                ));
            }
        }
        out.push('\n');
        out
    }

    /// Persist as JSON under `dir/<id>.json`.
    pub fn save_json(&self, dir: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::create_dir_all(dir.as_ref())?;
        let path = dir.as_ref().join(format!("{}.json", self.id));
        std::fs::write(path, self.to_json().to_pretty())
    }

    /// Load from JSON.
    pub fn load_json(path: impl AsRef<Path>) -> std::io::Result<TableReport> {
        let text = std::fs::read_to_string(path)?;
        let invalid = |m: String| std::io::Error::new(std::io::ErrorKind::InvalidData, m);
        let doc = Json::parse(&text).map_err(invalid)?;
        TableReport::from_json(&doc).map_err(invalid)
    }

    fn to_json(&self) -> Json {
        let strs = |v: &[String]| Json::Arr(v.iter().map(|s| Json::Str(s.clone())).collect());
        let mut obj = std::collections::BTreeMap::new();
        obj.insert("id".to_string(), Json::Str(self.id.clone()));
        obj.insert("title".to_string(), Json::Str(self.title.clone()));
        obj.insert(
            "expectation".to_string(),
            Json::Str(self.expectation.clone()),
        );
        obj.insert("headers".to_string(), strs(&self.headers));
        obj.insert(
            "rows".to_string(),
            Json::Arr(self.rows.iter().map(|r| strs(r)).collect()),
        );
        obj.insert("notes".to_string(), strs(&self.notes));
        obj.insert(
            "checks".to_string(),
            Json::Arr(
                self.checks
                    .iter()
                    .map(|c| {
                        let mut m = std::collections::BTreeMap::new();
                        m.insert("name".to_string(), Json::Str(c.name.clone()));
                        m.insert("pass".to_string(), Json::Bool(c.pass));
                        Json::Obj(m)
                    })
                    .collect(),
            ),
        );
        Json::Obj(obj)
    }

    fn from_json(doc: &Json) -> Result<TableReport, String> {
        let str_field = |key: &str| {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field '{key}'"))
        };
        let str_arr = |v: &Json| -> Result<Vec<String>, String> {
            v.as_arr()
                .ok_or_else(|| "expected array".to_string())?
                .iter()
                .map(|s| {
                    s.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "expected string element".to_string())
                })
                .collect()
        };
        let arr_field = |key: &str| -> Result<Vec<String>, String> {
            str_arr(
                doc.get(key)
                    .ok_or_else(|| format!("missing field '{key}'"))?,
            )
        };
        let rows = doc
            .get("rows")
            .and_then(Json::as_arr)
            .ok_or_else(|| "missing array field 'rows'".to_string())?
            .iter()
            .map(str_arr)
            .collect::<Result<Vec<_>, _>>()?;
        // `checks` was added after the first persisted reports: default empty.
        let checks = match doc.get("checks") {
            None | Some(Json::Null) => Vec::new(),
            Some(v) => v
                .as_arr()
                .ok_or_else(|| "expected 'checks' array".to_string())?
                .iter()
                .map(|c| {
                    Ok(ShapeCheck {
                        name: c
                            .get("name")
                            .and_then(Json::as_str)
                            .ok_or_else(|| "check missing 'name'".to_string())?
                            .to_string(),
                        pass: c
                            .get("pass")
                            .and_then(Json::as_bool)
                            .ok_or_else(|| "check missing 'pass'".to_string())?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
        };
        Ok(TableReport {
            id: str_field("id")?,
            title: str_field("title")?,
            expectation: str_field("expectation")?,
            headers: arr_field("headers")?,
            rows,
            notes: arr_field("notes")?,
            checks,
        })
    }
}

/// Format a duration the way the paper's tables do (adaptive units).
pub fn fmt_duration(d: Duration) -> String {
    let ms = d.as_secs_f64() * 1e3;
    if ms < 1.0 {
        format!("{:.0} µs", d.as_secs_f64() * 1e6)
    } else if ms < 1000.0 {
        format!("{ms:.1} ms")
    } else if ms < 60_000.0 {
        format!("{:.2} s", ms / 1e3)
    } else {
        format!("{:.1} min", ms / 60_000.0)
    }
}

/// Format a percentage.
pub fn fmt_pct(p: f64) -> String {
    format!("{p:.1}%")
}

/// Percentage overhead of `with` relative to `without`.
pub fn overhead_pct(without: Duration, with: Duration) -> f64 {
    if without.is_zero() {
        return 0.0;
    }
    (with.as_secs_f64() / without.as_secs_f64() - 1.0) * 100.0
}

/// Percentage saving of `new` relative to `old` (positive = faster).
pub fn saving_pct(old: Duration, new: Duration) -> f64 {
    if old.is_zero() {
        return 0.0;
    }
    (1.0 - new.as_secs_f64() / old.as_secs_f64()) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TableReport {
        let mut t = TableReport::new("T9", "Demo", "a < b everywhere", &["size", "a", "b"]);
        t.push_row(vec!["10".into(), "1 ms".into(), "2 ms".into()]);
        t.note("scaled 1000x down");
        t
    }

    #[test]
    fn markdown_contains_all_cells() {
        let md = sample().to_markdown();
        assert!(md.contains("### T9"));
        assert!(md.contains("| size | a    | b    |"));
        assert!(md.contains("1 ms"));
        assert!(md.contains("- scaled 1000x down"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_is_enforced() {
        let mut t = sample();
        t.push_row(vec!["oops".into()]);
    }

    #[test]
    fn json_round_trip() {
        let dir = std::env::temp_dir().join(format!(
            "delta-report-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let t = sample();
        t.save_json(&dir).unwrap();
        let back = TableReport::load_json(dir.join("T9.json")).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn duration_formatting_units() {
        assert!(fmt_duration(Duration::from_micros(50)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(50)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(5)).contains('s'));
        assert!(fmt_duration(Duration::from_secs(120)).contains("min"));
    }

    #[test]
    fn percentage_math() {
        assert_eq!(
            overhead_pct(Duration::from_millis(100), Duration::from_millis(180)).round(),
            80.0
        );
        assert_eq!(
            saving_pct(Duration::from_millis(100), Duration::from_millis(30)).round(),
            70.0
        );
        assert_eq!(overhead_pct(Duration::ZERO, Duration::from_millis(1)), 0.0);
    }
}
