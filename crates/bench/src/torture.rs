//! Crash–recover–resync torture driver for the extract–ship–apply pipeline.
//!
//! Each cycle, fully determined by one seed:
//!
//! 1. opens the source database under a randomized [`FaultPlan`] (I/O
//!    errors, torn writes, lying fsyncs, sticky crash points) and runs a
//!    randomized transaction mix against it;
//! 2. crashes the process image when the injector says so (the database is
//!    leaked, never shut down) and re-opens cleanly, exercising WAL redo
//!    recovery;
//! 3. occasionally checkpoints (archiving redo segments), corrupts an
//!    archived segment (forcing [`ResilientLogExtractor`] to degrade to
//!    snapshot diffing), or crash-restarts the *warehouse* database;
//! 4. extracts committed deltas, ships them through the persistent queue
//!    under a lossy [`NetFaultPlan`] (loss, duplication, reordering, lost
//!    acks) with bounded retry, and drains the pipeline;
//! 5. asserts **convergence**: the warehouse mirror is byte-identical to
//!    the recovered source table, nothing was quarantined, and the applied
//!    watermark matches the queue's acknowledgement frontier
//!    (exactly-once-observable apply).
//!
//! Any violated invariant aborts the run with a message carrying the master
//! seed, so every failure is reproducible with `torture --seed <n>`.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use std::time::Duration;

use delta_core::logextract::ResilientLogExtractor;
use delta_core::model::{DeltaBatch, DeltaOp, ValueDelta, ValueDeltaRecord};
use delta_engine::db::{Database, DbOptions, SyncMode};
use delta_engine::EngineResult;
use delta_storage::fault::{splitmix64, FaultInjector, FaultPlan};
use delta_storage::{DiskBudget, Row, Value};
use delta_transport::NetFaultPlan;
use delta_warehouse::{
    audit_and_repair, AuditConfig, MirrorConfig, Pipeline, RetryPolicy, StallPlan, Warehouse,
};

use crate::workload::{delete_txn_sql, insert_txn_sql, op_schema, update_txn_sql};

/// Knobs for one torture run.
#[derive(Debug, Clone, Copy)]
pub struct TortureConfig {
    /// Master seed; every fault schedule and workload choice derives from it.
    pub seed: u64,
    /// Crash–recover–resync cycles to run.
    pub cycles: u64,
    /// Transactions attempted against the source per cycle.
    pub txns: u64,
    /// Apply workers for the staged sync scheduler (0 = available
    /// parallelism, 1 = the historical serial loop).
    pub sync_workers: usize,
    /// Anti-entropy mode: each cycle additionally injects silent warehouse
    /// divergence (flipped rows, lost rows, phantoms, poison batches,
    /// ack-then-drop) and asserts one [`audit_and_repair`] pass converges
    /// the mirror byte-equal before the cycle's convergence check runs.
    pub audit: bool,
    /// Resource-exhaustion mode: the shipping queue runs under a seeded,
    /// cycle-by-cycle *shrinking* disk budget (shipping goes through the
    /// [`Pipeline::ship`] degradation ladder: compact → coalesce → defer),
    /// the source database runs under its own disk budget (transactions
    /// fail with typed `DiskFull` errors and recover at reopen), and the
    /// apply stage runs with injected stalls under the watchdog's
    /// per-stage deadline. Convergence is still byte-equality once each
    /// cycle's pressure lifts — zero loss, zero duplicates.
    pub pressure: bool,
}

impl Default for TortureConfig {
    fn default() -> TortureConfig {
        TortureConfig {
            seed: 0xDE17A,
            cycles: 20,
            txns: 8,
            sync_workers: 1,
            audit: false,
            pressure: false,
        }
    }
}

/// What a completed run survived. All counters are totals across cycles.
#[derive(Debug, Clone, Copy, Default)]
pub struct TortureStats {
    /// Cycles completed (equals the configured count on success).
    pub cycles: u64,
    /// Source transactions that committed.
    pub txns_ok: u64,
    /// Source transactions failed by an injected I/O error.
    pub txns_faulted: u64,
    /// Source crash–recover events (including crashes during open).
    pub source_crashes: u64,
    /// Warehouse crash–restart events.
    pub warehouse_crashes: u64,
    /// Checkpoints taken (each archives redo segments).
    pub checkpoints: u64,
    /// Archived segments deliberately corrupted.
    pub segment_corruptions: u64,
    /// Extractions that degraded to snapshot diffing.
    pub degraded_extracts: u64,
    /// Delta batches published into the shipping queue.
    pub published: u64,
    /// `Pipeline::sync` calls needed to drain everything.
    pub syncs: u64,
    /// Batches applied at the warehouse.
    pub applied_batches: u64,
    /// Redelivered/duplicated batches skipped by the watermark.
    pub deduped: u64,
    /// Apply attempts repeated under the retry policy.
    pub retries: u64,
    /// Silent divergences injected into the warehouse (`--audit` mode).
    pub divergences_injected: u64,
    /// Anti-entropy audit passes run.
    pub audits: u64,
    /// Repair delta records the audits shipped.
    pub repair_records: u64,
    /// DLQ entries the audits reconciled as superseded.
    pub dlq_reconciled: u64,
    /// Batches acknowledged on the wire but never applied (injected
    /// ack-then-drop faults; each permanently skews the applied watermark
    /// below the ack frontier until repaired).
    pub acks_dropped: u64,
    /// Enqueues denied by the queue's disk budget (`--pressure` mode).
    pub backpressure: u64,
    /// Ship rounds that degraded to the coalesced snapshot-diff form.
    pub ship_degradations: u64,
    /// Spool compactions attempted (ship ladder + post-drain reclaim).
    pub ship_compactions: u64,
    /// Ship rounds deferred entirely (nothing fit the budget).
    pub ship_deferrals: u64,
    /// Times a cycle's budget had to be lifted for the stream to resume.
    pub pressure_lifts: u64,
    /// Apply waves abandoned by the stall watchdog.
    pub stalls: u64,
}

impl TortureStats {
    /// One-line-per-counter human summary.
    pub fn summary(&self) -> String {
        format!(
            "cycles {} | txns ok {} faulted {} | source crashes {} | warehouse crashes {} | \
             checkpoints {} | segments corrupted {} | degraded extracts {} | \
             published {} | syncs {} | applied {} | deduped {} | retries {}",
            self.cycles,
            self.txns_ok,
            self.txns_faulted,
            self.source_crashes,
            self.warehouse_crashes,
            self.checkpoints,
            self.segment_corruptions,
            self.degraded_extracts,
            self.published,
            self.syncs,
            self.applied_batches,
            self.deduped,
            self.retries,
        ) + &if self.audits > 0 {
            format!(
                " | divergences {} | audits {} | repair records {} | dlq reconciled {} | \
                 acks dropped {}",
                self.divergences_injected,
                self.audits,
                self.repair_records,
                self.dlq_reconciled,
                self.acks_dropped,
            )
        } else {
            String::new()
        } + &if self.backpressure + self.ship_deferrals + self.stalls + self.ship_compactions > 0 {
            format!(
                " | backpressure {} | ship degradations {} | compactions {} | deferrals {} | \
                 pressure lifts {} | stalls {}",
                self.backpressure,
                self.ship_degradations,
                self.ship_compactions,
                self.ship_deferrals,
                self.pressure_lifts,
                self.stalls,
            )
        } else {
            String::new()
        }
    }
}

const TABLE: &str = "parts";
/// Syncs allowed to drain one cycle's queue before declaring livelock.
const MAX_DRAIN_SYNCS: u64 = 1_000;

fn source_opts(dir: &Path, faults: Option<Arc<FaultInjector>>) -> DbOptions {
    let mut opts = DbOptions::new(dir);
    opts.wal_sync = SyncMode::Fsync;
    opts.archive_mode = true;
    opts.buffer_pool_pages = 64; // small: bounds what a leaked crash image costs
    if let Some(inj) = faults {
        opts = opts.faults(inj);
    }
    opts
}

fn warehouse_opts(dir: &Path) -> DbOptions {
    let mut opts = DbOptions::new(dir);
    opts.wal_sync = SyncMode::Flush;
    opts.buffer_pool_pages = 64;
    opts
}

fn open_warehouse(dir: &Path) -> EngineResult<Warehouse> {
    let db = Database::open(warehouse_opts(dir))?;
    let mut wh = Warehouse::new(db);
    wh.add_mirror(MirrorConfig::full(TABLE, op_schema()))?;
    Ok(wh)
}

/// The committed table contents as `primary key -> encoded row bytes` —
/// byte-level equality is the convergence criterion.
fn table_state(db: &Database, ctx: &str) -> Result<BTreeMap<i64, Vec<u8>>, String> {
    let rows = db
        .scan_table(TABLE)
        .map_err(|e| format!("{ctx}: scan failed: {e}"))?;
    let mut out = BTreeMap::new();
    for (_, row) in rows {
        let key = row.values()[0]
            .as_int()
            .map_err(|e| format!("{ctx}: non-int key: {e}"))?;
        out.insert(key, row.to_bytes());
    }
    Ok(out)
}

/// Flip one mid-file byte of a random archived redo segment. Returns whether
/// a segment was actually damaged.
fn corrupt_archived_segment(db: &Database, rng: &mut u64) -> Result<bool, String> {
    let segments = db
        .wal()
        .archived_segments()
        .map_err(|e| format!("listing archived segments: {e}"))?;
    if segments.is_empty() {
        return Ok(false);
    }
    let victim = &segments[(splitmix64(rng) % segments.len() as u64) as usize];
    let mut bytes = std::fs::read(victim).map_err(|e| format!("reading segment: {e}"))?;
    if bytes.len() < 64 {
        return Ok(false);
    }
    let at = bytes.len() / 2 + (splitmix64(rng) % (bytes.len() as u64 / 4)) as usize;
    bytes[at] ^= 0x40;
    std::fs::write(victim, bytes).map_err(|e| format!("rewriting segment: {e}"))?;
    Ok(true)
}

struct Driver {
    cfg: TortureConfig,
    root: PathBuf,
    src_dir: PathBuf,
    wh_dir: PathBuf,
    queue_path: PathBuf,
    stats: TortureStats,
    /// Next fresh primary key. Monotone even across failed inserts so a
    /// transaction that *secretly* committed before a crash never collides.
    next_id: i64,
    /// The shipping queue's disk budget (`--pressure` mode): shrunk at the
    /// start of every cycle, lifted when even the coalesced form defers.
    queue_budget: Option<Arc<DiskBudget>>,
}

impl Driver {
    fn fail(&self, cycle: u64, msg: impl std::fmt::Display) -> String {
        format!(
            "torture cycle {cycle}/{}: {msg} — reproduce with --seed {} --cycles {} --txns {}",
            self.cfg.cycles, self.cfg.seed, self.cfg.cycles, self.cfg.txns
        )
    }

    /// One randomized source transaction's SQL.
    fn txn_sql(&mut self, rng: &mut u64) -> String {
        let id_space = self.next_id.max(1);
        match splitmix64(rng) % 8 {
            0..=3 => {
                let n = 1 + (splitmix64(rng) % 32) as usize;
                let first = self.next_id;
                self.next_id += n as i64;
                insert_txn_sql(TABLE, first, n)
            }
            4..=6 => {
                let n = 1 + (splitmix64(rng) % 16) as usize;
                let a = (splitmix64(rng) % id_space as u64) as i64;
                update_txn_sql(TABLE, a, n)
            }
            _ => {
                let n = 1 + (splitmix64(rng) % 8) as usize;
                let a = (splitmix64(rng) % id_space as u64) as i64;
                delete_txn_sql(TABLE, a, n)
            }
        }
    }

    /// Run the workload under faults. Returns `true` if the source crashed
    /// (and its image was leaked, never shut down).
    fn faulted_workload(&mut self, fault_seed: u64, wl_seed: u64) -> bool {
        let budget = 1 + (fault_seed % 4) as usize;
        let plan = FaultPlan::random(fault_seed, budget, 300);
        let inj = Arc::new(FaultInjector::new(plan));
        let mut opts = source_opts(&self.src_dir, Some(inj.clone()));
        if self.cfg.pressure {
            // Sustained exhaustion on top of the point faults: the source's
            // durable writes this cycle share a finite byte pool. Hitting
            // it fails transactions with typed DiskFull errors; the clean
            // (unbudgeted) reopen below recovers whatever committed.
            let mut s = fault_seed ^ 0x5EED_D15C;
            let bytes = 96 * 1024 + splitmix64(&mut s) % (128 * 1024);
            opts = opts.disk_budget(Arc::new(DiskBudget::bytes(bytes)));
        }
        let db = match Database::open(opts) {
            Ok(db) => db,
            Err(_) => {
                // Open itself hit a fault (possibly a crash point while
                // replaying): count it and recover on the clean reopen.
                self.stats.source_crashes += 1;
                return true;
            }
        };
        let mut rng = wl_seed;
        for _ in 0..self.cfg.txns {
            let sql = self.txn_sql(&mut rng);
            match db.session().execute(&sql) {
                Ok(_) => self.stats.txns_ok += 1,
                Err(_) if inj.crashed() => {
                    // Sticky crash: leak the database mid-flight, exactly
                    // like a power cut. Recovery happens at the next open.
                    let _ = std::mem::ManuallyDrop::new(db);
                    self.stats.source_crashes += 1;
                    return true;
                }
                Err(_) => self.stats.txns_faulted += 1,
            }
        }
        inj.disarm();
        drop(db); // clean shutdown
        false
    }

    /// Inject one seeded silent divergence into a drained pipeline. The
    /// five modes cover every way a mirror can silently rot: a flipped row,
    /// a lost row, a phantom row, a poison batch rotting in the DLQ, and a
    /// batch acknowledged on the wire but never applied.
    fn inject_divergence(
        &mut self,
        db: &Arc<Database>,
        wh: &Warehouse,
        pipe: &Pipeline,
        extractor: &mut ResilientLogExtractor,
        rng: &mut u64,
        cycle: u64,
    ) -> Result<(), String> {
        let keys: Vec<i64> = table_state(wh.db(), "inject")?.keys().copied().collect();
        let pick = |rng: &mut u64| keys[(splitmix64(rng) % keys.len() as u64) as usize];
        let mode = if keys.is_empty() {
            2
        } else {
            splitmix64(rng) % 5
        };
        let mut ws = wh.db().session();
        match mode {
            0 => {
                let sql = format!(
                    "UPDATE {TABLE} SET val = val + 999983 WHERE id = {}",
                    pick(rng)
                );
                ws.execute(&sql)
                    .map_err(|e| self.fail(cycle, format!("inject flip: {e}")))?;
            }
            1 => {
                let sql = format!("DELETE FROM {TABLE} WHERE id = {}", pick(rng));
                ws.execute(&sql)
                    .map_err(|e| self.fail(cycle, format!("inject delete: {e}")))?;
            }
            2 => {
                let sql = format!(
                    "INSERT INTO {TABLE} VALUES ({}, 0, 0, 'phantom')",
                    5_000_000 + cycle
                );
                ws.execute(&sql)
                    .map_err(|e| self.fail(cycle, format!("inject phantom: {e}")))?;
            }
            3 => {
                // Poison: re-inserting an existing key violates the mirror's
                // primary key on every retry and rots in the DLQ until the
                // audit reconciles it as superseded.
                let mut vd = ValueDelta::new(TABLE, op_schema());
                vd.records.push(ValueDeltaRecord {
                    op: DeltaOp::Insert,
                    txn: 0,
                    row: Row::new(vec![
                        Value::Int(pick(rng)),
                        Value::Int(0),
                        Value::Int(0),
                        Value::Str("poison".into()),
                    ]),
                });
                pipe.publish(&DeltaBatch::Value(vd))
                    .map_err(|e| self.fail(cycle, format!("inject poison: {e}")))?;
            }
            _ => {
                // Ack-then-drop: commit a real source transaction, extract
                // and publish its delta, then acknowledge it straight off
                // the wire without applying — the warehouse misses rows the
                // queue swears were delivered, and the applied watermark
                // skews permanently below the ack frontier.
                let n = 1 + (splitmix64(rng) % 4) as usize;
                let first = self.next_id;
                self.next_id += n as i64;
                db.session()
                    .execute(&insert_txn_sql(TABLE, first, n))
                    .map_err(|e| self.fail(cycle, format!("inject ack-drop txn: {e}")))?;
                let extract = extractor
                    .extract(db)
                    .map_err(|e| self.fail(cycle, format!("inject ack-drop extract: {e}")))?;
                for vd in extract.deltas {
                    pipe.publish(&DeltaBatch::Value(vd))
                        .map_err(|e| self.fail(cycle, format!("inject ack-drop publish: {e}")))?;
                }
                loop {
                    match pipe.queue().dequeue() {
                        Ok(Some((idx, _))) => {
                            pipe.queue().ack(idx).map_err(|e| {
                                self.fail(cycle, format!("inject ack-drop ack: {e}"))
                            })?;
                            self.stats.acks_dropped += 1;
                        }
                        Ok(None) => break,
                        Err(e) => {
                            return Err(self.fail(cycle, format!("inject ack-drop dequeue: {e}")))
                        }
                    }
                }
            }
        }
        self.stats.divergences_injected += 1;
        Ok(())
    }

    /// Drain the pipeline until the queue is empty, folding sync reports
    /// into the stats (including watchdog stalls, which end a sync early
    /// without error and redeliver on the next one).
    fn drain(&mut self, pipe: &Pipeline, wh: &Warehouse, cycle: u64) -> Result<(), String> {
        let mut syncs = 0;
        loop {
            let report = pipe
                .sync(wh)
                .map_err(|e| self.fail(cycle, format!("sync: {e}")))?;
            self.stats.syncs += 1;
            self.stats.applied_batches += report.batches;
            self.stats.deduped += report.deduped;
            self.stats.retries += report.retries;
            self.stats.stalls += report.stalls;
            if report.quarantined > 0 {
                return Err(self.fail(
                    cycle,
                    format!(
                        "{} healthy batch(es) quarantined: {:?}",
                        report.quarantined,
                        pipe.quarantined()
                    ),
                ));
            }
            if pipe.queue().pending() == 0 {
                break;
            }
            syncs += 1;
            if syncs > MAX_DRAIN_SYNCS {
                return Err(self.fail(
                    cycle,
                    format!(
                        "queue failed to drain after {MAX_DRAIN_SYNCS} syncs ({} pending)",
                        pipe.queue().pending()
                    ),
                ));
            }
        }
        Ok(())
    }

    /// One `--pressure` shipping round: shrink the cycle's queue budget,
    /// then ship through the degradation ladder until the round lands —
    /// compacting the drained spool between attempts, and lifting the
    /// budget entirely when even the coalesced form cannot fit in it
    /// (that is the "pressure lifts" moment the convergence check relies
    /// on; the stream must resume with zero loss).
    fn pressured_ship(
        &mut self,
        db: &Arc<Database>,
        wh: &Warehouse,
        pipe: &Pipeline,
        extractor: &mut ResilientLogExtractor,
        cycle: u64,
        chaos: u64,
    ) -> Result<(), String> {
        let budget = Arc::clone(self.queue_budget.as_ref().expect("pressure mode arms a budget"));
        let shrink = (cycle / 2).min(8) as u32;
        let mut brng = chaos ^ 0xB0D6_E7B0;
        let bytes = ((16 * 1024u64) >> shrink).max(64) + splitmix64(&mut brng) % 256;
        budget.set_global(Some(bytes));
        let mut lifted = false;
        loop {
            let round = pipe
                .ship(db, extractor)
                .map_err(|e| self.fail(cycle, format!("ship: {e}")))?;
            if std::env::var_os("TORTURE_DEBUG").is_some() {
                eprintln!(
                    "cycle {cycle}: budget {bytes} (rem {:?}) | ship pub {} bp {} deg {} cmp {} \
                     def {} | wm {} next_lsn {} | q pending {} acked {}",
                    budget.remaining(std::path::Path::new("")),
                    round.published,
                    round.backpressure,
                    round.degradations,
                    round.compactions,
                    round.deferred,
                    extractor.watermark(),
                    db.wal().next_lsn(),
                    pipe.queue().pending(),
                    pipe.queue().acked(),
                );
            }
            self.stats.published += round.published;
            self.stats.backpressure += round.backpressure;
            self.stats.ship_degradations += round.degradations;
            self.stats.ship_compactions += round.compactions;
            self.stats.ship_deferrals += round.deferred;
            self.drain(pipe, wh, cycle)?;
            if round.deferred == 0 {
                // Release the budget for the rest of the cycle (audit
                // repair, divergence injection); the next cycle re-arms it.
                budget.set_global(None);
                return Ok(());
            }
            if lifted {
                return Err(self.fail(cycle, "round still deferred after pressure lifted"));
            }
            // The drain acked everything shipped so far; compacting the
            // spool prefix credits those bytes back to the budget. If that
            // reclaims nothing, the budget is simply smaller than this
            // round: pressure lifts.
            let reclaimed = pipe
                .queue()
                .compact()
                .map_err(|e| self.fail(cycle, format!("compact: {e}")))?
                .bytes_reclaimed;
            if reclaimed > 0 {
                self.stats.ship_compactions += 1;
            } else {
                budget.set_global(None);
                self.stats.pressure_lifts += 1;
                lifted = true;
            }
        }
    }

    fn run(&mut self) -> Result<TortureStats, String> {
        let mut rng = self.cfg.seed;

        // Create the source table and prime the extractor's baselines on the
        // empty table — the watermark starts at 0, so the baselines must
        // describe "nothing shipped yet".
        let db = Database::open(source_opts(&self.src_dir, None))
            .map_err(|e| self.fail(0, format!("initial source open: {e}")))?;
        db.session()
            .execute(&format!(
                "CREATE TABLE {TABLE} (id INT PRIMARY KEY, grp INT, val INT, filler VARCHAR)"
            ))
            .map_err(|e| self.fail(0, format!("create table: {e}")))?;
        let mut extractor = ResilientLogExtractor::new(self.root.join("baselines"), &[TABLE])
            .map_err(|e| self.fail(0, format!("extractor: {e}")))?;
        extractor
            .prime(&db)
            .map_err(|e| self.fail(0, format!("prime: {e}")))?;
        drop(db);

        let mut wh = open_warehouse(&self.wh_dir)
            .map_err(|e| self.fail(0, format!("warehouse open: {e}")))?;

        for cycle in 0..self.cfg.cycles {
            let fault_seed = splitmix64(&mut rng);
            let wl_seed = splitmix64(&mut rng);
            let net_seed = splitmix64(&mut rng);
            let chaos = splitmix64(&mut rng);

            // 1–2: faulted workload, then clean reopen (recovery runs here).
            self.faulted_workload(fault_seed, wl_seed);
            let db = Database::open(source_opts(&self.src_dir, None))
                .map_err(|e| self.fail(cycle, format!("recovery reopen: {e}")))?;

            // 3: background chaos — archival, archive corruption, warehouse
            // crash-restart.
            if chaos.is_multiple_of(3) {
                db.checkpoint()
                    .map_err(|e| self.fail(cycle, format!("checkpoint: {e}")))?;
                self.stats.checkpoints += 1;
            }
            if chaos.is_multiple_of(5) {
                let mut crng = chaos;
                if corrupt_archived_segment(&db, &mut crng).map_err(|e| self.fail(cycle, e))? {
                    self.stats.segment_corruptions += 1;
                }
            }
            if chaos % 4 == 1 {
                // Crash the warehouse: leak its database mid-flight and
                // restart. The applied-sequence watermark must keep
                // redelivered batches exactly-once-observable.
                let _ = std::mem::ManuallyDrop::new(wh);
                wh = open_warehouse(&self.wh_dir)
                    .map_err(|e| self.fail(cycle, format!("warehouse reopen: {e}")))?;
                self.stats.warehouse_crashes += 1;
            }

            // 4: extract (degrading to snapshot diff if the archive is
            // damaged) and ship through a lossy link with bounded retry.
            let mut pipe = Pipeline::open(&self.queue_path)
                .and_then(|p| p.with_retry(RetryPolicy::quick(4)))
                .map_err(|e| self.fail(cycle, format!("pipeline open: {e}")))?
                .with_batch_size(3)
                .with_net_faults(NetFaultPlan::lossy(net_seed))
                .with_sync_workers(if self.cfg.pressure {
                    self.cfg.sync_workers.max(2)
                } else {
                    self.cfg.sync_workers
                });
            if self.cfg.pressure {
                // Pressure mode: a shrinking spool budget forces the ship
                // ladder (compact → coalesce → defer), a stage deadline arms
                // the stall watchdog, and seeded stalls give it work.
                let mut srng = chaos ^ 0x57A1_157A_57A1_157A;
                pipe = pipe
                    .with_queue_budget(Arc::clone(
                        self.queue_budget.as_ref().expect("pressure mode arms a budget"),
                    ))
                    .with_stage_deadline(Duration::from_millis(25))
                    .with_injected_stalls(StallPlan::new(splitmix64(&mut srng), 20, 60));
                self.pressured_ship(&db, &wh, &pipe, &mut extractor, cycle, chaos)?;
            } else {
                let wm_before = extractor.watermark();
                let extract = extractor
                    .extract(&db)
                    .map_err(|e| self.fail(cycle, format!("extract: {e}")))?;
                if std::env::var_os("TORTURE_DEBUG").is_some() {
                    eprintln!(
                        "cycle {cycle}: chaos%3={} %5={} %4={} | wm {wm_before} -> {} (next_lsn {}) | \
                         {} delta(s) with {:?} records | degraded {:?}",
                        chaos % 3,
                        chaos % 5,
                        chaos % 4,
                        extractor.watermark(),
                        db.wal().next_lsn(),
                        extract.deltas.len(),
                        extract
                            .deltas
                            .iter()
                            .map(|d| d.records.len())
                            .collect::<Vec<_>>(),
                        extract.degraded,
                    );
                }
                if !extract.degraded.is_empty() {
                    self.stats.degraded_extracts += 1;
                }
                for vd in extract.deltas {
                    pipe.publish(&DeltaBatch::Value(vd))
                        .map_err(|e| self.fail(cycle, format!("publish: {e}")))?;
                    self.stats.published += 1;
                }
                self.drain(&pipe, &wh, cycle)?;
            }

            // 4b (`--audit` mode): inject a seeded silent divergence, then
            // run one anti-entropy pass. The cycle's convergence check
            // below is the proof the audit actually healed it.
            if self.cfg.audit {
                let mut arng = splitmix64(&mut rng);
                self.inject_divergence(&db, &wh, &pipe, &mut extractor, &mut arng, cycle)?;
                let report = audit_and_repair(&db, &pipe, &wh, &[TABLE], &AuditConfig::default())
                    .map_err(|e| self.fail(cycle, format!("audit: {e}")))?;
                self.stats.audits += 1;
                self.stats.repair_records += report.repair_records();
                self.stats.dlq_reconciled += report.dlq_resolved();
                self.stats.syncs += report.drain_syncs;
                if !report.converged() {
                    return Err(
                        self.fail(cycle, format!("audit repair did not converge: {report:?}"))
                    );
                }
                let dlq = pipe
                    .dlq_entries()
                    .map_err(|e| self.fail(cycle, format!("dlq after audit: {e}")))?;
                if !dlq.is_empty() {
                    return Err(self.fail(
                        cycle,
                        format!("{} DLQ entr(ies) left unreconciled after audit", dlq.len()),
                    ));
                }
            }

            // 5: convergence + exactly-once-observable invariants.
            let src = table_state(&db, "source").map_err(|e| self.fail(cycle, e))?;
            let dst = table_state(wh.db(), "warehouse").map_err(|e| self.fail(cycle, e))?;
            if src != dst {
                let only_src: Vec<_> = src.keys().filter(|k| !dst.contains_key(k)).collect();
                let only_dst: Vec<_> = dst.keys().filter(|k| !src.contains_key(k)).collect();
                let differing = src
                    .iter()
                    .filter(|(k, v)| dst.get(*k).is_some_and(|w| w != *v))
                    .count();
                return Err(self.fail(
                    cycle,
                    format!(
                        "DIVERGENCE: source {} rows, warehouse {} rows; only-source keys {:?}, \
                         only-warehouse keys {:?}, {} rows differ byte-wise",
                        src.len(),
                        dst.len(),
                        only_src,
                        only_dst,
                        differing
                    ),
                ));
            }
            let acked = pipe.queue().acked();
            // Injected ack-then-drops and poison batches permanently park
            // the applied watermark below the ack frontier (their sequences
            // are acked but never marked applied); the audit repairs the
            // *data*, so in audit mode the skew check only applies while
            // neither has been injected yet.
            if acked > 0 && self.stats.acks_dropped == 0 && self.stats.dlq_reconciled == 0 {
                let watermark = wh
                    .applied_watermark()
                    .map_err(|e| self.fail(cycle, format!("watermark read: {e}")))?;
                if watermark != Some(acked - 1) {
                    return Err(self.fail(
                        cycle,
                        format!(
                            "watermark skew: queue acked through {}, warehouse applied \
                             watermark is {watermark:?}",
                            acked - 1
                        ),
                    ));
                }
            }

            drop(db); // clean close; the next cycle re-opens under faults
            self.stats.cycles += 1;
        }
        Ok(self.stats)
    }
}

/// Run `cfg.cycles` seeded crash–recover–resync cycles. `Ok` carries the
/// survival counters; `Err` carries a reproduction message with the seed.
pub fn run(cfg: &TortureConfig) -> Result<TortureStats, String> {
    let root = std::env::temp_dir().join(format!(
        "deltaforge-torture-{}-{:x}",
        std::process::id(),
        cfg.seed
    ));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).map_err(|e| format!("scratch dir: {e}"))?;
    let mut driver = Driver {
        cfg: *cfg,
        src_dir: root.join("source"),
        wh_dir: root.join("warehouse"),
        queue_path: root.join("ship.q"),
        root,
        stats: TortureStats::default(),
        next_id: 0,
        queue_budget: cfg.pressure.then(|| Arc::new(DiskBudget::unlimited())),
    };
    let result = driver.run();
    if result.is_ok() {
        let _ = std::fs::remove_dir_all(&driver.root);
    }
    result
}
