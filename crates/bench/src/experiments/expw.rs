//! **Experiment W** — the §4.1 maintenance-window measurement (in-text).
//!
//! The same source transactions are captured both ways (value delta via
//! triggers, Op-Delta via the capture wrapper) and applied to two identically
//! seeded warehouses. The paper reports, across transaction sizes 10–10,000:
//! insertion parity, delete windows ~31.8 % shorter under Op-Delta, and
//! update windows ~69.7 % shorter. The required *shape*:
//! saving(insert) ≈ 0 < saving(delete) < saving(update).
//!
//! Both appliers' final states are verified identical before a row is
//! reported — a wrong-but-fast applier would be useless.

use std::sync::Arc;
use std::time::Duration;

use delta_core::model::OpDelta;
use delta_core::opdelta::{collect_from_table, OpDeltaCapture, OpLogSink};
use delta_core::trigger_extract::TriggerExtractor;
use delta_engine::db::Database;
use delta_warehouse::apply::{OpDeltaApplier, ValueDeltaApplier, Warehouse};
use delta_warehouse::mirror::MirrorConfig;

use crate::experiments::fig2::OpKind;
use crate::report::{fmt_duration, fmt_pct, saving_pct, TableReport};
use crate::workload::{
    delete_txn_sql, filler, insert_txn_sql, op_schema, reps_for, seed_rows, time_once,
    update_txn_sql, Scale, SourceBuilder,
};

fn table_rows(scale: &Scale) -> usize {
    scale.rows(10_000)
}

fn txn_sizes(scale: &Scale) -> Vec<usize> {
    let cap = table_rows(scale) / 4;
    [10usize, 100, 1_000, 10_000]
        .into_iter()
        .filter(|n| *n <= cap)
        .collect()
}

fn seed_warehouse(b: &SourceBuilder, rows: usize) -> Warehouse {
    let db = b.db(false).expect("warehouse db");
    let mut wh = Warehouse::new(db);
    wh.add_mirror(MirrorConfig::full("parts", op_schema()))
        .expect("mirror");
    // Warehouses index the columns operations predicate on; without this the
    // replayed set-oriented statements would pay full scans the paper's
    // testbed did not.
    wh.db()
        .create_index("grp_idx", "parts", "grp", false)
        .expect("mirror index");
    seed_rows(wh.db(), "parts", 0, rows, |id| {
        format!("({id}, {id}, 0, '{}')", filler(id))
    })
    .expect("seed warehouse");
    wh
}

fn sorted_rows(db: &Arc<Database>) -> Vec<delta_storage::Row> {
    let mut rows: Vec<delta_storage::Row> = db
        .scan_table("parts")
        .expect("scan")
        .into_iter()
        .map(|(_, r)| r)
        .collect();
    rows.sort_by(|a, b| a.values()[0].total_cmp(&b.values()[0]));
    rows
}

pub fn run(scale: &Scale) -> TableReport {
    let mut report = TableReport::new(
        "W",
        "Experiment W (§4.1): warehouse maintenance window, Op-Delta vs value delta",
        "insert parity; Op-Delta shortens delete windows (~32% in the paper) and update windows most (~70%); saving(update) > saving(delete) > saving(insert) ~ 0",
        &[
            "op",
            "txn size",
            "value delta apply",
            "Op-Delta apply",
            "Op-Delta saving",
            "value stmts",
            "op stmts",
        ],
    );
    let rows = table_rows(scale);
    report.note(format!(
        "per-transaction apply times (averaged over several source txns); warehouses seeded with the same {rows}-row pre-state and an index on the predicate column; final states verified equal"
    ));
    let b = SourceBuilder::new("expw");
    let mut savings: std::collections::HashMap<(&'static str, usize), f64> = Default::default();
    for op in OpKind::all() {
        for &n in &txn_sizes(scale) {
            // --- Source side: run k transactions, capturing both ways.
            let k = reps_for(n).min((rows / (2 * n.max(1))).max(1));
            let src = b.db(false).expect("source db");
            b.seeded_op_table(&src, "parts", rows).expect("seed");
            let extractor = TriggerExtractor::new("parts");
            extractor.install(&src).expect("trigger");
            let mut cap = OpDeltaCapture::new(src.session(), OpLogSink::Table("op_log".into()))
                .expect("capture");
            for rep in 0..k {
                let sql = match op {
                    OpKind::Insert => insert_txn_sql("parts", (rows * 10 + rep * n) as i64, n),
                    OpKind::Update => update_txn_sql("parts", (rep * n) as i64, n),
                    OpKind::Delete => delete_txn_sql("parts", (rep * n) as i64, n),
                };
                cap.execute(&sql).expect("source txn");
            }
            let value_delta = extractor.drain(&src).expect("drain");
            // The trigger also captured the op-log inserts? No: triggers are
            // on `parts` only. But the op capture wrapped the same session,
            // so both saw exactly the k transactions.
            let op_deltas: Vec<OpDelta> = collect_from_table(&src, "op_log").expect("collect");
            assert_eq!(op_deltas.len(), k);

            // --- Warehouse side: identical seeds, two appliers.
            let wh_value = seed_warehouse(&b, rows);
            let (r_value, t_value) =
                time_once(|| ValueDeltaApplier::apply(&wh_value, &value_delta));
            let r_value = r_value.expect("value apply");

            let wh_op = seed_warehouse(&b, rows);
            let (r_op, t_op) = time_once(|| OpDeltaApplier::apply_all(&wh_op, &op_deltas));
            let r_op = r_op.expect("op apply");

            // Correctness gate: both warehouses match the source.
            let src_state = sorted_rows(&src);
            assert_eq!(
                sorted_rows(wh_value.db()),
                src_state,
                "value applier diverged"
            );
            assert_eq!(sorted_rows(wh_op.db()), src_state, "op applier diverged");

            let per_txn = |d: Duration| d / k as u32;
            let saving = saving_pct(t_value, t_op);
            savings.insert((op.label(), n), saving);
            report.push_row(vec![
                op.label().to_string(),
                n.to_string(),
                fmt_duration(per_txn(t_value)),
                fmt_duration(per_txn(t_op)),
                fmt_pct(saving),
                r_value.statements.to_string(),
                r_op.statements.to_string(),
            ]);
        }
    }
    let sizes = txn_sizes(scale);
    let mean = |op: &'static str| {
        sizes.iter().map(|n| savings[&(op, *n)]).sum::<f64>() / sizes.len() as f64
    };
    report.check(
        "insert maintenance is at parity (paper: same response time)",
        mean("insert").abs() < 25.0,
    );
    report.check(
        "Op-Delta shortens delete windows substantially (paper: 31.8%)",
        mean("delete") > 25.0,
    );
    report.check(
        "Op-Delta shortens update windows substantially (paper: 69.7%)",
        mean("update") > 25.0,
    );
    report.check(
        "update and delete savings dwarf insert savings",
        mean("update") > mean("insert") + 20.0 && mean("delete") > mean("insert") + 20.0,
    );
    report
}
