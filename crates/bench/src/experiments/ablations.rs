//! Ablations of the design choices DESIGN.md §6 calls out.

use std::time::Duration;

use delta_core::model::DeltaOp;
use delta_core::opdelta::{OpDeltaCapture, OpLogSink};
use delta_core::selfmaint::{SelfMaintAnalyzer, WarehouseProfile};
use delta_core::snapshot::{diff_snapshots, take_snapshot, DiffAlgorithm};
use delta_core::timestamp::TimestampExtractor;
use delta_engine::db::{Database, DbOptions, SyncMode};
use delta_engine::exec::{choose_access_path, AccessPath};
use delta_sql::parser::parse_expression;

use crate::report::{fmt_duration, fmt_pct, overhead_pct, TableReport};
use crate::workload::{filler, seed_rows, time_avg, time_once, Scale, SourceBuilder};

/// WAL durability mode vs transaction cost (affects Import, triggers, and
/// every capture mechanism uniformly).
pub fn wal_sync(scale: &Scale) -> TableReport {
    let mut report = TableReport::new(
        "A-WAL",
        "Ablation: WAL durability mode vs insert-transaction cost",
        "None <= Flush <= Fsync; the fsync gap depends on the device (write-cached VM disks may show little)",
        &["wal sync mode", "1000-row insert txn", "relative"],
    );
    let n = scale.rows(1000);
    let b = SourceBuilder::new("ablation-wal");
    let mut base: Option<Duration> = None;
    for (label, mode) in [
        ("None (buffered)", SyncMode::None),
        ("Flush (to OS)", SyncMode::Flush),
        ("Fsync (to disk)", SyncMode::Fsync),
    ] {
        let mut opts = DbOptions::new(b.path(&format!("wal-{label}")));
        opts.wal_sync = mode;
        let db = Database::open(opts).expect("db");
        db.session()
            .execute("CREATE TABLE t (id INT PRIMARY KEY, grp INT, val INT, filler VARCHAR)")
            .expect("create");
        let mut next_id = 0usize;
        let t = time_avg(3, |_| {
            seed_rows(&db, "t", next_id, n, |id| {
                format!("({id}, {id}, 0, '{}')", filler(id))
            })
            .expect("insert");
            next_id += n;
        });
        let rel = match base {
            None => {
                base = Some(t);
                "1.0x".to_string()
            }
            Some(b0) => format!("{:.1}x", t.as_secs_f64() / b0.as_secs_f64()),
        };
        report.push_row(vec![label.to_string(), fmt_duration(t), rel]);
    }
    report
}

/// Index vs scan for timestamp extraction across delta fractions — the
/// §3.1.1 optimizer remark, with the engine's threshold visible.
pub fn ts_index(scale: &Scale) -> TableReport {
    let mut report = TableReport::new(
        "A-IDX",
        "Ablation: timestamp extraction with vs without an index on last_modified",
        "index wins at small delta fractions; the optimizer falls back to a scan past the threshold, where the index stops helping",
        &["delta fraction", "no index", "with index", "access path chosen"],
    );
    let rows = scale.rows(10_000);
    let b = SourceBuilder::new("ablation-idx");
    let plain = b.db(false).expect("db");
    b.seeded_ts_table(&plain, "parts", rows).expect("seed");
    let indexed = b.db(false).expect("db");
    b.seeded_ts_table(&indexed, "parts", rows).expect("seed");
    indexed
        .create_index("ts_idx", "parts", "last_modified", false)
        .expect("index");
    report.note(format!(
        "source {rows} rows; engine index threshold {}",
        indexed.options().index_scan_threshold
    ));
    let x = TimestampExtractor::new("parts", "last_modified");
    let mut small_fraction_speedup = None;
    let mut large_fraction_path_is_scan = false;
    for pct in [1usize, 5, 10, 25, 50] {
        let n = (rows * pct / 100).max(1);
        let (wm_plain, wm_indexed) = (plain.peek_clock(), indexed.peek_clock());
        for db in [&plain, &indexed] {
            db.session()
                .execute(&format!("UPDATE parts SET grp = grp WHERE id < {n}"))
                .expect("touch");
        }
        let t_plain = {
            let (r, t) = time_once(|| x.extract(&plain, wm_plain));
            assert_eq!(r.expect("extract").len(), n);
            t
        };
        let t_indexed = {
            let (r, t) = time_once(|| x.extract(&indexed, wm_indexed));
            assert_eq!(r.expect("extract").len(), n);
            t
        };
        let meta = indexed.table("parts").expect("meta");
        let pred = parse_expression(&format!("last_modified > {wm_indexed}")).unwrap();
        let path = match choose_access_path(&indexed, &meta, Some(&pred)) {
            AccessPath::SeqScan => "seq scan".to_string(),
            AccessPath::IndexRange {
                estimated_fraction, ..
            } => {
                format!("index range (est {:.1}%)", estimated_fraction * 100.0)
            }
        };
        if pct == 1 {
            small_fraction_speedup =
                Some(t_plain.as_secs_f64() / t_indexed.as_secs_f64().max(1e-9));
        }
        if pct == 50 {
            large_fraction_path_is_scan = path.contains("seq scan");
        }
        report.push_row(vec![
            format!("{pct}%"),
            fmt_duration(t_plain),
            fmt_duration(t_indexed),
            path,
        ]);
    }
    report.check(
        "index wins decisively at a 1% delta fraction",
        small_fraction_speedup.unwrap_or(0.0) > 3.0,
    );
    report.check(
        "optimizer abandons the index past the threshold (§3.1.1)",
        large_fraction_path_is_scan,
    );
    report
}

/// Snapshot-differential algorithm choice.
pub fn snapshot_algorithms(scale: &Scale) -> TableReport {
    let mut report = TableReport::new(
        "A-SNAP",
        "Ablation: snapshot differential - sort-merge vs window",
        "window cheaper when displacement is small; tiny windows stay correct but degrade updates into delete+insert pairs",
        &["algorithm", "diff time", "updates found", "delete+insert pairs", "comparisons"],
    );
    let rows = scale.rows(10_000);
    let churn = rows / 20;
    let b = SourceBuilder::new("ablation-snap");
    let db = b.db(false).expect("db");
    b.seeded_ts_table(&db, "parts", rows).expect("seed");
    let old_path = b.path("snap-old.txt");
    take_snapshot(&db, "parts", &old_path).expect("snapshot");
    // Churn by delete + re-insert with new values: the changed rows move to
    // the end of the new snapshot, giving them maximal displacement — the
    // regime that separates the window sizes.
    db.session()
        .execute(&format!("DELETE FROM parts WHERE id < {churn}"))
        .expect("churn delete");
    crate::workload::seed_rows(&db, "parts", 0, churn, |id| {
        format!("({id}, {}, '{}', NULL)", id + 1_000_000, filler(id))
    })
    .expect("churn reinsert");
    let new_path = b.path("snap-new.txt");
    take_snapshot(&db, "parts", &new_path).expect("snapshot");
    report.note(format!(
        "{rows}-row snapshots, {churn} changed rows re-inserted at the end (maximal displacement)"
    ));
    report.note(
        "an overwhelmed window emits identical-content delete+insert pairs (net no-ops): still a correct delta, but it balloons the shipped volume",
    );

    let schema = db.table("parts").expect("meta").schema.clone();
    let mut updates_by_algo = Vec::new();
    for (label, algo) in [
        (
            "sort-merge (runs of 2k)",
            DiffAlgorithm::SortMerge { run_size: 2000 },
        ),
        ("window 1024", DiffAlgorithm::Window { size: 1024 }),
        ("window 4", DiffAlgorithm::Window { size: 4 }),
    ] {
        let (r, t) =
            time_once(|| diff_snapshots("parts", &schema, &[0], &old_path, &new_path, algo));
        let (vd, stats) = r.expect("diff");
        let updates = vd
            .records
            .iter()
            .filter(|r| r.op == DeltaOp::UpdateBefore)
            .count();
        let dels = vd
            .records
            .iter()
            .filter(|r| r.op == DeltaOp::Delete)
            .count();
        updates_by_algo.push((updates, dels));
        report.push_row(vec![
            label.to_string(),
            fmt_duration(t),
            updates.to_string(),
            dels.to_string(),
            stats.comparisons.to_string(),
        ]);
    }
    report.check(
        "sort-merge recognizes every displaced update",
        updates_by_algo[0].0 == churn,
    );
    report.check(
        "an overwhelmed window degrades updates into delete+insert pairs",
        updates_by_algo[2].0 < churn && updates_by_algo[2].1 > updates_by_algo[0].1,
    );
    report
}

/// Pure Op-Delta vs the before-image hybrid: what self-maintainability
/// failures cost at capture time.
pub fn hybrid_capture(scale: &Scale) -> TableReport {
    let mut report = TableReport::new(
        "A-HYB",
        "Ablation: pure Op-Delta vs before-image hybrid capture",
        "hybrid pays an extra pre-image SELECT and ships rows; cost grows with affected rows while pure capture stays flat",
        &["affected rows", "pure op capture", "hybrid capture", "hybrid overhead"],
    );
    let rows = scale.rows(10_000);
    let b = SourceBuilder::new("ablation-hyb");
    report.note(format!(
        "DELETE txns on a {rows}-row table; hybrid forced by predicating on an unmirrored column"
    ));
    for &n in &[10usize, 100, 1000] {
        if n * 4 > rows {
            continue;
        }
        // Pure: predicate on a mirrored column (grp).
        let t_pure = {
            let db = b.db(false).expect("db");
            b.seeded_op_table(&db, "parts", rows).expect("seed");
            let analyzer = SelfMaintAnalyzer::new(
                WarehouseProfile::new().mirror_columns("parts", &["id", "grp", "val", "filler"]),
            );
            let mut cap = OpDeltaCapture::new(db.session(), OpLogSink::Table("op_log".into()))
                .expect("cap")
                .with_analyzer(analyzer);
            time_avg(2, |rep| {
                let a = rep * n;
                cap.execute(&format!(
                    "DELETE FROM parts WHERE grp >= {a} AND grp < {}",
                    a + n
                ))
                .expect("delete");
            })
        };
        // Hybrid: predicate on a column the warehouse does not mirror.
        let t_hybrid = {
            let db = b.db(false).expect("db");
            b.seeded_op_table(&db, "parts", rows).expect("seed");
            let analyzer = SelfMaintAnalyzer::new(
                WarehouseProfile::new().mirror_columns("parts", &["id", "val", "filler"]),
            );
            let mut cap = OpDeltaCapture::new(db.session(), OpLogSink::Table("op_log".into()))
                .expect("cap")
                .with_analyzer(analyzer);
            time_avg(2, |rep| {
                let a = (2 + rep) * n;
                cap.execute(&format!(
                    "DELETE FROM parts WHERE grp >= {a} AND grp < {}",
                    a + n
                ))
                .expect("delete");
            })
        };
        report.push_row(vec![
            n.to_string(),
            fmt_duration(t_pure),
            fmt_duration(t_hybrid),
            fmt_pct(overhead_pct(t_pure, t_hybrid)),
        ]);
    }
    report
}
