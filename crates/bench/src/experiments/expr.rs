//! **Experiment R** — the §3.1.3 remote-write penalty.
//!
//! The paper ran triggers whose delta writes targeted (a) the same database,
//! (b) a different database on the same machine, and (c) a remote database
//! over a 10 Mb/s switched LAN, and found the external targets "ten to
//! hundred times more expensive", with even the same-machine case an order
//! of magnitude worse. We measure case (a) for real and add the modelled
//! connection/round-trip/bandwidth costs of (b) and (c) in deterministic
//! **virtual time** (see DESIGN.md §2 for the substitution); a batched
//! shipping row shows why off-critical-path transports avoid the penalty.

use delta_core::trigger_extract::TriggerExtractor;
use delta_transport::netsim::{LinkProfile, SimulatedConnection, VirtualClock};

use crate::experiments::fig2::{measure_txn, OpKind};
use crate::report::{fmt_duration, TableReport};
use crate::workload::{Scale, SourceBuilder};

pub fn run(scale: &Scale) -> TableReport {
    let mut report = TableReport::new(
        "R",
        "Experiment R (§3.1.3): trigger delta-capture target placement",
        "same-machine other-DB ~ one order of magnitude over same-DB; remote LAN 10-100x; batched shipping avoids the per-row penalty",
        &["capture target", "txn response time", "vs local"],
    );
    let rows = scale.rows(10_000);
    let n = 100usize; // updated rows per transaction
    report.note(format!(
        "update txn of {n} rows on a {rows}-row table; triggers write 2 images per updated row (~100 bytes each)"
    ));
    report.note(
        "same-DB time is measured; other-DB/LAN add modelled connection + per-row round-trip + bandwidth costs in virtual time (deterministic)",
    );

    // Real local measurement: trigger writing into the same database.
    let b = SourceBuilder::new("expr");
    let db = b.db(false).expect("db");
    b.seeded_op_table(&db, "parts", rows).expect("seed");
    TriggerExtractor::new("parts")
        .install(&db)
        .expect("trigger");
    let mut s = db.session();
    let t_local = measure_txn(
        &db,
        |sql| {
            s.execute(sql).expect("stmt");
        },
        OpKind::Update,
        n,
        rows,
    );

    let images = 2 * n as u64; // UB + UA per updated row
    let image_bytes = 100u64;
    let mut rows_out = vec![("same database (measured)".to_string(), t_local)];
    for (label, link) in [
        (
            "other DB, same machine (modelled IPC)",
            LinkProfile::same_machine_ipc(),
        ),
        (
            "remote DB, 10 Mb/s LAN (modelled)",
            LinkProfile::lan_10mbps(),
        ),
    ] {
        let clock = VirtualClock::new();
        let mut conn = SimulatedConnection::new(link, clock);
        // The trigger writes each image as its own remote statement, inside
        // the user transaction: per-row round trips on the critical path.
        let remote = conn.send_per_row(images, image_bytes);
        rows_out.push((label.to_string(), t_local + remote));
    }
    // Contrast: shipping the same images as one batch over an established
    // connection (how off-critical-path transports behave per transaction).
    {
        let clock = VirtualClock::new();
        let mut conn = SimulatedConnection::new(LinkProfile::lan_10mbps(), clock);
        conn.ensure_connected(); // long-lived connection, amortized away
        let batched = conn.send_batched(images, image_bytes);
        rows_out.push((
            "10 Mb/s LAN, batched off critical path (modelled)".to_string(),
            t_local + batched,
        ));
    }
    let mut ratios = Vec::new();
    for (label, t) in rows_out {
        let ratio = t.as_secs_f64() / t_local.as_secs_f64();
        ratios.push(ratio);
        report.push_row(vec![label, fmt_duration(t), format!("{ratio:.1}x")]);
    }
    report.check(
        "same-machine other-DB is ~an order of magnitude over same-DB",
        ratios[1] >= 5.0,
    );
    report.check(
        "remote LAN lands in the paper's 10-100x band",
        (10.0..=200.0).contains(&ratios[2]),
    );
    report.check(
        "batched off-critical-path shipping avoids the per-row penalty",
        ratios[3] < ratios[2] / 4.0,
    );
    report
}
