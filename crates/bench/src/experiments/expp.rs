//! **Experiment P** — parallel pipelined sync: the staged decode/apply
//! scheduler (warehouse `sched` module) against the serial drain.
//!
//! One published delta stream — multi-record value-delta batches spread
//! over eight mirrored tables with per-table aggregate views and one SPJ
//! join view, plus periodic Op-Delta barriers — is drained into a fresh
//! warehouse at 1, 2, and 8 apply workers. Each cell reports end-to-end
//! throughput plus the scheduler's per-stage split (decode / apply / ack
//! nanos), worker occupancy (busy worker time over apply wall-clock x
//! workers), and the statement / rewrite cache hit rates. The acceptance
//! property rides along: every worker count must leave the warehouse in
//! exactly the state the serial drain produces.

use std::sync::Arc;
use std::time::Instant;

use delta_core::model::{DeltaBatch, DeltaOp, OpDelta, OpLogRecord, ValueDelta, ValueDeltaRecord};
use delta_engine::db::{Database, DbOptions, SyncMode};
use delta_sql::ast::AggFunc;
use delta_sql::parser::parse_statement;
use delta_storage::{Column, DataType, Row, Schema, Value};
use delta_warehouse::{AggSpec, AggViewDef, JoinCond, MirrorConfig, Pipeline, SpjView, Warehouse};

use crate::report::{fmt_duration, TableReport};
use crate::workload::{Scale, SourceBuilder};

const WORKERS: [usize; 3] = [1, 2, 8];
const N_TABLES: usize = 8;

fn schema() -> Schema {
    Schema::new(vec![
        Column::new("id", DataType::Int).primary_key(),
        Column::new("g", DataType::Int),
        Column::new("v", DataType::Int),
    ])
    .unwrap()
}

fn table_name(i: usize) -> String {
    format!("t{i}")
}

/// Eight mirrored tables, a COUNT/SUM/MIN/MAX aggregate view per table, and
/// one SPJ view joining t0 ⋈ t1 so two tables share a concurrency class.
fn warehouse(b: &SourceBuilder, label: &str) -> Warehouse {
    let dir = b.path(label);
    let _ = std::fs::remove_dir_all(&dir);
    let mut opts = DbOptions::new(dir);
    opts.wal_sync = SyncMode::Flush;
    let db = Database::open(opts).expect("warehouse db");
    let mut wh = Warehouse::new(db);
    for i in 0..N_TABLES {
        wh.add_mirror(MirrorConfig::full(table_name(i), schema()))
            .expect("mirror");
        wh.add_agg_view(AggViewDef {
            name: format!("t{i}_by_g"),
            table: table_name(i),
            group_by: vec!["g".into()],
            aggregates: vec![
                AggSpec::count_star(),
                AggSpec::of(AggFunc::Sum, "v"),
                AggSpec::of(AggFunc::Min, "v"),
                AggSpec::of(AggFunc::Max, "v"),
            ],
            selection: None,
        })
        .expect("agg view");
    }
    wh.add_view(SpjView {
        name: "t0_t1".into(),
        tables: vec!["t0".into(), "t1".into()],
        joins: vec![JoinCond::new("t0", "id", "t1", "id")],
        selection: None,
        projection: vec![
            ("t0".into(), "id".into()),
            ("t1".into(), "id".into()),
            ("t0".into(), "v".into()),
            ("t1".into(), "v".into()),
        ],
    })
    .expect("spj view");
    wh
}

fn record(op: DeltaOp, id: i64, g: i64, v: i64) -> ValueDeltaRecord {
    ValueDeltaRecord {
        op,
        txn: 0,
        row: Row::new(vec![Value::Int(id), Value::Int(g), Value::Int(v)]),
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Publish the deterministic stream: `rounds` sweeps over the tables, each
/// contributing a batch of inserts/update-pairs, with an Op-Delta barrier
/// every eighth round. Returns the batch count.
fn publish_stream(pipe: &Pipeline, rounds: usize) -> u64 {
    let mut rng = 0x9Eu64;
    let mut live: Vec<Vec<(i64, i64, i64)>> = vec![Vec::new(); N_TABLES];
    let mut next_id = [0i64; N_TABLES];
    let mut published = 0;
    for round in 0..rounds {
        for ti in 0..N_TABLES {
            let mut vd = ValueDelta::new(table_name(ti), schema());
            for _ in 0..4 {
                if splitmix(&mut rng) % 10 < 7 || live[ti].is_empty() {
                    let id = next_id[ti];
                    next_id[ti] += 1;
                    let g = (splitmix(&mut rng) % 16) as i64;
                    let v = (splitmix(&mut rng) % 1000) as i64;
                    live[ti].push((id, g, v));
                    vd.records.push(record(DeltaOp::Insert, id, g, v));
                } else {
                    let k = (splitmix(&mut rng) % live[ti].len() as u64) as usize;
                    let (id, g, old_v) = live[ti][k];
                    let v = (splitmix(&mut rng) % 1000) as i64;
                    live[ti][k] = (id, g, v);
                    vd.records.push(record(DeltaOp::UpdateBefore, id, g, old_v));
                    vd.records.push(record(DeltaOp::UpdateAfter, id, g, v));
                }
            }
            pipe.publish(&DeltaBatch::Value(vd)).expect("publish");
            published += 1;
        }
        if round % 8 == 7 {
            // The barrier SQL cycles through four texts so repeated
            // barriers exercise the statement and rewrite caches.
            let g = (round / 8) % 4;
            pipe.publish(&DeltaBatch::Op(OpDelta {
                txn: round as u64,
                ops: vec![OpLogRecord {
                    seq: round as u64,
                    txn: round as u64,
                    statement: parse_statement(&format!("UPDATE t3 SET v = {g} WHERE g = {g}"))
                        .expect("op sql"),
                    before_image: None,
                }],
            }))
            .expect("publish op");
            published += 1;
        }
    }
    published
}

/// Canonical logical dump of every warehouse table (rows sorted, record
/// ids ignored) for the equivalence check.
fn dump(wh: &Warehouse) -> String {
    let db: &Arc<Database> = wh.db();
    let mut tables = db.table_names();
    tables.sort();
    let mut out = String::new();
    for t in &tables {
        let mut rows: Vec<String> = db
            .scan_table(t)
            .expect("scan")
            .into_iter()
            .map(|(_, row)| format!("{:?}", row.values()))
            .collect();
        rows.sort();
        out.push_str(t);
        out.push('\n');
        for r in rows {
            out.push_str(&r);
            out.push('\n');
        }
    }
    out
}

struct Cell {
    batches_per_sec: f64,
    dump: String,
}

/// Experiment P: staged parallel sync throughput and equivalence.
pub fn run(scale: &Scale) -> TableReport {
    let mut report = TableReport::new(
        "P",
        "Experiment P: parallel pipelined sync (staged decode/apply scheduler)",
        "8 apply workers drain the same stream >= 2x faster than 1 (asserted only on >= 4 cores; non-regression recorded otherwise) and every worker count leaves the warehouse byte-identical to the serial drain",
        &[
            "workers",
            "throughput",
            "decode",
            "apply",
            "ack",
            "occupancy",
            "stmt cache",
            "rewrite cache",
            "time",
        ],
    );
    let b = SourceBuilder::new("expp");
    let rounds = scale.rows(160);
    report.note(format!(
        "{rounds} rounds over {N_TABLES} tables (4-record value batches, Op-Delta barrier every 8th round); occupancy = busy worker nanos / (apply wall x workers)"
    ));

    let mut cells: Vec<(usize, Cell)> = Vec::new();
    for workers in WORKERS {
        let wh = warehouse(&b, &format!("wh-{workers}"));
        let qp = b.path(&format!("queue-{workers}.q"));
        let _ = std::fs::remove_file(&qp);
        let _ = std::fs::remove_file(delta_transport::PersistentQueue::ack_file(&qp));
        let pipe = Pipeline::open(&qp)
            .expect("pipeline")
            .with_batch_size(16)
            .with_sync_workers(workers);
        let total = publish_stream(&pipe, rounds);
        let started = Instant::now();
        let sync = pipe.sync(&wh).expect("sync");
        let elapsed = started.elapsed();
        assert_eq!(sync.batches, total, "every published batch applied");
        let stmt = pipe.stmt_cache_stats();
        let rewrite = pipe.rewrite_cache_stats();
        let apply_wall = sync.apply_nanos.max(1) as f64;
        let occupancy = sync.worker_busy_nanos as f64 / (apply_wall * workers as f64);
        let hit_rate = |hits: u64, misses: u64| -> String {
            let total = hits + misses;
            if total == 0 {
                "-".into()
            } else {
                format!("{:.2} ({hits}/{total})", hits as f64 / total as f64)
            }
        };
        report.push_row(vec![
            workers.to_string(),
            format!(
                "{:.0} batches/s",
                total as f64 / elapsed.as_secs_f64().max(1e-9)
            ),
            format!("{:.1} ms", sync.decode_nanos as f64 / 1e6),
            format!("{:.1} ms", sync.apply_nanos as f64 / 1e6),
            format!("{:.1} ms", sync.ack_nanos as f64 / 1e6),
            format!("{occupancy:.2}"),
            hit_rate(stmt.hits, stmt.misses),
            hit_rate(rewrite.hits, rewrite.misses),
            fmt_duration(elapsed),
        ]);
        cells.push((
            workers,
            Cell {
                batches_per_sec: total as f64 / elapsed.as_secs_f64().max(1e-9),
                dump: dump(&wh),
            },
        ));
    }

    // --- Checks -----------------------------------------------------------
    let serial = &cells[0].1;
    report.check(
        "every worker count converges to the serial drain's warehouse state",
        cells.iter().all(|(_, c)| c.dump == serial.dump),
    );
    // Like experiment B's scan gate: aggregate throughput of a lock-bound
    // apply path cannot scale on a single CPU, so the 2x claim is only
    // assertable where groups can physically commit in parallel.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let ratio = cells[2].1.batches_per_sec / serial.batches_per_sec.max(1e-9);
    report.note(format!(
        "host has {cores} core(s); 8-worker / 1-worker sync throughput = {ratio:.2}x"
    ));
    if cores >= 4 {
        report.check(
            "8 workers drain the stream >= 2x faster than the serial loop",
            ratio >= 2.0,
        );
    } else {
        report.check(
            "parallel scheduler does not regress the serial loop (>= 2x waived: single-CPU host cannot scale the apply stage)",
            ratio >= 0.7,
        );
    }
    report
}
