//! **Experiment PR** — throughput vs. disk budget under the ship
//! degradation ladder (DESIGN.md §15).
//!
//! A steady-state pipeline ships the same seeded workload (insert + update
//! transactions per cycle) through spools capped at shrinking disk budgets.
//! The fixed budget is a *pool*: draining a cycle and compacting the spool
//! prefix credits the bytes back, so a budget a little larger than one
//! round sustains indefinitely via compaction alone. Tighter budgets force
//! the ladder's next rungs — coalesced snapshot-diff rounds, then deferral
//! with a recorded pressure lift. The strict gate: **every** budget level,
//! including the one that can never fit a round, ends byte-equal with the
//! source — pressure degrades throughput and delta form, never data.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use delta_core::logextract::ResilientLogExtractor;
use delta_engine::db::Database;
use delta_storage::{DiskBudget, Value};
use delta_warehouse::{MirrorConfig, Pipeline, Warehouse};

use crate::report::{fmt_duration, TableReport};
use crate::workload::{insert_txn_sql, op_schema, update_txn_sql, Scale, SourceBuilder};

const TABLE: &str = "parts";
const CYCLES: usize = 6;

/// Sorted row image of a table, for byte-equality comparison.
fn table_state(db: &Database, label: &str) -> Result<BTreeMap<i64, Vec<Value>>, String> {
    let mut out = BTreeMap::new();
    for (_, row) in db
        .scan_table(TABLE)
        .map_err(|e| format!("{label} scan: {e}"))?
    {
        let vals = row.values().to_vec();
        let id = match vals.first() {
            Some(Value::Int(id)) => *id,
            other => return Err(format!("{label}: non-int key {other:?}")),
        };
        out.insert(id, vals);
    }
    Ok(out)
}

struct Cell {
    label: String,
    rounds: u64,
    published: u64,
    backpressure: u64,
    compactions: u64,
    degradations: u64,
    deferrals: u64,
    lifts: u64,
    changed_rows: u64,
    elapsed: Duration,
    converged: bool,
}

/// Run the full workload against one budget level (`None` = unlimited).
fn run_level(b: &SourceBuilder, scale: &Scale, idx: usize, cap: Option<u64>) -> Cell {
    let label = match cap {
        None => "unlimited".to_string(),
        Some(n) if n >= 1024 => format!("{} KiB", n / 1024),
        Some(n) => format!("{n} B"),
    };
    let src = b.db(true).expect("source db");
    src.session()
        .execute(&format!(
            "CREATE TABLE {TABLE} (id INT PRIMARY KEY, grp INT, val INT, filler VARCHAR)"
        ))
        .expect("create");
    let mut x =
        ResilientLogExtractor::new(b.path(&format!("baselines-{idx}")), &[TABLE]).expect("extract");
    x.prime(&src).expect("prime");

    let wh_db = b.db(false).expect("warehouse db");
    let mut wh = Warehouse::new(wh_db);
    wh.add_mirror(MirrorConfig::full(TABLE, op_schema()))
        .expect("mirror");

    let budget = Arc::new(match cap {
        Some(n) => DiskBudget::bytes(n),
        None => DiskBudget::unlimited(),
    });
    let pipe = Pipeline::open(b.path(&format!("queue-{idx}.q")))
        .expect("pipeline")
        .with_queue_budget(Arc::clone(&budget));

    let batch = scale.rows(150);
    let mut cell = Cell {
        label,
        rounds: 0,
        published: 0,
        backpressure: 0,
        compactions: 0,
        degradations: 0,
        deferrals: 0,
        lifts: 0,
        changed_rows: 0,
        elapsed: Duration::ZERO,
        converged: false,
    };
    for cycle in 0..CYCLES {
        // One insert txn of fresh rows + one update txn over the previous
        // cycle's rows: the op stream carries ~3 records per changed row
        // pair, the coalesced form exactly one.
        let first = (cycle * batch) as i64;
        let mut s = src.session();
        s.execute(&insert_txn_sql(TABLE, first, batch)).expect("insert");
        cell.changed_rows += batch as u64;
        if cycle > 0 {
            s.execute(&update_txn_sql(TABLE, first - batch as i64, batch))
                .expect("update");
            cell.changed_rows += batch as u64;
        }
        drop(s);

        let started = Instant::now();
        let mut lifted = false;
        loop {
            let round = pipe.ship(&src, &mut x).expect("ship");
            cell.rounds += 1;
            cell.published += round.published;
            cell.backpressure += round.backpressure;
            cell.compactions += round.compactions;
            cell.degradations += round.degradations;
            cell.deferrals += round.deferred;
            while pipe.queue().pending() > 0 {
                pipe.sync(&wh).expect("sync");
            }
            if round.deferred == 0 {
                break;
            }
            assert!(!lifted, "round deferred even after the pressure lift");
            // The drain acked everything; compaction credits the spool
            // prefix back to the pool. If nothing comes back, the budget
            // cannot fit this round in any form: pressure lifts.
            let reclaimed = pipe.queue().compact().expect("compact").bytes_reclaimed;
            if reclaimed > 0 {
                cell.compactions += 1;
            } else {
                budget.set_global(None);
                cell.lifts += 1;
                lifted = true;
            }
        }
        cell.elapsed += started.elapsed();
        if lifted {
            // Re-arm the pool for the next cycle.
            budget.set_global(Some(cap.expect("only capped budgets lift")));
        }
    }
    cell.converged = table_state(&src, "source").expect("src state")
        == table_state(wh.db(), "warehouse").expect("wh state");
    cell
}

/// Experiment PR: throughput vs. disk budget under graceful degradation.
pub fn run(scale: &Scale) -> TableReport {
    let mut report = TableReport::new(
        "PR",
        "Experiment PR: shipping throughput vs. transport disk budget",
        "every budget level converges byte-equal; tight budgets degrade (compact, coalesce, defer) instead of erroring; the unlimited level sees zero backpressure",
        &[
            "spool budget",
            "rounds",
            "published",
            "backpressure",
            "compactions",
            "coalesced",
            "deferrals",
            "lifts",
            "changed rows",
            "rows/s",
            "time",
        ],
    );
    let b = SourceBuilder::new("exprp");
    report.note(format!(
        "{CYCLES} cycles of insert+update transactions per level; the budget is a fixed pool \
         that drained-and-compacted spool bytes are credited back into, so the ladder is \
         compact -> coalesce -> defer(+lift) as the pool shrinks"
    ));

    let levels: [Option<u64>; 5] = [
        None,
        Some(256 * 1024),
        Some(48 * 1024),
        Some(12 * 1024),
        Some(1024),
    ];
    let cells: Vec<Cell> = levels
        .iter()
        .enumerate()
        .map(|(i, cap)| run_level(&b, scale, i, *cap))
        .collect();

    for c in &cells {
        let rate = c.changed_rows as f64 / c.elapsed.as_secs_f64().max(1e-9);
        report.push_row(vec![
            c.label.clone(),
            c.rounds.to_string(),
            c.published.to_string(),
            c.backpressure.to_string(),
            c.compactions.to_string(),
            c.degradations.to_string(),
            c.deferrals.to_string(),
            c.lifts.to_string(),
            c.changed_rows.to_string(),
            format!("{rate:.0}"),
            fmt_duration(c.elapsed),
        ]);
    }

    report.check(
        "every budget level converges byte-equal",
        cells.iter().all(|c| c.converged),
    );
    report.check(
        "unlimited budget never sees backpressure",
        cells[0].backpressure == 0 && cells[0].deferrals == 0,
    );
    report.check(
        "pressure engages the ladder somewhere (backpressure + compaction)",
        cells.iter().any(|c| c.backpressure > 0) && cells.iter().any(|c| c.compactions > 0),
    );
    report.check(
        "a tight budget degrades to the coalesced form",
        cells.iter().any(|c| c.degradations > 0),
    );
    report.check(
        "the tightest budget defers and records the pressure lift",
        cells.last().is_some_and(|c| c.deferrals > 0 && c.lifts > 0),
    );
    report.check(
        "degradation ships fewer batches, not fewer rows",
        cells
            .iter()
            .all(|c| c.changed_rows == cells[0].changed_rows),
    );
    report
}
