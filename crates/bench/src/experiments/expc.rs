//! **Experiment C** — warehouse availability during maintenance.
//!
//! The paper's qualitative claim (§4.1/§5): value-delta batches require the
//! warehouse to be unavailable for the whole integration, while Op-Delta —
//! having preserved source transaction boundaries — interleaves with OLAP
//! queries. We run an OLAP reader pool against the warehouse while each
//! applier integrates the *same* source change set, and report what the
//! readers experienced.

use delta_core::opdelta::{collect_from_table, OpDeltaCapture, OpLogSink};
use delta_core::trigger_extract::TriggerExtractor;
use delta_engine::db::{Database, DbOptions, SyncMode};
use delta_warehouse::apply::{OpDeltaApplier, ValueDeltaApplier, Warehouse};
use delta_warehouse::mirror::MirrorConfig;
use delta_warehouse::olap::OlapDriver;

use crate::report::{fmt_duration, TableReport};
use crate::workload::{filler, op_schema, seed_rows, update_txn_sql, Scale, SourceBuilder};

fn warehouse_with_short_locks(b: &SourceBuilder, name: &str, rows: usize) -> Warehouse {
    let mut opts = DbOptions::new(b.path(name));
    opts.wal_sync = SyncMode::Flush;
    opts.lock_timeout = std::time::Duration::from_millis(75);
    let db = Database::open(opts).expect("warehouse db");
    let mut wh = Warehouse::new(db);
    wh.add_mirror(MirrorConfig::full("parts", op_schema()))
        .expect("mirror");
    seed_rows(wh.db(), "parts", 0, rows, |id| {
        format!("({id}, {id}, 0, '{}')", filler(id))
    })
    .expect("seed");
    wh
}

pub fn run(scale: &Scale) -> TableReport {
    let mut report = TableReport::new(
        "C",
        "Experiment C: OLAP query experience during warehouse maintenance",
        "value-delta batch starves readers (outage: timeouts, huge max latency); Op-Delta interleaves (queries keep completing)",
        &[
            "strategy",
            "maintenance time",
            "queries completed",
            "lock timeouts",
            "mean query latency",
            "max query latency",
        ],
    );
    let rows = scale.rows(5_000);
    let txns = 30usize;
    let per_txn = scale.rows(200);
    report.note(format!(
        "warehouse: {rows}-row mirror, 2 OLAP reader threads (full scans, 75 ms lock budget); workload: {txns} source update txns x {per_txn} rows, shipped as one value-delta batch vs {txns} Op-Deltas"
    ));

    // Source: capture the same workload both ways.
    let b = SourceBuilder::new("expc");
    let src = b.db(false).expect("source");
    b.seeded_op_table(&src, "parts", rows).expect("seed");
    let extractor = TriggerExtractor::new("parts");
    extractor.install(&src).expect("trigger");
    let mut cap =
        OpDeltaCapture::new(src.session(), OpLogSink::Table("op_log".into())).expect("capture");
    for rep in 0..txns {
        cap.execute(&update_txn_sql("parts", (rep * per_txn) as i64, per_txn))
            .expect("txn");
    }
    let value_delta = extractor.drain(&src).expect("drain");
    let op_deltas = collect_from_table(&src, "op_log").expect("collect");

    // Value-delta batch under OLAP load.
    let wh = warehouse_with_short_locks(&b, "wh-value", rows);
    let driver = OlapDriver::new(wh.db().clone(), &["parts"], 2);
    let (result, stats) = driver
        .run_during(|| crate::workload::time_once(|| ValueDeltaApplier::apply(&wh, &value_delta)));
    let (apply_result, t_value) = result;
    apply_result.expect("value apply");
    let value_stats = stats;
    report.push_row(vec![
        "value delta (batch)".into(),
        fmt_duration(t_value),
        value_stats.completed.to_string(),
        value_stats.timeouts.to_string(),
        fmt_duration(value_stats.mean_latency()),
        fmt_duration(value_stats.max_latency),
    ]);

    // Op-Delta stream under OLAP load.
    let wh = warehouse_with_short_locks(&b, "wh-op", rows);
    let driver = OlapDriver::new(wh.db().clone(), &["parts"], 2);
    let (result, stats) = driver
        .run_during(|| crate::workload::time_once(|| OpDeltaApplier::apply_all(&wh, &op_deltas)));
    let (apply_result, t_op) = result;
    apply_result.expect("op apply");
    let op_stats = stats;
    report.push_row(vec![
        "Op-Delta (per source txn)".into(),
        fmt_duration(t_op),
        op_stats.completed.to_string(),
        op_stats.timeouts.to_string(),
        fmt_duration(op_stats.mean_latency()),
        fmt_duration(op_stats.max_latency),
    ]);

    report.check(
        "readers complete far more queries under Op-Delta maintenance",
        op_stats.completed > value_stats.completed * 2,
    );
    report.check(
        "Op-Delta maintenance never starves a reader past the lock budget",
        op_stats.timeouts == 0,
    );
    report.check(
        "per-query throughput: value batch starves readers during the outage",
        (value_stats.completed as f64 / t_value.as_secs_f64())
            < (op_stats.completed as f64 / t_op.as_secs_f64()),
    );
    report
}
