//! **Table 4** — transaction response time with DB-table vs file Op-Delta
//! log, for insert/delete/update at transaction sizes 10–10,000.
//!
//! The paper's numbers show the file log clearly cheaper for inserts
//! (~25–30 % lower response time — the op volume is large and skipping
//! transactional storage pays) and nearly identical for delete/update (the
//! op is tiny either way). Response time grows ~linearly with transaction
//! size for all cells.

use delta_core::opdelta::{OpDeltaCapture, OpLogSink};

use crate::experiments::fig2::{measure_txn, table_rows, OpKind};
use crate::report::{fmt_duration, TableReport};
use crate::workload::{Scale, SourceBuilder};

/// The paper's transaction sizes, capped to the scaled table.
pub fn txn_sizes(scale: &Scale) -> Vec<usize> {
    let cap = table_rows(scale) / 2;
    [10usize, 100, 1_000, 10_000]
        .into_iter()
        .filter(|n| *n <= cap)
        .collect()
}

pub fn run(scale: &Scale) -> TableReport {
    let mut report = TableReport::new(
        "T4",
        "Table 4: response time - Op-Delta DB log vs file log",
        "file log beats DB log clearly for inserts, negligibly for delete/update; time ~linear in txn size",
        &[
            "txn size",
            "Insert (DBLog)",
            "Insert (FileLog)",
            "Delete (DBLog)",
            "Delete (FileLog)",
            "Update (DBLog)",
            "Update (FileLog)",
        ],
    );
    let rows = table_rows(scale);
    report.note(format!(
        "source table {rows} rows; times are per-transaction response times"
    ));
    let b = SourceBuilder::new("table4");
    let mut cells: std::collections::HashMap<(usize, &str, bool), std::time::Duration> =
        Default::default();
    for op in OpKind::all() {
        for &n in &txn_sizes(scale) {
            for file_log in [false, true] {
                let db = b.db(false).expect("db");
                b.seeded_op_table(&db, "parts", rows).expect("seed");
                let sink = if file_log {
                    OpLogSink::File(b.path(&format!("t4-{}-{n}.oplog", op.label())))
                } else {
                    OpLogSink::Table("op_log".into())
                };
                let mut cap = OpDeltaCapture::new(db.session(), sink).expect("capture");
                let t = measure_txn(
                    &db,
                    |sql| {
                        cap.execute(sql).expect("stmt");
                    },
                    op,
                    n,
                    rows,
                );
                cells.insert((n, op.label(), file_log), t);
            }
        }
    }
    for &n in &txn_sizes(scale) {
        report.push_row(vec![
            n.to_string(),
            fmt_duration(cells[&(n, "insert", false)]),
            fmt_duration(cells[&(n, "insert", true)]),
            fmt_duration(cells[&(n, "delete", false)]),
            fmt_duration(cells[&(n, "delete", true)]),
            fmt_duration(cells[&(n, "update", false)]),
            fmt_duration(cells[&(n, "update", true)]),
        ]);
    }
    let n_max = *txn_sizes(scale).last().expect("non-empty");
    report.check(
        "file log beats DB log for the largest insert txn (paper: ~30%)",
        cells[&(n_max, "insert", true)] < cells[&(n_max, "insert", false)],
    );
    let near = |a: std::time::Duration, bt: std::time::Duration| {
        (a.as_secs_f64() / bt.as_secs_f64() - 1.0).abs() < 0.35
    };
    report.check(
        "delete logs are nearly identical at the largest txn",
        near(
            cells[&(n_max, "delete", true)],
            cells[&(n_max, "delete", false)],
        ),
    );
    report.check(
        "update logs are nearly identical at the largest txn",
        near(
            cells[&(n_max, "update", true)],
            cells[&(n_max, "update", false)],
        ),
    );
    let sizes = txn_sizes(scale);
    if sizes.len() >= 2 {
        let (a, bt) = (sizes[0], n_max);
        report.check(
            "insert response time grows ~linearly with txn size",
            cells[&(bt, "insert", false)].as_secs_f64()
                > cells[&(a, "insert", false)].as_secs_f64() * (bt / a) as f64 * 0.2,
        );
    }
    report
}
