//! **Experiment G** — group-commit WAL and batched delta apply (this
//! repo's hot-path engineering, not a paper artifact).
//!
//! Two measurements:
//!
//! * [`group_commit`] sweeps committer threads {1, 2, 4, 8} × [`SyncMode`]
//!   with the WAL's group commit on and off. Each thread runs single-row
//!   insert transactions against its own table, so the only shared
//!   resource is the log. The interesting cell is 8 threads under
//!   `Fsync`: the leader/follower protocol amortizes one `sync_data` over
//!   the whole group, so fsyncs/txn collapses below 1 and throughput
//!   scales instead of serializing on the disk flush.
//! * [`sync_batched`] measures the warehouse side: `Pipeline::sync`
//!   draining the same queue contents with a dequeue run of 1 (the
//!   unbatched protocol) vs the default 64. Batching folds consecutive
//!   same-table value deltas into one maintenance outage and lets the
//!   parse/rewrite caches absorb repeated Op-Delta SQL.

use std::sync::Arc;
use std::time::Duration;

use delta_core::model::{DeltaBatch, DeltaOp, OpDelta, OpLogRecord, ValueDelta, ValueDeltaRecord};
use delta_engine::db::{Database, DbOptions, SyncMode};
use delta_sql::parser::parse_statement;
use delta_storage::{Column, DataType, Row, Schema, Value};
use delta_warehouse::mirror::MirrorConfig;
use delta_warehouse::pipeline::{Pipeline, DEFAULT_SYNC_BATCH};
use delta_warehouse::Warehouse;

use crate::report::{fmt_duration, TableReport};
use crate::workload::{filler, time_once, Scale, SourceBuilder};

const THREADS: [usize; 4] = [1, 2, 4, 8];
const MODES: [(SyncMode, &str); 3] = [
    (SyncMode::None, "none"),
    (SyncMode::Flush, "flush"),
    (SyncMode::Fsync, "fsync"),
];

fn txns_per_thread(scale: &Scale) -> usize {
    scale.rows(150)
}

fn open_db(b: &SourceBuilder, name: &str, mode: SyncMode, grouped: bool) -> Arc<Database> {
    let mut opts = DbOptions::new(b.path(name));
    opts.wal_sync = mode;
    opts.wal_group_commit = grouped;
    opts.lock_timeout = Duration::from_secs(30);
    Database::open(opts).expect("bench db")
}

struct RunResult {
    tps: f64,
    fsyncs_per_txn: f64,
    mean_group: f64,
    max_group: u64,
}

/// Run `threads` committers × `txns` single-row insert transactions each,
/// one table per thread, and report WAL-side rates.
fn committer_run(db: &Arc<Database>, threads: usize, txns: usize) -> RunResult {
    for t in 0..threads {
        let mut s = db.session();
        s.execute(&format!(
            "CREATE TABLE t{t} (id INT PRIMARY KEY, grp INT, val INT, filler VARCHAR)"
        ))
        .expect("create");
    }
    let before = db.wal().stats();
    let (_, elapsed) = time_once(|| {
        std::thread::scope(|scope| {
            for t in 0..threads {
                let db = Arc::clone(db);
                scope.spawn(move || {
                    let mut s = db.session();
                    for rep in 0..txns {
                        s.execute(&format!(
                            "INSERT INTO t{t} VALUES ({rep}, {rep}, 0, '{}')",
                            filler(rep as i64)
                        ))
                        .expect("insert txn");
                    }
                });
            }
        });
    });
    let after = db.wal().stats();
    let total = (threads * txns) as f64;
    let batches = after.batches - before.batches;
    let groups = after.groups - before.groups;
    RunResult {
        tps: total / elapsed.as_secs_f64().max(1e-9),
        fsyncs_per_txn: (after.fsyncs - before.fsyncs) as f64 / total,
        mean_group: if groups == 0 {
            1.0
        } else {
            batches as f64 / groups as f64
        },
        max_group: after.max_group_batches,
    }
}

/// Experiment G: WAL group commit, committer threads × sync mode.
pub fn group_commit(scale: &Scale) -> TableReport {
    let mut report = TableReport::new(
        "G",
        "Experiment G: WAL group commit, committer threads × sync mode",
        "under Fsync, grouping amortizes the flush: fsyncs/txn < 0.5 and >= 2x txns/sec at 8 threads; without grouping every commit pays its own fsync",
        &[
            "sync mode",
            "threads",
            "group commit",
            "txns/sec",
            "fsyncs/txn",
            "mean group",
            "max group",
        ],
    );
    let txns = txns_per_thread(scale);
    report.note(format!(
        "{txns} single-row insert transactions per committer thread, one table per thread (the WAL is the only shared resource); fsyncs/txn and group sizes from WalStats deltas"
    ));
    let b = SourceBuilder::new("expg");
    let mut cell = |mode: SyncMode, label: &str, threads: usize, grouped: bool| -> RunResult {
        let db = open_db(&b, &format!("g-{label}-{threads}-{grouped}"), mode, grouped);
        let r = committer_run(&db, threads, txns);
        report.push_row(vec![
            label.to_string(),
            threads.to_string(),
            if grouped { "on" } else { "off" }.to_string(),
            format!("{:.0}", r.tps),
            format!("{:.3}", r.fsyncs_per_txn),
            format!("{:.2}", r.mean_group),
            r.max_group.to_string(),
        ]);
        r
    };
    let mut grouped_8_fsync = None;
    let mut serial_8_fsync = None;
    for (mode, label) in MODES {
        for threads in THREADS {
            let on = cell(mode, label, threads, true);
            let off = cell(mode, label, threads, false);
            if matches!(mode, SyncMode::Fsync) && threads == 8 {
                grouped_8_fsync = Some(on);
                serial_8_fsync = Some(off);
            }
        }
    }
    let on = grouped_8_fsync.expect("8-thread fsync grouped cell");
    let off = serial_8_fsync.expect("8-thread fsync serial cell");
    report.check(
        "grouped 8-thread Fsync commits share flushes (fsyncs/txn < 0.5)",
        on.fsyncs_per_txn < 0.5,
    );
    report.check(
        "group commit >= 2x txns/sec over per-commit fsync at 8 threads",
        on.tps >= 2.0 * off.tps,
    );
    report.check(
        "without grouping every Fsync commit pays a flush (fsyncs/txn ~ 1)",
        off.fsyncs_per_txn > 0.99,
    );
    report.check(
        "groups actually form at 8 Fsync committers (mean group > 1.5)",
        on.mean_group > 1.5,
    );
    report
}

fn sync_schema() -> Schema {
    Schema::new(vec![
        Column::new("id", DataType::Int).primary_key(),
        Column::new("v", DataType::Int),
    ])
    .unwrap()
}

fn sync_warehouse(b: &SourceBuilder) -> Warehouse {
    let db = b.db(false).expect("warehouse db");
    let mut wh = Warehouse::new(db);
    wh.add_mirror(MirrorConfig::full("t", sync_schema()))
        .expect("mirror");
    wh
}

/// Publish `value_batches` single-row value deltas followed by
/// `op_batches` identical-text Op-Delta updates.
fn publish_workload(pipe: &Pipeline, value_batches: usize, op_batches: usize) {
    for i in 0..value_batches {
        let mut vd = ValueDelta::new("t", sync_schema());
        vd.records.push(ValueDeltaRecord {
            op: DeltaOp::Insert,
            txn: 0,
            row: Row::new(vec![Value::Int(i as i64), Value::Int(0)]),
        });
        pipe.publish(&DeltaBatch::Value(vd)).expect("publish vd");
    }
    for i in 0..op_batches {
        pipe.publish(&DeltaBatch::Op(OpDelta {
            txn: i as u64 + 1,
            ops: vec![OpLogRecord {
                seq: 1,
                txn: i as u64 + 1,
                statement: parse_statement("UPDATE t SET v = v + 1 WHERE id = 0").unwrap(),
                before_image: None,
            }],
        }))
        .expect("publish od");
    }
}

/// Experiment G-sync: batched warehouse apply throughput.
pub fn sync_batched(scale: &Scale) -> TableReport {
    let mut report = TableReport::new(
        "GS",
        "Experiment G-sync: batched pipeline sync vs one ack per batch",
        "dequeue runs fold consecutive value deltas into one warehouse transaction and warm the parse/rewrite caches: fewer transactions and higher batches/sec at run size 64 than at 1",
        &[
            "run size",
            "batches",
            "sync time",
            "batches/sec",
            "warehouse txns",
            "parse hits",
            "rewrite hits",
        ],
    );
    let value_batches = scale.rows(200);
    let op_batches = scale.rows(200);
    report.note(format!(
        "{value_batches} single-row value-delta batches then {op_batches} identical-text Op-Delta updates, same queue contents for both run sizes"
    ));
    let b = SourceBuilder::new("expg-sync");
    let mut run = |run_size: u64| -> (f64, u64) {
        let wh = sync_warehouse(&b);
        let pipe = Pipeline::open(b.path(&format!("q-{run_size}")))
            .expect("pipeline")
            .with_batch_size(run_size);
        publish_workload(&pipe, value_batches, op_batches);
        let (res, elapsed) = time_once(|| pipe.sync(&wh));
        let sync = res.expect("sync");
        assert_eq!(sync.batches as usize, value_batches + op_batches);
        let bps = sync.batches as f64 / elapsed.as_secs_f64().max(1e-9);
        report.push_row(vec![
            run_size.to_string(),
            sync.batches.to_string(),
            fmt_duration(elapsed),
            format!("{bps:.0}"),
            sync.apply.transactions.to_string(),
            pipe.stmt_cache_stats().hits.to_string(),
            pipe.rewrite_cache_stats().hits.to_string(),
        ]);
        (bps, sync.apply.transactions)
    };
    let (bps_1, txns_1) = run(1);
    let (bps_64, txns_64) = run(DEFAULT_SYNC_BATCH);
    report.check(
        "batched sync folds value-delta runs into fewer warehouse transactions",
        txns_64 < txns_1,
    );
    report.check(
        "batched sync is at least as fast as one ack per batch",
        bps_64 >= bps_1,
    );
    report
}
