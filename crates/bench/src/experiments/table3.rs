//! **Table 3** — total time to extract and load deltas (end to end,
//! excluding network/cleanup/integration, exactly like the paper).
//!
//! Two pipelines from the source to a warehouse database:
//!
//! * timestamp **file output + DBMS Loader** (portable ASCII path), vs
//! * timestamp **table output + Export + Import** (same-product binary
//!   path).
//!
//! The paper finds the second path ~2-3.5x slower; the gap is structural —
//! the delta is written through the engine twice (delta table, then Import's
//! re-insert), plus the Export pass.

use delta_core::timestamp::TimestampExtractor;
use delta_engine::util::{import_table, loader_load, LoadMode};

use crate::report::{fmt_duration, TableReport};
use crate::workload::{time_once, Scale, SourceBuilder};

pub fn run(scale: &Scale) -> TableReport {
    let mut report = TableReport::new(
        "T3",
        "Table 3: total time to extract and load deltas",
        "file+Loader path ~2-3.5x faster than table+Export+Import path",
        &[
            "paper size",
            "delta rows",
            "TS file output + DBMS Loader",
            "TS table output + Export + Import",
        ],
    );
    let b = SourceBuilder::new("table3");
    let source = b.db(false).expect("open source");
    let warehouse = b.db(false).expect("open warehouse");
    let total = super::table2::source_rows(scale);
    b.seeded_ts_table(&source, "parts", total).expect("seed");
    report.note(format!("source table: {total} rows; warehouse is a separate database (same product, so Import is legal)"));
    let x = TimestampExtractor::new("parts", "last_modified");
    let ddl = "(id INT PRIMARY KEY, grp INT, filler VARCHAR, last_modified TIMESTAMP)";

    // Untimed warm-up of both pipelines.
    {
        warehouse
            .session()
            .execute(&format!("CREATE TABLE warm {ddl}"))
            .expect("ddl");
        let wm = source.peek_clock();
        source
            .session()
            .execute("UPDATE parts SET grp = grp WHERE id < 50")
            .expect("touch");
        let f = b.path("warm.txt");
        x.extract_to_file(&source, wm, &f).expect("warm extract");
        loader_load(&warehouse, "warm", &f, LoadMode::Replace).expect("warm load");
        let e = b.path("warm.exp");
        x.extract_to_table_and_export(&source, wm, "warm_d", &e)
            .expect("warm path b");
        warehouse
            .session()
            .execute(&format!("CREATE TABLE warm_imp {ddl}"))
            .expect("ddl");
        import_table(&warehouse, "warm_imp", &e).expect("warm import");
    }

    let mut last = None;
    for (label, delta_rows) in super::table2::sweep(scale) {
        let watermark = source.peek_clock();
        source
            .session()
            .execute(&format!(
                "UPDATE parts SET grp = grp WHERE id < {delta_rows}"
            ))
            .expect("touch rows");
        source.pool().flush_and_sync_all().expect("sync");
        warehouse.pool().flush_and_sync_all().expect("sync");

        // Path A: file output, ship, DBMS Loader.
        let wh_a = format!("wa_{label}");
        warehouse
            .session()
            .execute(&format!("CREATE TABLE {wh_a} {ddl}"))
            .expect("create");
        let file_path = b.path(&format!("t3_{label}.txt"));
        let (r, t_a) = time_once(|| -> delta_engine::EngineResult<u64> {
            x.extract_to_file(&source, watermark, &file_path)?;
            loader_load(&warehouse, &wh_a, &file_path, LoadMode::Append)
        });
        assert_eq!(r.expect("path A") as usize, delta_rows);
        warehouse.pool().flush_and_sync_all().expect("sync");

        // Path B: table output, Export, Import at the warehouse.
        let wh_b = format!("wb_{label}");
        warehouse
            .session()
            .execute(&format!("CREATE TABLE {wh_b} {ddl}"))
            .expect("create");
        let delta_table = format!("t3d_{label}");
        let exp_path = b.path(&format!("t3_{label}.exp"));
        let (r, t_b) = time_once(|| -> delta_engine::EngineResult<u64> {
            x.extract_to_table_and_export(&source, watermark, &delta_table, &exp_path)?;
            import_table(&warehouse, &wh_b, &exp_path)
        });
        assert_eq!(r.expect("path B") as usize, delta_rows);

        report.push_row(vec![
            label,
            delta_rows.to_string(),
            fmt_duration(t_a),
            fmt_duration(t_b),
        ]);
        last = Some((t_a, t_b));
    }
    if let Some((a, bt)) = last {
        report.check(
            "file+Loader < table+Export+Import at the largest delta",
            a < bt,
        );
        report.check(
            "the gap is substantial (>= 1.5x)",
            bt.as_secs_f64() / a.as_secs_f64() >= 1.5,
        );
    }
    report
}
