//! **Figure 2** — insert/delete/update trigger overhead vs transaction size.
//!
//! The paper measures transaction response time with and without row-level
//! delta-capture triggers on a table held at 100,000 rows (for
//! update/delete), varying the records-per-transaction. Expected shapes:
//!
//! * insert overhead roughly constant (~80–100 %): the trigger performs one
//!   extra insert per inserted row;
//! * update overhead *grows* with transaction size (to several hundred %):
//!   two triggered insertions per row while the per-row update cost shrinks
//!   as the fixed table-scan cost amortizes;
//! * delete overhead grows moderately (one triggered insertion per row).

use std::sync::Arc;
use std::time::Duration;

use delta_core::trigger_extract::TriggerExtractor;
use delta_engine::db::Database;

use crate::report::{fmt_duration, fmt_pct, overhead_pct, TableReport};
use crate::workload::{
    delete_txn_sql, insert_txn_sql, time_avg, update_txn_sql, Scale, SourceBuilder,
};

/// Table rows (paper: 100,000; scaled 1/10 by default).
pub fn table_rows(scale: &Scale) -> usize {
    scale.rows(10_000)
}

/// Transaction sizes: the paper's 1–10,000 sweep, capped so update/delete
/// predicates stay a strict subset of the table.
pub fn txn_sizes(scale: &Scale) -> Vec<usize> {
    let cap = table_rows(scale) / 2;
    [1usize, 10, 100, 1_000, 10_000]
        .into_iter()
        .filter(|n| *n <= cap)
        .collect()
}

/// The three operations measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    Insert,
    Delete,
    Update,
}

impl OpKind {
    pub fn all() -> [OpKind; 3] {
        [OpKind::Insert, OpKind::Delete, OpKind::Update]
    }

    pub fn label(self) -> &'static str {
        match self {
            OpKind::Insert => "insert",
            OpKind::Delete => "delete",
            OpKind::Update => "update",
        }
    }
}

/// Average response time of one `op` transaction of `n` rows against a fresh
/// 10k-row table, driven through `run_sql` (identity for the baseline, the
/// capture wrapper for Fig 3).
pub fn measure_txn(
    _db: &Arc<Database>,
    mut run_sql: impl FnMut(&str),
    op: OpKind,
    n: usize,
    rows: usize,
) -> Duration {
    let mut one = |rep: usize| match op {
        OpKind::Insert => {
            let first = (rows * 10 + rep * n) as i64;
            run_sql(&insert_txn_sql("parts", first, n));
        }
        OpKind::Update => {
            let a = ((rep * n) % (rows - n + 1)) as i64;
            run_sql(&update_txn_sql("parts", a, n));
        }
        OpKind::Delete => {
            let a = (rep * n) as i64;
            run_sql(&delete_txn_sql("parts", a, n));
        }
    };
    // Warm up once (cold file/page/WAL costs), then measure under a time
    // budget so small transactions are sampled many times. Two measurement
    // passes are taken and the smaller wins: the minimum is robust against
    // one-off scheduler/IO interference on a busy machine.
    let (_, warm) = crate::workload::time_once(|| one(0));
    let budget = Duration::from_millis(200);
    let mut reps = (budget.as_secs_f64() / warm.as_secs_f64().max(1e-6)).ceil() as usize;
    reps = reps.clamp(3, 150);
    if op == OpKind::Delete {
        // Deletes consume disjoint row groups; stay within 60% of the table
        // (the warmup already consumed group 0), split over the two passes.
        reps = reps.min(((rows * 6 / 10 / n.max(1)).saturating_sub(1) / 2).max(1));
    }
    let first = time_avg(reps, |rep| one(rep + 1));
    let second = time_avg(reps, |rep| one(rep + 1 + reps));
    first.min(second)
}

pub fn run(scale: &Scale) -> TableReport {
    let mut report = TableReport::new(
        "F2",
        "Figure 2: insert/delete/update trigger overhead",
        "insert ~constant 80-100%; update overhead grows with txn size (largest); delete grows moderately",
        &["op", "txn size", "no trigger", "with trigger", "overhead"],
    );
    let rows = table_rows(scale);
    report.note(format!(
        "source table held at {rows} rows for update/delete (paper: 100,000); row-level CaptureDelta triggers write I / UB+UA / D images"
    ));
    let b = SourceBuilder::new("fig2");
    // (op, n) -> overhead pct, for the shape checks.
    let mut overheads: std::collections::HashMap<(&'static str, usize), f64> = Default::default();
    for op in OpKind::all() {
        for &n in &txn_sizes(scale) {
            // Fresh database per (op, size, trigger) cell so the table size
            // and delta-table growth never leak across measurements.
            let t_base = {
                let db = b.db(false).expect("db");
                b.seeded_op_table(&db, "parts", rows).expect("seed");
                let mut s = db.session();
                measure_txn(
                    &db,
                    |sql| {
                        s.execute(sql).expect("stmt");
                    },
                    op,
                    n,
                    rows,
                )
            };
            let t_trig = {
                let db = b.db(false).expect("db");
                b.seeded_op_table(&db, "parts", rows).expect("seed");
                TriggerExtractor::new("parts")
                    .install(&db)
                    .expect("trigger");
                let mut s = db.session();
                measure_txn(
                    &db,
                    |sql| {
                        s.execute(sql).expect("stmt");
                    },
                    op,
                    n,
                    rows,
                )
            };
            let ovh = overhead_pct(t_base, t_trig);
            overheads.insert((op.label(), n), ovh);
            report.push_row(vec![
                op.label().to_string(),
                n.to_string(),
                fmt_duration(t_base),
                fmt_duration(t_trig),
                fmt_pct(ovh),
            ]);
        }
    }
    let sizes = txn_sizes(scale);
    let (n_min, n_max) = (sizes[0], *sizes.last().expect("non-empty"));
    let big_insert: Vec<f64> = sizes
        .iter()
        .filter(|n| **n >= 10)
        .map(|n| overheads[&("insert", *n)])
        .collect();
    report.check(
        "insert overhead is substantial at every size >= 10 (paper: 80-100%)",
        big_insert.iter().all(|o| *o > 25.0),
    );
    report.check(
        "update overhead grows with txn size",
        overheads[&("update", n_max)] > overheads[&("update", n_min)] + 20.0,
    );
    report.check(
        "delete overhead grows with txn size",
        overheads[&("delete", n_max)] > overheads[&("delete", n_min)] + 20.0,
    );
    report.check(
        "update overhead is large at the biggest txn (paper: up to ~344%)",
        overheads[&("update", n_max)] > 50.0,
    );
    report
}
