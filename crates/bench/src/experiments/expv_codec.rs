//! **Experiment V-CODEC** — the compact delta codec's effect on the ship
//! path, re-running experiment V's workloads at both wire codecs and
//! replaying experiment R's LAN shipping step in deterministic virtual time.
//!
//! The paper's volume argument (§4.1) is about *what* you ship; this
//! experiment measures *how* it is encoded: the legacy text envelope
//! ([`DeltaCodec::Raw`]) against the columnar CRC-framed block format
//! ([`DeltaCodec::Columnar`]). The uniform 100-byte-record delta workload
//! must shrink at least 3x, and shipping the smaller encoding over the
//! modelled 10 Mb/s LAN must never be slower in virtual time.

use delta_core::model::DeltaBatch;
use delta_core::opdelta::{collect_from_table, OpDeltaCapture, OpLogSink};
use delta_core::trigger_extract::TriggerExtractor;
use delta_storage::colbatch::DEFAULT_BLOCK_ROWS;
use delta_storage::DeltaCodec;
use delta_transport::netsim::{LinkProfile, SimulatedConnection, VirtualClock};

use crate::experiments::fig2::OpKind;
use crate::report::{fmt_duration, TableReport};
use crate::workload::{delete_txn_sql, insert_txn_sql, update_txn_sql, Scale, SourceBuilder};

fn fmt_bytes(n: usize) -> String {
    if n < 10_000 {
        format!("{n} B")
    } else {
        format!("{:.1} KiB", n as f64 / 1024.0)
    }
}

/// Virtual time to ship `bytes` over an established 10 Mb/s LAN connection.
fn lan_ship(bytes: usize) -> std::time::Duration {
    let clock = VirtualClock::new();
    let mut conn = SimulatedConnection::new(LinkProfile::lan_10mbps(), clock);
    conn.ensure_connected(); // long-lived connection, amortized away
    conn.send(bytes as u64)
}

pub fn run(scale: &Scale) -> TableReport {
    let mut report = TableReport::new(
        "VC",
        "Experiment V-CODEC: wire bytes and LAN ship time, raw vs columnar codec",
        "columnar shrinks uniform 100-byte-record deltas >=3x; smaller frames are never slower to ship in virtual time",
        &[
            "payload",
            "raw bytes",
            "columnar bytes",
            "reduction",
            "LAN ship raw",
            "LAN ship columnar",
        ],
    );
    let rows = scale.rows(10_000);
    let n = (rows / 2).clamp(1, 1_000);
    report.note(format!(
        "experiment V's workload: {n}-row transactions on a {rows}-row table of uniform 100-byte records"
    ));
    report.note(
        "ship times replay experiment R's modelled 10 Mb/s LAN (established connection) in deterministic virtual time",
    );

    let b = SourceBuilder::new("expvc");
    let mut uniform_reductions: Vec<f64> = Vec::new();
    let mut ship_verdicts: Vec<bool> = Vec::new();
    for op in OpKind::all() {
        let db = b.db(false).expect("db");
        b.seeded_op_table(&db, "parts", rows).expect("seed");
        let extractor = TriggerExtractor::new("parts");
        extractor.install(&db).expect("trigger");
        let mut cap =
            OpDeltaCapture::new(db.session(), OpLogSink::Table("op_log".into())).expect("capture");
        let sql = match op {
            OpKind::Insert => insert_txn_sql("parts", (rows * 10) as i64, n),
            OpKind::Update => update_txn_sql("parts", 0, n),
            OpKind::Delete => delete_txn_sql("parts", 0, n),
        };
        cap.execute(&sql).expect("txn");
        let value_batch = DeltaBatch::Value(extractor.drain(&db).expect("drain"));
        let op_bytes_raw: usize = collect_from_table(&db, "op_log")
            .expect("collect")
            .iter()
            .map(|od| DeltaBatch::Op(od.clone()).wire_size())
            .sum();
        let op_bytes_col: usize = collect_from_table(&db, "op_log")
            .expect("collect")
            .iter()
            .map(|od| {
                DeltaBatch::Op(od.clone()).wire_size_with(DeltaCodec::Columnar, DEFAULT_BLOCK_ROWS)
            })
            .sum();
        let raw = value_batch.wire_size_with(DeltaCodec::Raw, DEFAULT_BLOCK_ROWS);
        let col = value_batch.wire_size_with(DeltaCodec::Columnar, DEFAULT_BLOCK_ROWS);
        let (t_raw, t_col) = (lan_ship(raw), lan_ship(col));
        uniform_reductions.push(raw as f64 / col.max(1) as f64);
        ship_verdicts.push(t_col <= t_raw);
        report.push_row(vec![
            format!("{} value delta", op.label()),
            fmt_bytes(raw),
            fmt_bytes(col),
            format!("{:.1}x", raw as f64 / col.max(1) as f64),
            fmt_duration(t_raw),
            fmt_duration(t_col),
        ]);
        let (t_op_raw, t_op_col) = (lan_ship(op_bytes_raw), lan_ship(op_bytes_col));
        ship_verdicts.push(t_op_col <= t_op_raw);
        report.push_row(vec![
            format!("{} Op-Delta", op.label()),
            fmt_bytes(op_bytes_raw),
            fmt_bytes(op_bytes_col),
            format!("{:.1}x", op_bytes_raw as f64 / op_bytes_col.max(1) as f64),
            fmt_duration(t_op_raw),
            fmt_duration(t_op_col),
        ]);
    }
    report.check(
        "columnar shrinks every uniform 100-byte-record value delta >=3x",
        uniform_reductions.iter().all(|r| *r >= 3.0),
    );
    report.check(
        "columnar LAN ship virtual time is never worse than raw (R verdict)",
        ship_verdicts.iter().all(|v| *v),
    );
    report
}
