//! One module per reproduced artifact. See DESIGN.md §4 for the experiment
//! index and the expected shapes.

pub mod ablations;
pub mod expa;
pub mod expb;
pub mod expc;
pub mod expg;
pub mod expp;
pub mod expr;
pub mod expr_pressure;
pub mod expv;
pub mod expv_codec;
pub mod expw;
pub mod fig2;
pub mod fig3;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;

use crate::report::TableReport;
use crate::workload::Scale;

/// Every experiment, by id.
pub fn all_ids() -> Vec<&'static str> {
    vec![
        "table1",
        "table2",
        "table3",
        "fig2",
        "fig3",
        "table4",
        "expw",
        "expv",
        "expv_codec",
        "expr",
        "expc",
        "expg_group_commit",
        "expg_sync",
        "expa_audit_repair",
        "expb_scan_scaling",
        "expp_parallel_sync",
        "expr_pressure",
        "ablation_wal",
        "ablation_ts_index",
        "ablation_snapshot",
        "ablation_hybrid",
    ]
}

/// Run one experiment by id.
pub fn run(id: &str, scale: &Scale) -> Option<TableReport> {
    Some(match id {
        "table1" => table1::run(scale),
        "table2" => table2::run(scale),
        "table3" => table3::run(scale),
        "fig2" => fig2::run(scale),
        "fig3" => fig3::run(scale),
        "table4" => table4::run(scale),
        "expw" => expw::run(scale),
        "expv" => expv::run(scale),
        "expv_codec" => expv_codec::run(scale),
        "expr" => expr::run(scale),
        "expc" => expc::run(scale),
        "expg_group_commit" => expg::group_commit(scale),
        "expg_sync" => expg::sync_batched(scale),
        "expa_audit_repair" => expa::run(scale),
        "expb_scan_scaling" => expb::run(scale),
        "expp_parallel_sync" => expp::run(scale),
        "expr_pressure" => expr_pressure::run(scale),
        "ablation_wal" => ablations::wal_sync(scale),
        "ablation_ts_index" => ablations::ts_index(scale),
        "ablation_snapshot" => ablations::snapshot_algorithms(scale),
        "ablation_hybrid" => ablations::hybrid_capture(scale),
        _ => return None,
    })
}
