//! **Experiment V** — §4.1's message-volume argument, measured exactly.
//!
//! *"For deletions and updates at sources, Op-Delta can reduce the 'delta'
//! volume and hence the message traffic from source to the data warehouse
//! significantly ... the size of an Op-Delta for deletion and update is
//! independent of the size of the transaction ... For insertion at sources,
//! the Op-Delta has the same space efficiency as the value delta."*
//!
//! We run identical transactions, capture them both ways, and compare the
//! bytes each representation puts on the wire (the serialized envelopes the
//! transports actually ship). Unlike the timing experiments this one is
//! fully deterministic.

use delta_core::model::DeltaBatch;
use delta_core::opdelta::{collect_from_table, OpDeltaCapture, OpLogSink};
use delta_core::trigger_extract::TriggerExtractor;
use delta_storage::colbatch::DEFAULT_BLOCK_ROWS;
use delta_storage::DeltaCodec;

use crate::experiments::fig2::OpKind;
use crate::report::TableReport;
use crate::workload::{delete_txn_sql, insert_txn_sql, update_txn_sql, Scale, SourceBuilder};

fn fmt_bytes(n: usize) -> String {
    if n < 10_000 {
        format!("{n} B")
    } else {
        format!("{:.1} KiB", n as f64 / 1024.0)
    }
}

pub fn run(scale: &Scale) -> TableReport {
    let mut report = TableReport::new(
        "V",
        "Experiment V (§4.1): shipped delta volume, value delta vs Op-Delta",
        "delete/update Op-Deltas are ~constant-size (~70 B) regardless of rows affected; insert volumes are comparable",
        &["op", "txn size", "value delta bytes", "Op-Delta bytes", "ratio"],
    );
    let rows = scale.rows(10_000);
    report.note(format!(
        "bytes are the serialized transport envelopes; source table {rows} rows of 100-byte records"
    ));
    let b = SourceBuilder::new("expv");
    let sizes: Vec<usize> = [10usize, 100, 1_000, 10_000]
        .into_iter()
        .filter(|n| *n <= rows / 2)
        .collect();
    let mut measured: std::collections::HashMap<(&'static str, usize), (usize, usize)> =
        Default::default();
    for op in OpKind::all() {
        for &n in &sizes {
            let db = b.db(false).expect("db");
            b.seeded_op_table(&db, "parts", rows).expect("seed");
            let extractor = TriggerExtractor::new("parts");
            extractor.install(&db).expect("trigger");
            let mut cap = OpDeltaCapture::new(db.session(), OpLogSink::Table("op_log".into()))
                .expect("capture");
            let sql = match op {
                OpKind::Insert => insert_txn_sql("parts", (rows * 10) as i64, n),
                OpKind::Update => update_txn_sql("parts", 0, n),
                OpKind::Delete => delete_txn_sql("parts", 0, n),
            };
            cap.execute(&sql).expect("txn");
            let value_batch = DeltaBatch::Value(extractor.drain(&db).expect("drain"));
            let value = value_batch.wire_size();
            let op_batches: Vec<DeltaBatch> = collect_from_table(&db, "op_log")
                .expect("collect")
                .into_iter()
                .map(DeltaBatch::Op)
                .collect();
            let op_delta = op_batches.iter().map(DeltaBatch::wire_size).sum::<usize>();
            // Per-codec byte counts at the largest transaction (the
            // `expv_codec` experiment drills into these; recorded here so
            // V.json carries both codecs' volumes).
            if n == *sizes.last().expect("non-empty") {
                let col = value_batch.wire_size_with(DeltaCodec::Columnar, DEFAULT_BLOCK_ROWS);
                let op_col = op_batches
                    .iter()
                    .map(|b| b.wire_size_with(DeltaCodec::Columnar, DEFAULT_BLOCK_ROWS))
                    .sum::<usize>();
                report.note(format!(
                    "codec bytes ({}, n={n}): value delta {} raw -> {} columnar ({:.1}x); Op-Delta {} raw -> {} columnar",
                    op.label(),
                    fmt_bytes(value),
                    fmt_bytes(col),
                    value as f64 / col.max(1) as f64,
                    fmt_bytes(op_delta),
                    fmt_bytes(op_col),
                ));
            }
            measured.insert((op.label(), n), (value, op_delta));
            report.push_row(vec![
                op.label().to_string(),
                n.to_string(),
                fmt_bytes(value),
                fmt_bytes(op_delta),
                format!("{:.1}x", value as f64 / op_delta as f64),
            ]);
        }
    }
    let n_min = sizes[0];
    let n_max = *sizes.last().expect("non-empty");
    // Delete/update op-deltas do not grow with the transaction.
    for op in ["delete", "update"] {
        let (_, od_small) = measured[&(op, n_min)];
        let (_, od_big) = measured[&(op, n_max)];
        report.check(
            format!("{op} Op-Delta size is independent of rows affected"),
            od_big < od_small * 3,
        );
        let (vd_big, od) = measured[&(op, n_max)];
        report.check(
            format!("{op} value delta dwarfs the Op-Delta at the largest txn"),
            vd_big > od * 50,
        );
    }
    // Inserts: same space efficiency (within 2x either way).
    let (vd, od) = measured[&("insert", n_max)];
    let ratio = vd as f64 / od as f64;
    report.check(
        "insert volumes are comparable (paper: same space efficiency)",
        (0.5..=2.0).contains(&ratio),
    );
    report
}
