//! **Table 1** — database delta dump and load techniques.
//!
//! The paper times Export, Import, and the ASCII "DBMS Loader" over delta
//! sizes 100 MB–1 GB of 100-byte records. We sweep the same shape at
//! 1/1000 size (1 k–10 k records ≈ 0.1–1 MB) and expect the same ordering:
//! Export fastest, Loader in the middle, Import slowest (it re-inserts every
//! row through the buffer pool and WAL — "the extra I/O is evident").

use delta_engine::util::{ascii_dump, export_table, import_table, loader_load, LoadMode};

use crate::report::{fmt_duration, TableReport};
use crate::workload::{time_once, Scale, SourceBuilder};

/// Paper's delta sizes (MB) and the scaled row counts we use.
pub fn sweep(scale: &Scale) -> Vec<(u32, usize)> {
    [100u32, 200, 400, 600, 800, 1000]
        .iter()
        .map(|&mb| (mb, scale.rows(mb as usize * 10)))
        .collect()
}

pub fn run(scale: &Scale) -> TableReport {
    let mut report = TableReport::new(
        "T1",
        "Table 1: database delta dump and load techniques",
        "Export << DBMS Loader << Import at every size; gaps grow with size",
        &[
            "paper size",
            "rows (scaled)",
            "Export",
            "Import",
            "DBMS Loader",
        ],
    );
    report.note(format!(
        "scale factor {}: paper's 100 MB of 100-byte records -> {} rows",
        scale.factor,
        scale.rows(1000)
    ));
    let b = SourceBuilder::new("table1");
    let db = b.db(false).expect("open db");
    let mut last = None;
    // Untimed warm-up pass so first-row numbers don't carry cold-start costs.
    {
        b.seeded_ts_table(&db, "warmup", 200).expect("seed");
        export_table(&db, "warmup", b.path("warmup.exp")).expect("warm export");
        db.session()
            .execute("CREATE TABLE warmup_imp (id INT PRIMARY KEY, grp INT, filler VARCHAR, last_modified TIMESTAMP)")
            .expect("ddl");
        import_table(&db, "warmup_imp", b.path("warmup.exp")).expect("warm import");
        ascii_dump(&db, "warmup", b.path("warmup.txt")).expect("warm dump");
        loader_load(&db, "warmup_imp", b.path("warmup.txt"), LoadMode::Replace).expect("warm load");
    }
    for (mb, rows) in sweep(scale) {
        let delta_table = format!("delta_{mb}");
        b.seeded_ts_table(&db, &delta_table, rows).expect("seed");
        // Quiesce OS writeback from seeding so it doesn't bleed into the
        // timed utilities (untimed).
        db.pool().flush_and_sync_all().expect("sync");

        // Export the delta table (binary, proprietary).
        let exp_path = b.path(&format!("{delta_table}.exp"));
        let (r, t_export) = time_once(|| export_table(&db, &delta_table, &exp_path));
        r.expect("export");

        // Import it into a fresh table of the same schema.
        let imp_table = format!("imp_{mb}");
        db.session()
            .execute(&format!(
                "CREATE TABLE {imp_table} (id INT PRIMARY KEY, grp INT, filler VARCHAR, last_modified TIMESTAMP)"
            ))
            .expect("create import target");
        let (r, t_import) = time_once(|| import_table(&db, &imp_table, &exp_path));
        assert_eq!(r.expect("import"), rows as u64);

        // ASCII dump (not timed; it is the Loader's input), then direct load.
        let txt_path = b.path(&format!("{delta_table}.txt"));
        ascii_dump(&db, &delta_table, &txt_path).expect("ascii dump");
        let load_table = format!("load_{mb}");
        db.session()
            .execute(&format!(
                "CREATE TABLE {load_table} (id INT PRIMARY KEY, grp INT, filler VARCHAR, last_modified TIMESTAMP)"
            ))
            .expect("create load target");
        let (r, t_loader) =
            time_once(|| loader_load(&db, &load_table, &txt_path, LoadMode::Append));
        assert_eq!(r.expect("loader"), rows as u64);
        db.pool().flush_and_sync_all().expect("sync");

        report.push_row(vec![
            format!("{mb}M"),
            rows.to_string(),
            fmt_duration(t_export),
            fmt_duration(t_import),
            fmt_duration(t_loader),
        ]);
        last = Some((t_export, t_import, t_loader));
    }
    if let Some((e, i, l)) = last {
        report.check("Export < Loader at the largest size", e < l);
        report.check("Loader < Import at the largest size", l < i);
    }
    report
}
