//! **Experiment B** — sharded buffer pool read-path scaling (this repo's
//! hot-path engineering, the read-side twin of experiment G).
//!
//! Three measurements in one report:
//!
//! * A pool-level page-touch scan: threads {1, 2, 4, 8} sweeping a fully
//!   resident file through `with_page`, against a 1-shard pool (the old
//!   global-mutex design) and an 8-shard pool. Every access is a hit, so
//!   the cell isolates what the tentpole changed: time spent acquiring and
//!   handing off the shard locks. Hit rate and per-shard lock balance
//!   (max/mean of per-shard accesses) are printed alongside throughput.
//! * An end-to-end `scan_table` comparison at 8 threads, 1 vs 8 shards —
//!   row decoding dilutes the lock contention, so this bounds what the
//!   sharding is worth in SQL-visible terms.
//! * The parallel differential-snapshot diff at 1/2/4/8 workers, with the
//!   parallel output checked record-for-record against the sequential
//!   algorithms (the acceptance property: parallelism must not change the
//!   delta).

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use delta_core::snapshot::{diff_snapshots, diff_snapshots_parallel, DiffAlgorithm};
use delta_engine::db::{Database, DbOptions, SyncMode};
use delta_storage::codec::ascii;
use delta_storage::{BufferPool, Column, DataType, DiskFile, FileId, PageId, Row, Schema, Value};

use crate::report::{fmt_duration, TableReport};
use crate::workload::{filler, time_once, Scale, SourceBuilder};

const THREADS: [usize; 4] = [1, 2, 4, 8];
const SHARDS: [usize; 2] = [1, 8];
const SCAN_MS: u64 = 250;

struct ScanCell {
    pages_per_sec: f64,
    hit_rate: f64,
    balance: f64,
}

/// Build a pool over a freshly seeded file and return it with its page ids.
/// Capacity is 4x the page count: frames are split evenly across shards but
/// the page hash is not perfectly even, so a pool sized exactly to the hot
/// set would thrash its fullest shard.
fn seeded_pool(b: &SourceBuilder, shards: usize, pages: usize) -> (Arc<BufferPool>, Vec<PageId>) {
    let pool = Arc::new(BufferPool::with_shards(
        (pages * 4).next_power_of_two(),
        shards,
    ));
    let fid = FileId(1);
    let path = b.path(&format!("scan-{shards}.db"));
    let _ = std::fs::remove_file(&path);
    pool.register_file(fid, Arc::new(DiskFile::open(&path).expect("scan file")));
    let pids: Vec<PageId> = (0..pages)
        .map(|i| {
            let pid = pool.allocate_page(fid).expect("allocate");
            pool.with_page_mut(pid, |p| p.insert(format!("page-{i}").as_bytes()).unwrap())
                .expect("seed");
            pid
        })
        .collect();
    // Touch everything once so the measured cells run on the pure hit path.
    for pid in &pids {
        pool.with_page(*pid, |_| ()).expect("warm");
    }
    (pool, pids)
}

/// `threads` workers sweep the resident pages for a fixed wall-clock slice;
/// returns aggregate page touches per second plus pool-side quality stats.
fn scan_run(pool: &Arc<BufferPool>, pids: &[PageId], threads: usize) -> ScanCell {
    pool.reset_stats();
    let stop = AtomicBool::new(false);
    let touched = AtomicU64::new(0);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let pool = Arc::clone(pool);
            let stop = &stop;
            let touched = &touched;
            scope.spawn(move || {
                let mut local = 0u64;
                let mut i = t * 17; // staggered start positions
                while !stop.load(Ordering::Relaxed) {
                    let pid = pids[i % pids.len()];
                    pool.with_page(pid, |p| p.live_count()).expect("scan page");
                    local += 1;
                    i += 1;
                }
                touched.fetch_add(local, Ordering::Relaxed);
            });
        }
        std::thread::sleep(Duration::from_millis(SCAN_MS));
        stop.store(true, Ordering::Relaxed);
    });
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    let stats = pool.stats();
    let per_shard = pool.shard_stats();
    let accesses: Vec<u64> = per_shard.iter().map(|s| s.accesses()).collect();
    let mean = accesses.iter().sum::<u64>() as f64 / accesses.len().max(1) as f64;
    let max = accesses.iter().copied().max().unwrap_or(0) as f64;
    ScanCell {
        pages_per_sec: touched.load(Ordering::Relaxed) as f64 / elapsed,
        hit_rate: stats.hit_rate(),
        balance: if mean > 0.0 { max / mean } else { 1.0 },
    }
}

fn open_db(b: &SourceBuilder, name: &str, shards: usize) -> Arc<Database> {
    let mut opts = DbOptions::new(b.path(name)).pool_shards(shards);
    opts.wal_sync = SyncMode::Flush;
    opts.lock_timeout = Duration::from_secs(30);
    Database::open(opts).expect("bench db")
}

/// 8 threads looping full `scan_table` calls for a fixed slice.
fn sql_scan_run(b: &SourceBuilder, shards: usize, rows: usize) -> f64 {
    let db = open_db(b, &format!("sql-{shards}"), shards);
    let mut s = db.session();
    s.execute("CREATE TABLE t (id INT PRIMARY KEY, grp INT, filler VARCHAR)")
        .expect("create");
    for base in (0..rows).step_by(50) {
        let vals: Vec<String> = (base..(base + 50).min(rows))
            .map(|i| format!("({i}, {}, '{}')", i % 32, filler(i as i64)))
            .collect();
        s.execute(&format!("INSERT INTO t VALUES {}", vals.join(", ")))
            .expect("fill");
    }
    let stop = AtomicBool::new(false);
    let scans = AtomicU64::new(0);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let db = Arc::clone(&db);
            let stop = &stop;
            let scans = &scans;
            scope.spawn(move || {
                let mut local = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let n = db.scan_table("t").expect("scan").len();
                    assert_eq!(n, rows);
                    local += 1;
                }
                scans.fetch_add(local, Ordering::Relaxed);
            });
        }
        std::thread::sleep(Duration::from_millis(SCAN_MS));
        stop.store(true, Ordering::Relaxed);
    });
    scans.load(Ordering::Relaxed) as f64 / started.elapsed().as_secs_f64().max(1e-9)
}

fn snapshot_row(id: i64, tag: &str) -> Row {
    Row::new(vec![
        Value::Int(id),
        Value::Int(id % 32),
        Value::Str(format!("{}{tag}", filler(id))),
    ])
}

fn snapshot_schema() -> Schema {
    Schema::new(vec![
        Column::new("id", DataType::Int).primary_key(),
        Column::new("grp", DataType::Int),
        Column::new("filler", DataType::Varchar),
    ])
    .unwrap()
}

fn write_snapshot_file(path: &Path, rows: impl Iterator<Item = Row>) {
    let mut out = BufWriter::new(File::create(path).expect("snapshot file"));
    for r in rows {
        writeln!(out, "{}", ascii::format_row(&r)).expect("snapshot row");
    }
    out.flush().expect("snapshot flush");
}

/// Experiment B: buffer pool scan scaling and parallel snapshot diff.
pub fn run(scale: &Scale) -> TableReport {
    let mut report = TableReport::new(
        "B",
        "Experiment B: sharded buffer pool scans + parallel snapshot diff",
        "the 8-shard pool sustains >= 2x the 8-thread page-touch throughput of the 1-shard baseline, accesses spread across shards, and the parallel snapshot diff emits exactly the sequential delta at every worker count",
        &[
            "phase",
            "shards",
            "threads",
            "throughput",
            "hit rate",
            "lock balance",
            "time",
        ],
    );
    let b = SourceBuilder::new("expb");

    // --- Pool-level page-touch scan sweep ---------------------------------
    let pages = scale.rows(64);
    report.note(format!(
        "page-touch scan: {pages} resident pages, {SCAN_MS} ms per cell, pure hit path; lock balance = max/mean of per-shard accesses"
    ));
    let mut tput_at = |shards: usize| -> Vec<ScanCell> {
        let (pool, pids) = seeded_pool(&b, shards, pages);
        THREADS
            .iter()
            .map(|&threads| {
                let cell = scan_run(&pool, &pids, threads);
                report.push_row(vec![
                    "page scan".into(),
                    shards.to_string(),
                    threads.to_string(),
                    format!("{:.0} pages/s", cell.pages_per_sec),
                    format!("{:.3}", cell.hit_rate),
                    format!("{:.2}", cell.balance),
                    format!("{SCAN_MS} ms"),
                ]);
                cell
            })
            .collect()
    };
    let mut cells_by_shards = Vec::new();
    for shards in SHARDS {
        cells_by_shards.push((shards, tput_at(shards)));
    }
    let one_shard_8t = &cells_by_shards[0].1[3];
    let sharded_8t = &cells_by_shards[1].1[3];

    // --- SQL-level scans at 8 threads -------------------------------------
    let sql_rows = scale.rows(2000);
    for shards in SHARDS {
        let sps = sql_scan_run(&b, shards, sql_rows);
        report.push_row(vec![
            "sql scan".into(),
            shards.to_string(),
            "8".into(),
            format!("{sps:.1} scans/s"),
            "-".into(),
            "-".into(),
            format!("{SCAN_MS} ms"),
        ]);
    }

    // --- Parallel snapshot diff sweep -------------------------------------
    let n = scale.rows(20_000) as i64;
    let old_path = b.path("snap-old.txt");
    let new_path = b.path("snap-new.txt");
    write_snapshot_file(&old_path, (0..n).map(|id| snapshot_row(id, "")));
    // New snapshot: ~1% deleted, ~2% updated, ~1% appended.
    write_snapshot_file(
        &new_path,
        (0..n)
            .filter(|id| id % 97 != 0)
            .map(|id| snapshot_row(id, if id % 53 == 0 { "-v2" } else { "" }))
            .chain((n..n + n / 100).map(|id| snapshot_row(id, "-new"))),
    );
    let schema = snapshot_schema();
    let algo = DiffAlgorithm::SortMerge {
        run_size: (n as usize / 8).max(16),
    };
    let (seq_vd, _) =
        diff_snapshots("t", &schema, &[0], &old_path, &new_path, algo).expect("sequential diff");
    let mut all_identical = true;
    for workers in THREADS {
        let (res, elapsed) = time_once(|| {
            diff_snapshots_parallel("t", &schema, &[0], &old_path, &new_path, algo, workers)
        });
        let (vd, stats) = res.expect("parallel diff");
        all_identical &= vd == seq_vd;
        report.push_row(vec![
            "diff sort-merge".into(),
            "-".into(),
            workers.to_string(),
            format!(
                "{:.0} rows/s",
                stats.rows_read as f64 / elapsed.as_secs_f64().max(1e-9)
            ),
            "-".into(),
            "-".into(),
            fmt_duration(elapsed),
        ]);
    }
    let window = DiffAlgorithm::Window {
        size: (n as usize / 50).max(64),
    };
    let (win_vd, _) = diff_snapshots_parallel("t", &schema, &[0], &old_path, &new_path, window, 4)
        .expect("parallel window diff");

    // --- Checks -----------------------------------------------------------
    // Aggregate throughput of a lock-bound hit path cannot exceed 1x on a
    // single CPU no matter how the locks are split, so the 2x scaling claim
    // is only assertable where the host can physically run shards in
    // parallel. Report the measured ratio either way; on a small host the
    // check degrades to "sharding must not cost throughput".
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let ratio = sharded_8t.pages_per_sec / one_shard_8t.pages_per_sec.max(1e-9);
    report.note(format!(
        "host has {cores} core(s); 8-shard / 1-shard page-touch throughput at 8 threads = {ratio:.2}x"
    ));
    if cores >= 4 {
        report.check(
            "8-shard pool >= 2x page-touch throughput of the 1-shard baseline at 8 threads",
            ratio >= 2.0,
        );
    } else {
        report.check(
            "8-shard pool does not regress the 1-shard baseline at 8 threads (>= 2x waived: single-CPU host cannot scale aggregate lock throughput)",
            ratio >= 0.7,
        );
    }
    report.check(
        "scan cells ran on the hit path (hit rate > 0.99 everywhere)",
        cells_by_shards
            .iter()
            .all(|(_, cells)| cells.iter().all(|c| c.hit_rate > 0.99)),
    );
    report.check(
        "accesses spread across the 8 shards (max/mean <= 3)",
        cells_by_shards[1].1.iter().all(|c| c.balance <= 3.0),
    );
    report.check(
        "parallel sort-merge diff output identical to sequential at 1/2/4/8 workers",
        all_identical,
    );
    report.check(
        "parallel window diff matches the exact sort-merge delta",
        win_vd == seq_vd,
    );
    report
}
