//! **Experiment A** — anti-entropy audit cost and scoped-repair traffic
//! (DESIGN.md §14).
//!
//! Two questions, one table:
//!
//! * **Audit cost vs table size** — digesting a *consistent* mirror at
//!   growing row counts. The digest is O(target leaves), so its wire cost
//!   must stay flat while the table grows; the audit ships kilobytes where
//!   a reload would ship the table.
//! * **Repair traffic vs divergence** — corrupting a fixed fraction of
//!   warehouse rows (0.1%, 1%, 5%) and measuring what the scoped
//!   snapshot-differential repair actually ships through the queue,
//!   against the full-snapshot bytes a reload would cost. The strict gate:
//!   at 0.1% divergence the repair costs at most 5% of a full reload, and
//!   every audited table converges byte-equal.

use std::sync::Arc;
use std::time::Instant;

use delta_core::model::{DeltaBatch, DeltaOp, ValueDelta, ValueDeltaRecord};
use delta_engine::db::{Database, DbOptions, SyncMode};
use delta_warehouse::{audit_and_repair, AuditConfig, MirrorConfig, Pipeline, Warehouse};

use crate::report::{fmt_duration, TableReport};
use crate::workload::{insert_txn_sql, op_schema, Scale, SourceBuilder};

const TABLE: &str = "parts";

/// A source database holding `rows` rows of the op-schema table.
fn source(b: &SourceBuilder, label: &str, rows: usize) -> Arc<Database> {
    let dir = b.path(label);
    let _ = std::fs::remove_dir_all(&dir);
    let db = Database::open(DbOptions::new(dir)).expect("source db");
    db.session()
        .execute(&format!(
            "CREATE TABLE {TABLE} (id INT PRIMARY KEY, grp INT, val INT, filler VARCHAR)"
        ))
        .expect("create");
    let mut at = 0usize;
    while at < rows {
        let n = (rows - at).min(256);
        db.session()
            .execute(&insert_txn_sql(TABLE, at as i64, n))
            .expect("seed txn");
        at += n;
    }
    db
}

/// A warehouse mirroring the table, seeded to byte-equality by shipping the
/// source's rows as insert deltas through `pipe`.
fn mirrored(b: &SourceBuilder, label: &str, src: &Arc<Database>, pipe: &Pipeline) -> Warehouse {
    let dir = b.path(label);
    let _ = std::fs::remove_dir_all(&dir);
    let mut opts = DbOptions::new(dir);
    opts.wal_sync = SyncMode::Flush;
    let db = Database::open(opts).expect("warehouse db");
    let mut wh = Warehouse::new(db);
    wh.add_mirror(MirrorConfig::full(TABLE, op_schema()))
        .expect("mirror");
    let mut vd = ValueDelta::new(TABLE, op_schema());
    for (_, row) in src.scan_table(TABLE).expect("scan source") {
        vd.records.push(ValueDeltaRecord {
            op: DeltaOp::Insert,
            txn: 0,
            row,
        });
        if vd.records.len() == 512 {
            pipe.publish(&DeltaBatch::Value(vd)).expect("publish");
            vd = ValueDelta::new(TABLE, op_schema());
        }
    }
    if !vd.records.is_empty() {
        pipe.publish(&DeltaBatch::Value(vd)).expect("publish");
    }
    while pipe.queue().pending() > 0 {
        pipe.sync(&wh).expect("sync");
    }
    wh
}

fn pipeline(b: &SourceBuilder, label: &str) -> Pipeline {
    let qp = b.path(&format!("{label}.q"));
    for ext in [
        "q.ack",
        "dlq",
        "dlq.ack",
        "dlq.resolved",
        "audit",
        "audit.ack",
    ] {
        let _ = std::fs::remove_file(qp.with_extension(ext));
    }
    let _ = std::fs::remove_file(&qp);
    Pipeline::open(&qp).expect("pipeline")
}

/// Corrupt `count` evenly spaced warehouse rows (silent divergence).
fn corrupt(wh: &Warehouse, rows: usize, count: usize) {
    let step = (rows / count.max(1)).max(1);
    let mut s = wh.db().session();
    for i in 0..count {
        let id = (i * step) as i64;
        s.execute(&format!(
            "UPDATE {TABLE} SET val = val + 999983 WHERE id = {id}"
        ))
        .expect("corrupt");
    }
}

struct Cell {
    phase: &'static str,
    rows: usize,
    corrupted: usize,
    report: delta_warehouse::AuditReport,
    elapsed: std::time::Duration,
}

fn audit_cell(
    b: &SourceBuilder,
    phase: &'static str,
    label: &str,
    rows: usize,
    corrupted: usize,
) -> Cell {
    let src = source(b, &format!("src-{label}"), rows);
    let pipe = pipeline(b, &format!("queue-{label}"));
    let wh = mirrored(b, &format!("wh-{label}"), &src, &pipe);
    if corrupted > 0 {
        corrupt(&wh, rows, corrupted);
    }
    let started = Instant::now();
    let report =
        audit_and_repair(&src, &pipe, &wh, &[TABLE], &AuditConfig::default()).expect("audit");
    let elapsed = started.elapsed();
    Cell {
        phase,
        rows,
        corrupted,
        report,
        elapsed,
    }
}

/// Experiment A: audit cost scaling and scoped-repair traffic.
pub fn run(scale: &Scale) -> TableReport {
    let mut report = TableReport::new(
        "A",
        "Experiment A: anti-entropy audit cost and scoped-repair traffic",
        "digest cost stays flat as the table grows; at 0.1% divergence the scoped repair ships <= 5% of full-reload bytes; every audit converges byte-equal",
        &[
            "phase",
            "rows",
            "corrupted",
            "digest B",
            "leaves cmp",
            "ranges",
            "repair recs",
            "repair B",
            "snapshot B",
            "repair/reload",
            "time",
        ],
    );
    let b = SourceBuilder::new("expa");
    let base = scale.rows(4000);
    report.note(format!(
        "base table {base} rows; audit uses the default {} target leaves; repair = scoped \
         snapshot diff over diverged ranges shipped through the normal queue",
        AuditConfig::default().target_leaves
    ));

    // Phase 1: audit cost vs table size on consistent mirrors.
    let sizes = [base / 4, base, base * 4];
    let mut cost_cells = Vec::new();
    for (i, &rows) in sizes.iter().enumerate() {
        cost_cells.push(audit_cell(&b, "cost", &format!("size{i}"), rows, 0));
    }

    // Phase 2: repair traffic vs divergence fraction on the base size.
    let fractions: [(f64, &'static str); 3] = [(0.001, "0.1%"), (0.01, "1%"), (0.05, "5%")];
    let mut repair_cells = Vec::new();
    for (i, &(f, _)) in fractions.iter().enumerate() {
        let corrupted = ((base as f64 * f) as usize).max(1);
        repair_cells.push(audit_cell(
            &b,
            "repair",
            &format!("div{i}"),
            base,
            corrupted,
        ));
    }

    for cell in cost_cells.iter().chain(repair_cells.iter()) {
        let r = &cell.report;
        let t = &r.tables[0];
        let ratio = if r.full_snapshot_bytes > 0 {
            r.repair_bytes as f64 / r.full_snapshot_bytes as f64
        } else {
            0.0
        };
        report.push_row(vec![
            cell.phase.to_string(),
            cell.rows.to_string(),
            cell.corrupted.to_string(),
            r.digest_bytes.to_string(),
            t.leaves_compared.to_string(),
            t.diverged_ranges.len().to_string(),
            t.repair_records.to_string(),
            r.repair_bytes.to_string(),
            r.full_snapshot_bytes.to_string(),
            format!("{:.2}%", ratio * 100.0),
            fmt_duration(cell.elapsed),
        ]);
    }

    let all_converged = cost_cells
        .iter()
        .chain(repair_cells.iter())
        .all(|c| c.report.converged());
    report.check("every audit converges byte-equal", all_converged);
    report.check(
        "consistent mirrors need no repair",
        cost_cells
            .iter()
            .all(|c| !c.report.diverged() && c.report.repair_bytes == 0),
    );
    // The digest summarizes any table size in O(target_leaves) bytes: the
    // 16x table must not cost more than 2x the digest bytes of the 1x.
    let digest_small = cost_cells[0].report.digest_bytes.max(1);
    let digest_large = cost_cells[2].report.digest_bytes.max(1);
    report.check(
        "digest cost stays flat as the table grows 16x",
        digest_large <= digest_small * 2,
    );
    let strict = &repair_cells[0].report;
    report.check(
        "strict: repair <= 5% of full-reload bytes at 0.1% divergence",
        strict.repair_bytes * 20 <= strict.full_snapshot_bytes,
    );
    report.check(
        "repair traffic grows with divergence",
        repair_cells[0].report.repair_bytes < repair_cells[1].report.repair_bytes
            && repair_cells[1].report.repair_bytes < repair_cells[2].report.repair_bytes,
    );
    report
}
