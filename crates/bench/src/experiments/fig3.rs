//! **Figure 3** — Op-Delta extraction overhead on insert/delete/update.
//!
//! Same workload as Figure 2, but the capture mechanism is the Op-Delta
//! wrapper with a transactional **database-table log** (the head-to-head
//! comparison against triggers the paper sets up in §4.2). Expected shapes:
//!
//! * insert overhead substantial (paper: ~66 % on average) — the op carries
//!   the same volume as the inserted rows, but as one external SQL insert
//!   rather than per-row trigger dispatch, so it sits *below* the trigger's
//!   80–100 %;
//! * delete and update overheads tiny (paper: ~2.5 % / ~3.7 %) and flat —
//!   the op is ~70 bytes regardless of how many rows the transaction touches.

use delta_core::opdelta::{OpDeltaCapture, OpLogSink};

use crate::experiments::fig2::{measure_txn, table_rows, txn_sizes, OpKind};
use crate::report::{fmt_duration, fmt_pct, overhead_pct, TableReport};
use crate::workload::{Scale, SourceBuilder};

pub fn run(scale: &Scale) -> TableReport {
    let mut report = TableReport::new(
        "F3",
        "Figure 3: Op-Delta extraction overhead (transactional DB-table log)",
        "insert overhead large (~66%) but below the trigger's; delete/update overheads tiny (<10%) and flat in txn size",
        &["op", "txn size", "no capture", "with Op-Delta capture", "overhead"],
    );
    let rows = table_rows(scale);
    report.note(format!(
        "capture point: right before statement submission (§4.2); log stored transactionally in a database table; source table {rows} rows"
    ));
    let b = SourceBuilder::new("fig3");
    let mut overheads: std::collections::HashMap<(&'static str, usize), f64> = Default::default();
    for op in OpKind::all() {
        for &n in &txn_sizes(scale) {
            let t_base = {
                let db = b.db(false).expect("db");
                b.seeded_op_table(&db, "parts", rows).expect("seed");
                let mut s = db.session();
                measure_txn(
                    &db,
                    |sql| {
                        s.execute(sql).expect("stmt");
                    },
                    op,
                    n,
                    rows,
                )
            };
            let t_cap = {
                let db = b.db(false).expect("db");
                b.seeded_op_table(&db, "parts", rows).expect("seed");
                let mut cap = OpDeltaCapture::new(db.session(), OpLogSink::Table("op_log".into()))
                    .expect("capture");
                measure_txn(
                    &db,
                    |sql| {
                        cap.execute(sql).expect("stmt");
                    },
                    op,
                    n,
                    rows,
                )
            };
            let ovh = overhead_pct(t_base, t_cap);
            overheads.insert((op.label(), n), ovh);
            report.push_row(vec![
                op.label().to_string(),
                n.to_string(),
                fmt_duration(t_base),
                fmt_duration(t_cap),
                fmt_pct(ovh),
            ]);
        }
    }
    let sizes = txn_sizes(scale);
    let mean = |op: &'static str| {
        sizes.iter().map(|n| overheads[&(op, *n)]).sum::<f64>() / sizes.len() as f64
    };
    report.check(
        "mean insert capture overhead is substantial (paper: ~66%)",
        mean("insert") > 25.0,
    );
    report.check(
        "mean delete capture overhead is small (paper: ~2.5%)",
        mean("delete").abs() < 30.0,
    );
    report.check(
        "mean update capture overhead is small (paper: ~3.7%)",
        mean("update").abs() < 30.0,
    );
    report
}
