//! **Table 2** — timestamp-based delta extraction.
//!
//! The paper extracts 100 MB–1 GB deltas from a 1 GB / 10 M-row table three
//! ways: to an operating-system file, to a local delta table, and to a table
//! followed by Export. Scaled 1/1000 (10 k-row source), same sweep, same
//! expected ordering: file << table << table + Export, with table output
//! roughly 2–3x file output (the full transactional write path vs a
//! sequential file write).

use delta_core::timestamp::TimestampExtractor;

use crate::report::{fmt_duration, TableReport};
use crate::workload::{time_once, Scale, SourceBuilder};

/// Source table rows (the paper's 10 M, scaled).
pub fn source_rows(scale: &Scale) -> usize {
    scale.rows(10_000)
}

/// (paper label, delta rows) sweep — deltas are fractions of the table.
pub fn sweep(scale: &Scale) -> Vec<(String, usize)> {
    let total = source_rows(scale);
    [
        (100u32, 10usize),
        (200, 20),
        (400, 40),
        (600, 60),
        (800, 80),
        (1000, 100),
    ]
    .iter()
    .map(|&(mb, pct)| (format!("{mb}M"), total * pct / 100))
    .collect()
}

pub fn run(scale: &Scale) -> TableReport {
    let mut report = TableReport::new(
        "T2",
        "Table 2: time stamp based delta extraction",
        "file output << table output << table output + Export; table ~2-3x file",
        &[
            "paper size",
            "delta rows",
            "File output",
            "Table output",
            "Table output + Export",
        ],
    );
    let b = SourceBuilder::new("table2");
    let db = b.db(false).expect("open db");
    let total = source_rows(scale);
    report.note(format!(
        "source table: {total} rows of 100 bytes (paper: 10M rows / 1 GB); no index on last_modified (table scans, as in §3.1.1)"
    ));
    b.seeded_ts_table(&db, "parts", total).expect("seed");
    let x = TimestampExtractor::new("parts", "last_modified");
    let mut last = None;

    for (label, delta_rows) in sweep(scale) {
        // Touch exactly `delta_rows` rows past a fresh watermark (the engine
        // re-stamps last_modified on every update).
        let watermark = db.peek_clock();
        db.session()
            .execute(&format!(
                "UPDATE parts SET grp = grp WHERE id < {delta_rows}"
            ))
            .expect("touch rows");
        db.pool().flush_and_sync_all().expect("sync");

        let file_path = b.path(&format!("ts_{label}.txt"));
        let (r, t_file) = time_once(|| x.extract_to_file(&db, watermark, &file_path));
        assert_eq!(r.expect("file output") as usize, delta_rows);

        let table_target = format!("tsd_{label}");
        let (r, t_table) = time_once(|| x.extract_to_table(&db, watermark, &table_target));
        assert_eq!(r.expect("table output") as usize, delta_rows);

        let table_target2 = format!("tsd2_{label}");
        let exp_path = b.path(&format!("ts_{label}.exp"));
        let (r, t_table_exp) =
            time_once(|| x.extract_to_table_and_export(&db, watermark, &table_target2, &exp_path));
        assert_eq!(r.expect("table+export") as usize, delta_rows);

        report.push_row(vec![
            label,
            delta_rows.to_string(),
            fmt_duration(t_file),
            fmt_duration(t_table),
            fmt_duration(t_table_exp),
        ]);
        last = Some((t_file, t_table, t_table_exp));
    }
    if let Some((f, t, te)) = last {
        report.check("file output < table output at the largest delta", f < t);
        report.check("table output <= table+Export at the largest delta", t <= te);
    }
    report
}
