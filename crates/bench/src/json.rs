//! Minimal JSON encoder/decoder for report persistence.
//!
//! The offline build has no serde, so reports serialize through this small
//! value model. It supports the full JSON grammar the reports need: objects,
//! arrays, strings (with escapes), integers/floats, booleans, and null.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as f64, adequate for report data).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; BTreeMap keeps key order deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Look up `key`, if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Render with two-space indentation (stable across runs).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_in);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < map.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes: Vec<char> = text.chars().collect();
        let mut p = Parser {
            chars: &bytes,
            at: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.at != p.chars.len() {
            return Err(format!("trailing garbage at char {}", p.at));
        }
        Ok(v)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    chars: &'a [char],
    at: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.chars.get(self.at).is_some_and(|c| c.is_whitespace()) {
            self.at += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.at).copied()
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected '{c}' at char {}", self.at))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        for c in word.chars() {
            self.expect(c)?;
        }
        Ok(value)
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some('n') => self.literal("null", Json::Null),
            Some('t') => self.literal("true", Json::Bool(true)),
            Some('f') => self.literal("false", Json::Bool(false)),
            Some('"') => self.string().map(Json::Str),
            Some('[') => {
                self.at += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(']') {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(',') => self.at += 1,
                        Some(']') => {
                            self.at += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at char {}", self.at)),
                    }
                }
            }
            Some('{') => {
                self.at += 1;
                let mut map = BTreeMap::new();
                self.skip_ws();
                if self.peek() == Some('}') {
                    self.at += 1;
                    return Ok(Json::Obj(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(':')?;
                    map.insert(key, self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(',') => self.at += 1,
                        Some('}') => {
                            self.at += 1;
                            return Ok(Json::Obj(map));
                        }
                        _ => return Err(format!("expected ',' or '}}' at char {}", self.at)),
                    }
                }
            }
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at char {}", self.at)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            let c = self
                .peek()
                .ok_or_else(|| "unterminated string".to_string())?;
            self.at += 1;
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let e = self.peek().ok_or_else(|| "dangling escape".to_string())?;
                    self.at += 1;
                    match e {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let h = self
                                    .peek()
                                    .and_then(|c| c.to_digit(16))
                                    .ok_or_else(|| "bad \\u escape".to_string())?;
                                self.at += 1;
                                code = code * 16 + h;
                            }
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "bad \\u code point".to_string())?,
                            );
                        }
                        other => return Err(format!("bad escape '\\{other}'")),
                    }
                }
                c => out.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        if self.peek() == Some('-') {
            self.at += 1;
        }
        while self.peek().is_some_and(|c| {
            c.is_ascii_digit() || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-'
        }) {
            self.at += 1;
        }
        let text: String = self.chars[start..self.at].iter().collect();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number '{text}': {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let mut obj = BTreeMap::new();
        obj.insert("id".into(), Json::Str("T1 \"quoted\" \\ \n".into()));
        obj.insert("n".into(), Json::Num(42.0));
        obj.insert("x".into(), Json::Num(1.5));
        obj.insert("ok".into(), Json::Bool(true));
        obj.insert("none".into(), Json::Null);
        obj.insert(
            "rows".into(),
            Json::Arr(vec![Json::Arr(vec![]), Json::Str("χ unicode".into())]),
        );
        let doc = Json::Obj(obj);
        let text = doc.to_pretty();
        assert_eq!(Json::parse(&text).expect("parses"), doc);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"abc").is_err());
        assert!(Json::parse("{} extra").is_err());
    }
}
