//! `dlq` — inspect and drain a pipeline's dead-letter queue.
//!
//! ```text
//! dlq <queue-path> list            # unresolved entries (seq, error, summary)
//! dlq <queue-path> all             # every parked entry, resolved included
//! dlq <queue-path> resolve <seq>   # mark an entry handled (keeps evidence)
//! dlq <queue-path> requeue <seq>   # replay the payload through the queue
//! ```
//!
//! `<queue-path>` is the pipeline's spool file; the DLQ and its resolution
//! sidecar live next to it (`<queue>.dlq`, `<queue>.dlq.resolved`). The
//! anti-entropy auditor resolves superseded entries automatically; this
//! tool is the operator's manual path for everything else.

use delta_core::model::DeltaBatch;
use delta_warehouse::{Pipeline, QuarantinedDelta};

fn die(msg: &str) -> ! {
    eprintln!("dlq: {msg}");
    std::process::exit(2);
}

/// One line per entry: sequence, decoded summary, recorded apply error.
fn describe(entry: &QuarantinedDelta) {
    let what = match DeltaBatch::from_bytes(&entry.payload) {
        Ok(DeltaBatch::Value(vd)) => {
            format!(
                "value delta: table '{}', {} record(s)",
                vd.table,
                vd.records.len()
            )
        }
        Ok(DeltaBatch::Op(od)) => {
            format!("op delta: txn {}, {} statement(s)", od.txn, od.ops.len())
        }
        Err(e) => format!("undecodable payload ({} bytes): {e}", entry.payload.len()),
    };
    println!("seq {:>6}  {}", entry.index, what);
    println!("            error: {}", entry.error);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (queue_path, cmd) = match args.as_slice() {
        [q, rest @ ..] if !rest.is_empty() => (q.clone(), rest.to_vec()),
        _ => die("usage: dlq <queue-path> [list | all | resolve <seq> | requeue <seq>]"),
    };
    let pipe = Pipeline::open(&queue_path)
        .unwrap_or_else(|e| die(&format!("opening queue {queue_path}: {e}")));
    let parse_seq = |s: Option<&String>| -> u64 {
        s.and_then(|s| s.parse().ok())
            .unwrap_or_else(|| die("expected a sequence number"))
    };
    match cmd[0].as_str() {
        "list" | "all" => {
            let entries = if cmd[0] == "all" {
                pipe.quarantined()
            } else {
                pipe.dlq_entries()
            }
            .unwrap_or_else(|e| die(&format!("reading DLQ: {e}")));
            if entries.is_empty() {
                println!("dlq: empty");
                return;
            }
            for entry in &entries {
                describe(entry);
            }
            println!("{} entr(ies)", entries.len());
        }
        "resolve" => {
            let seq = parse_seq(cmd.get(1));
            match pipe.resolve_dlq(seq) {
                Ok(true) => println!("seq {seq} resolved"),
                Ok(false) => println!("seq {seq} was already resolved or unknown"),
                Err(e) => die(&format!("resolving {seq}: {e}")),
            }
        }
        "requeue" => {
            let seq = parse_seq(cmd.get(1));
            match pipe.requeue_dlq(seq) {
                Ok(Some(new_seq)) => println!("seq {seq} requeued as seq {new_seq}"),
                Ok(None) => println!("seq {seq} not found among unresolved entries"),
                Err(e) => die(&format!("requeueing {seq}: {e}")),
            }
        }
        other => die(&format!("unknown subcommand {other}")),
    }
}
