//! `dlq` — inspect and drain a pipeline's dead-letter queue.
//!
//! ```text
//! dlq <queue-path> list            # unresolved entries (seq, error, summary)
//! dlq <queue-path> all             # every parked entry, resolved included
//! dlq <queue-path> resolve <seq>   # mark an entry handled (keeps evidence)
//! dlq <queue-path> requeue <seq>   # replay the payload through the queue
//! ```
//!
//! `<queue-path>` is the pipeline's spool file; the DLQ and its resolution
//! sidecar live next to it (`<queue>.dlq`, `<queue>.dlq.resolved`). The
//! anti-entropy auditor resolves superseded entries automatically; this
//! tool is the operator's manual path for everything else.
//!
//! Exit codes (scriptable):
//!
//! | code | meaning                                              |
//! |------|------------------------------------------------------|
//! | 0    | success                                              |
//! | 2    | usage or I/O error                                   |
//! | 3    | no queue: the spool file does not exist              |
//! | 4    | no DLQ entries (nothing parked / nothing unresolved) |
//! | 5    | bad sequence id (not a number, or not in the DLQ)    |

use delta_core::model::DeltaBatch;
use delta_warehouse::{Pipeline, QuarantinedDelta};

const EXIT_USAGE: i32 = 2;
const EXIT_NO_QUEUE: i32 = 3;
const EXIT_NO_ENTRIES: i32 = 4;
const EXIT_BAD_SEQ: i32 = 5;

fn bail(code: i32, msg: &str) -> ! {
    eprintln!("dlq: {msg}");
    std::process::exit(code);
}

fn die(msg: &str) -> ! {
    bail(EXIT_USAGE, msg);
}

/// One line per entry: sequence, decoded summary, recorded apply error.
fn describe(entry: &QuarantinedDelta) {
    let what = match DeltaBatch::from_bytes(&entry.payload) {
        Ok(DeltaBatch::Value(vd)) => {
            format!(
                "value delta: table '{}', {} record(s)",
                vd.table,
                vd.records.len()
            )
        }
        Ok(DeltaBatch::Op(od)) => {
            format!("op delta: txn {}, {} statement(s)", od.txn, od.ops.len())
        }
        Err(e) => format!("undecodable payload ({} bytes): {e}", entry.payload.len()),
    };
    println!("seq {:>6}  {}", entry.index, what);
    println!("            error: {}", entry.error);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (queue_path, cmd) = match args.as_slice() {
        [q, rest @ ..] if !rest.is_empty() => (q.clone(), rest.to_vec()),
        _ => die("usage: dlq <queue-path> [list | all | resolve <seq> | requeue <seq>]"),
    };
    if !std::path::Path::new(&queue_path).exists() {
        bail(
            EXIT_NO_QUEUE,
            &format!("no queue at {queue_path} (spool file does not exist)"),
        );
    }
    let pipe = Pipeline::open(&queue_path)
        .unwrap_or_else(|e| die(&format!("opening queue {queue_path}: {e}")));
    let parse_seq = |s: Option<&String>| -> u64 {
        s.and_then(|s| s.parse().ok()).unwrap_or_else(|| {
            bail(
                EXIT_BAD_SEQ,
                &format!(
                    "bad sequence id {:?} (expected a number)",
                    s.map(String::as_str).unwrap_or("<missing>")
                ),
            )
        })
    };
    match cmd[0].as_str() {
        "list" | "all" => {
            let entries = if cmd[0] == "all" {
                pipe.quarantined()
            } else {
                pipe.dlq_entries()
            }
            .unwrap_or_else(|e| die(&format!("reading DLQ: {e}")));
            if entries.is_empty() {
                bail(
                    EXIT_NO_ENTRIES,
                    if cmd[0] == "all" {
                        "no DLQ entries (nothing was ever parked)"
                    } else {
                        "no unresolved DLQ entries"
                    },
                );
            }
            for entry in &entries {
                describe(entry);
            }
            println!("{} entr(ies)", entries.len());
        }
        "resolve" => {
            let seq = parse_seq(cmd.get(1));
            match pipe.resolve_dlq(seq) {
                Ok(true) => println!("seq {seq} resolved"),
                Ok(false) => bail(
                    EXIT_BAD_SEQ,
                    &format!("seq {seq} is not an unresolved DLQ entry"),
                ),
                Err(e) => die(&format!("resolving {seq}: {e}")),
            }
        }
        "requeue" => {
            let seq = parse_seq(cmd.get(1));
            match pipe.requeue_dlq(seq) {
                Ok(Some(new_seq)) => println!("seq {seq} requeued as seq {new_seq}"),
                Ok(None) => bail(
                    EXIT_BAD_SEQ,
                    &format!("seq {seq} not found among unresolved entries"),
                ),
                Err(e) => die(&format!("requeueing {seq}: {e}")),
            }
        }
        other => die(&format!("unknown subcommand {other}")),
    }
}
