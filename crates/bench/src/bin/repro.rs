//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro all                  # every experiment at the default (1/1000) scale
//! repro table1 fig2          # a subset
//! repro all --scale 2        # double the row counts
//! repro all --out results/   # also write <id>.json files
//! repro all --strict         # exit nonzero if any shape check fails
//! repro --list               # experiment ids
//! ```

use std::time::Instant;

use delta_bench::experiments;
use delta_bench::workload::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut scale = 1.0f64;
    let mut out_dir: Option<String> = None;
    let mut strict = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list" => {
                for id in experiments::all_ids() {
                    println!("{id}");
                }
                return;
            }
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number"));
            }
            "--strict" => strict = true,
            "--out" => {
                i += 1;
                out_dir = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--out needs a directory")),
                );
            }
            "all" => {
                ids = experiments::all_ids()
                    .iter()
                    .map(|s| s.to_string())
                    .collect()
            }
            other if other.starts_with('-') => die(&format!("unknown flag {other}")),
            other => ids.push(other.to_string()),
        }
        i += 1;
    }
    if ids.is_empty() {
        eprintln!(
            "usage: repro [all | <experiment>...] [--scale N] [--out DIR] [--strict] [--list]"
        );
        eprintln!("experiments: {}", experiments::all_ids().join(", "));
        std::process::exit(2);
    }

    let scale = Scale::new(scale);
    println!(
        "# DeltaForge reproduction run (scale factor {}, {} experiment(s))\n",
        scale.factor,
        ids.len()
    );
    let started = Instant::now();
    let mut passed = 0usize;
    let mut failed: Vec<String> = Vec::new();
    for id in &ids {
        let t0 = Instant::now();
        match experiments::run(id, &scale) {
            Some(report) => {
                print!("{}", report.to_markdown());
                println!("_generated in {:.1?}_\n", t0.elapsed());
                for c in &report.checks {
                    if c.pass {
                        passed += 1;
                    } else {
                        failed.push(format!("{}: {}", report.id, c.name));
                    }
                }
                if let Some(dir) = &out_dir {
                    report.save_json(dir).expect("write json");
                }
            }
            None => die(&format!("unknown experiment '{id}'")),
        }
    }
    println!(
        "# done in {:.1?} — shape checks: {passed} passed, {} failed",
        started.elapsed(),
        failed.len()
    );
    for f in &failed {
        println!("#   FAIL {f}");
    }
    if !failed.is_empty() {
        println!("# (micro-scale cells are noisy; re-run failing experiments on an idle machine)");
        if strict {
            std::process::exit(1);
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2);
}
