//! `torture` — seeded crash–recover–resync convergence driver.
//!
//! ```text
//! torture                          # default seed, 20 cycles
//! torture --seed 7 --cycles 50     # more cycles under another schedule
//! torture --txns 16                # heavier per-cycle workload
//! torture --sync-workers 4         # parallel staged apply scheduler
//! torture --audit                  # inject silent divergence, audit + repair
//! torture --pressure               # shrinking disk budgets + injected stalls
//! ```
//!
//! Exits nonzero on any convergence or exactly-once violation, printing the
//! master seed so the failing schedule replays exactly.

use delta_bench::torture::{self, TortureConfig};

fn die(msg: &str) -> ! {
    eprintln!("torture: {msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = TortureConfig::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        match flag {
            "--seed" | "--cycles" | "--txns" | "--sync-workers" => {
                i += 1;
                let v: u64 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die(&format!("{flag} needs a number")));
                match flag {
                    "--seed" => cfg.seed = v,
                    "--cycles" => cfg.cycles = v,
                    "--sync-workers" => cfg.sync_workers = v as usize,
                    _ => cfg.txns = v,
                }
            }
            "--audit" => cfg.audit = true,
            "--pressure" => cfg.pressure = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: torture [--seed N] [--cycles N] [--txns N] [--sync-workers N] \
                     [--audit] [--pressure]"
                );
                return;
            }
            other => die(&format!("unknown argument {other}")),
        }
        i += 1;
    }

    println!(
        "torture: seed {} | {} cycles x {} txns | {} sync worker(s){}{}",
        cfg.seed,
        cfg.cycles,
        cfg.txns,
        cfg.sync_workers,
        if cfg.audit { " | audit mode" } else { "" },
        if cfg.pressure { " | pressure mode" } else { "" },
    );
    match torture::run(&cfg) {
        Ok(stats) => println!("torture: CONVERGED — {}", stats.summary()),
        Err(msg) => {
            eprintln!("torture: FAILED — {msg}");
            std::process::exit(1);
        }
    }
}
