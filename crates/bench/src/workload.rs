//! Workload construction: the paper's tables and transactions, scaled.
//!
//! The paper's experiments use **100-byte records**; the source table for the
//! timestamp experiments holds 10 million of them (1 GB), the trigger
//! experiments use a 100,000-row table, and transaction sizes sweep
//! 10–10,000. We keep the record size and the sweep shapes and scale row
//! counts down ~1000× by default (the harness exposes `--scale` to grow
//! them); DESIGN.md §2 records why the shapes are scale-invariant.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use delta_engine::db::{Database, DbOptions, SyncMode};
use delta_engine::EngineResult;
use delta_storage::{Column, DataType, Schema};

/// Scaling knob for every experiment.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Multiplies base row counts (1.0 = the ~1000×-reduced defaults).
    pub factor: f64,
}

impl Scale {
    pub fn new(factor: f64) -> Scale {
        Scale { factor }
    }

    /// Scale a base count, at least 1.
    pub fn rows(&self, base: usize) -> usize {
        ((base as f64 * self.factor) as usize).max(1)
    }
}

impl Default for Scale {
    fn default() -> Scale {
        Scale { factor: 1.0 }
    }
}

/// Filler length making an encoded row exactly ~100 bytes for the
/// 4-column benchmark schema (header 2 + three 9-byte numerics + 5+len).
pub const FILLER_LEN: usize = 66;

/// The timestamped source schema (timestamp/snapshot experiments).
/// `last_modified` is auto-stamped by the engine.
pub fn ts_schema() -> Schema {
    Schema::new(vec![
        Column::new("id", DataType::Int).primary_key(),
        Column::new("grp", DataType::Int),
        Column::new("filler", DataType::Varchar),
        Column::new("last_modified", DataType::Timestamp),
    ])
    .unwrap()
}

/// The operation-experiment schema (trigger / Op-Delta / warehouse
/// experiments): no auto-stamped column, so replayed operations are
/// bit-identical at source and warehouse.
pub fn op_schema() -> Schema {
    Schema::new(vec![
        Column::new("id", DataType::Int).primary_key(),
        Column::new("grp", DataType::Int),
        Column::new("val", DataType::Int),
        Column::new("filler", DataType::Varchar),
    ])
    .unwrap()
}

/// Deterministic filler text for row `id`.
pub fn filler(id: i64) -> String {
    let mut s = format!("row-{id:010}-");
    while s.len() < FILLER_LEN {
        s.push((b'a' + (s.len() % 26) as u8) as char);
    }
    s.truncate(FILLER_LEN);
    s
}

/// Builds benchmark source databases in a scratch directory.
pub struct SourceBuilder {
    root: PathBuf,
    counter: std::cell::Cell<u32>,
}

impl SourceBuilder {
    /// A builder rooted in a fresh scratch directory.
    pub fn new(label: &str) -> SourceBuilder {
        let root =
            std::env::temp_dir().join(format!("deltaforge-bench-{}-{label}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        SourceBuilder {
            root,
            counter: std::cell::Cell::new(0),
        }
    }

    /// The scratch directory.
    pub fn root(&self) -> &std::path::Path {
        &self.root
    }

    /// A fresh path inside the scratch directory.
    pub fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    /// Open a fresh database with benchmark-friendly options.
    pub fn db(&self, archive: bool) -> EngineResult<Arc<Database>> {
        let n = self.counter.get();
        self.counter.set(n + 1);
        let mut opts = DbOptions::new(self.root.join(format!("db-{n}")));
        opts.wal_sync = SyncMode::Flush;
        opts.archive_mode = archive;
        opts.buffer_pool_pages = 4096; // 32 MiB: hot set cached, like the paper's 128 MB box
        opts.lock_timeout = Duration::from_secs(30);
        Database::open(opts)
    }

    /// Create `table` with the timestamped schema (`CREATE TABLE` SQL path so
    /// the auto-timestamp option is attached) and seed `rows` rows.
    pub fn seeded_ts_table(
        &self,
        db: &Arc<Database>,
        table: &str,
        rows: usize,
    ) -> EngineResult<()> {
        let mut s = db.session();
        s.execute(&format!(
            "CREATE TABLE {table} (id INT PRIMARY KEY, grp INT, filler VARCHAR, last_modified TIMESTAMP)"
        ))?;
        seed_rows(db, table, 0, rows, |id| {
            format!("({id}, {id}, '{}', NULL)", filler(id))
        })
    }

    /// Create `table` with the op schema and seed `rows` rows
    /// (`val` starts at 0, `grp` = id).
    pub fn seeded_op_table(
        &self,
        db: &Arc<Database>,
        table: &str,
        rows: usize,
    ) -> EngineResult<()> {
        let mut s = db.session();
        s.execute(&format!(
            "CREATE TABLE {table} (id INT PRIMARY KEY, grp INT, val INT, filler VARCHAR)"
        ))?;
        seed_rows(db, table, 0, rows, |id| {
            format!("({id}, {id}, 0, '{}')", filler(id))
        })
    }
}

/// Seed `[start, start+rows)` ids via multi-row INSERT statements.
pub fn seed_rows(
    db: &Arc<Database>,
    table: &str,
    start: usize,
    rows: usize,
    value_tuple: impl Fn(i64) -> String,
) -> EngineResult<()> {
    const BATCH: usize = 500;
    let mut s = db.session();
    let mut id = start;
    while id < start + rows {
        let end = (id + BATCH).min(start + rows);
        let values: Vec<String> = (id..end).map(|i| value_tuple(i as i64)).collect();
        s.execute(&format!("INSERT INTO {table} VALUES {}", values.join(", ")))?;
        id = end;
    }
    Ok(())
}

/// Build the text of one multi-row INSERT transaction of `n` fresh rows
/// starting at `first_id` (op schema).
pub fn insert_txn_sql(table: &str, first_id: i64, n: usize) -> String {
    let values: Vec<String> = (first_id..first_id + n as i64)
        .map(|id| format!("({id}, {id}, 0, '{}')", filler(id)))
        .collect();
    format!("INSERT INTO {table} VALUES {}", values.join(", "))
}

/// An UPDATE touching exactly the `n` rows with `grp` in `[a, a+n)` — a
/// range predicate on the unindexed `grp` column, forcing the table scan the
/// paper's update transactions perform.
pub fn update_txn_sql(table: &str, a: i64, n: usize) -> String {
    format!(
        "UPDATE {table} SET val = val + 1 WHERE grp >= {a} AND grp < {}",
        a + n as i64
    )
}

/// A DELETE touching exactly the `n` rows with `grp` in `[a, a+n)`.
pub fn delete_txn_sql(table: &str, a: i64, n: usize) -> String {
    format!(
        "DELETE FROM {table} WHERE grp >= {a} AND grp < {}",
        a + n as i64
    )
}

/// Time `f` once.
pub fn time_once<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

/// Average duration of `reps` calls of `f(rep)`.
pub fn time_avg(reps: usize, mut f: impl FnMut(usize)) -> Duration {
    assert!(reps > 0);
    let start = Instant::now();
    for rep in 0..reps {
        f(rep);
    }
    start.elapsed() / reps as u32
}

/// Repetitions that keep small-n measurements stable without letting big-n
/// runs crawl.
pub fn reps_for(n: usize) -> usize {
    (2000 / n.max(1)).clamp(1, 20)
}

#[cfg(test)]
mod tests {
    use super::*;
    use delta_storage::Row;

    #[test]
    fn rows_encode_to_about_100_bytes() {
        let row = Row::new(vec![
            delta_storage::Value::Int(123),
            delta_storage::Value::Int(123),
            delta_storage::Value::Int(0),
            delta_storage::Value::Str(filler(123)),
        ]);
        let size = row.to_bytes().len();
        assert!(
            (95..=105).contains(&size),
            "op row must be ~100 bytes, got {size}"
        );
    }

    #[test]
    fn filler_is_deterministic_and_fixed_length() {
        assert_eq!(filler(42), filler(42));
        assert_eq!(filler(1).len(), FILLER_LEN);
        assert_eq!(filler(9_999_999_999).len(), FILLER_LEN);
        assert_ne!(filler(1), filler(2));
    }

    #[test]
    fn seeded_tables_have_requested_rows() {
        let b = SourceBuilder::new("workload-test");
        let db = b.db(false).unwrap();
        b.seeded_op_table(&db, "parts", 1234).unwrap();
        assert_eq!(db.row_count("parts").unwrap(), 1234);
        let db2 = b.db(false).unwrap();
        b.seeded_ts_table(&db2, "parts", 77).unwrap();
        assert_eq!(db2.row_count("parts").unwrap(), 77);
        // Auto-timestamps were stamped.
        let r = db2
            .session()
            .execute("SELECT * FROM parts WHERE last_modified IS NULL")
            .unwrap();
        assert!(r.rows.is_empty());
    }

    #[test]
    fn txn_sql_touches_exactly_n_rows() {
        let b = SourceBuilder::new("workload-txn");
        let db = b.db(false).unwrap();
        b.seeded_op_table(&db, "parts", 100).unwrap();
        let mut s = db.session();
        let r = s.execute(&update_txn_sql("parts", 10, 25)).unwrap();
        assert_eq!(r.affected, 25);
        let r = s.execute(&delete_txn_sql("parts", 50, 10)).unwrap();
        assert_eq!(r.affected, 10);
        let r = s.execute(&insert_txn_sql("parts", 1000, 7)).unwrap();
        assert_eq!(r.affected, 7);
    }

    #[test]
    fn scale_scales() {
        assert_eq!(Scale::new(2.0).rows(100), 200);
        assert_eq!(Scale::new(0.001).rows(100), 1);
        assert_eq!(Scale::default().rows(100), 100);
    }

    #[test]
    fn reps_bounds() {
        assert_eq!(reps_for(1), 20);
        assert_eq!(reps_for(10_000), 1);
    }
}
