//! # delta-bench
//!
//! The reproduction harness: one module per table/figure of the paper (plus
//! the in-text experiments and the DESIGN.md ablations), a workload builder
//! that recreates the paper's 100-byte-record tables at a configurable scale,
//! and a reporting layer that prints paper-style tables and persists JSON for
//! `EXPERIMENTS.md`.
//!
//! Run everything with the `repro` binary:
//!
//! ```text
//! cargo run --release -p delta-bench --bin repro -- all
//! cargo run --release -p delta-bench --bin repro -- table1 --scale 2
//! ```
//!
//! Criterion benches under `benches/` wrap the same experiment functions at
//! reduced sizes for statistically sampled micro-comparisons.

pub mod experiments;
pub mod json;
pub mod report;
pub mod torture;
pub mod workload;

pub use report::TableReport;
pub use workload::{Scale, SourceBuilder};
