//! Recursive-descent parser with precedence climbing for expressions.

use std::fmt;

use delta_storage::{DataType, Value};

use crate::ast::{AggFunc, BinOp, ColumnDef, Expr, OrderKey, SelectItem, Statement, UnOp};
use crate::lexer::{tokenize, LexError, Token};

/// Parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub message: String,
}

impl ParseError {
    fn new(message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::new(e.to_string())
    }
}

/// Parse a single SQL statement (an optional trailing `;` is allowed).
pub fn parse_statement(sql: &str) -> Result<Statement, ParseError> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat(&Token::Semicolon);
    p.expect_end()?;
    Ok(stmt)
}

/// Parse a standalone expression (used by view definitions and tests).
pub fn parse_expression(sql: &str) -> Result<Expr, ParseError> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr(0)?;
    p.expect_end()?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Consume `t` if it is next; report whether it was.
    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Consume a keyword (case-insensitive identifier) if next.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(ParseError::new(format!(
                "expected {kw}, found {}",
                self.describe_next()
            )))
        }
    }

    fn expect(&mut self, t: &Token) -> Result<(), ParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(ParseError::new(format!(
                "expected {t}, found {}",
                self.describe_next()
            )))
        }
    }

    fn expect_end(&self) -> Result<(), ParseError> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(ParseError::new(format!(
                "unexpected trailing input: {}",
                self.describe_next()
            )))
        }
    }

    fn describe_next(&self) -> String {
        match self.peek() {
            Some(t) => format!("'{t}'"),
            None => "end of input".into(),
        }
    }

    fn identifier(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(ParseError::new(format!(
                "expected identifier, found {}",
                other
                    .map(|t| format!("'{t}'"))
                    .unwrap_or("end of input".into())
            ))),
        }
    }

    fn statement(&mut self) -> Result<Statement, ParseError> {
        if self.eat_kw("CREATE") {
            if self.eat_kw("TABLE") {
                return self.create_table();
            }
            let unique = self.eat_kw("UNIQUE");
            self.expect_kw("INDEX")?;
            let name = self.identifier()?;
            self.expect_kw("ON")?;
            let table = self.identifier()?;
            self.expect(&Token::LParen)?;
            let column = self.identifier()?;
            self.expect(&Token::RParen)?;
            return Ok(Statement::CreateIndex {
                name,
                table,
                column,
                unique,
            });
        }
        if self.eat_kw("DROP") {
            if self.eat_kw("TABLE") {
                let name = self.identifier()?;
                return Ok(Statement::DropTable { name });
            }
            self.expect_kw("INDEX")?;
            let name = self.identifier()?;
            return Ok(Statement::DropIndex { name });
        }
        if self.eat_kw("INSERT") {
            self.expect_kw("INTO")?;
            return self.insert();
        }
        if self.eat_kw("UPDATE") {
            return self.update();
        }
        if self.eat_kw("DELETE") {
            self.expect_kw("FROM")?;
            return self.delete();
        }
        if self.eat_kw("SELECT") {
            return self.select();
        }
        if self.eat_kw("BEGIN") {
            return Ok(Statement::Begin);
        }
        if self.eat_kw("COMMIT") {
            return Ok(Statement::Commit);
        }
        if self.eat_kw("ROLLBACK") || self.eat_kw("ABORT") {
            return Ok(Statement::Rollback);
        }
        Err(ParseError::new(format!(
            "expected a statement, found {}",
            self.describe_next()
        )))
    }

    fn create_table(&mut self) -> Result<Statement, ParseError> {
        let name = self.identifier()?;
        self.expect(&Token::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col_name = self.identifier()?;
            let ty_name = self.identifier()?;
            let data_type = DataType::parse(&ty_name)
                .ok_or_else(|| ParseError::new(format!("unknown type '{ty_name}'")))?;
            // Optional length like VARCHAR(40) — accepted and ignored.
            if self.eat(&Token::LParen) {
                match self.next() {
                    Some(Token::Int(_)) => {}
                    _ => return Err(ParseError::new("expected length after '('")),
                }
                self.expect(&Token::RParen)?;
            }
            let mut def = ColumnDef {
                name: col_name,
                data_type,
                not_null: false,
                primary_key: false,
            };
            loop {
                if self.eat_kw("PRIMARY") {
                    self.expect_kw("KEY")?;
                    def.primary_key = true;
                    def.not_null = true;
                } else if self.eat_kw("NOT") {
                    self.expect_kw("NULL")?;
                    def.not_null = true;
                } else {
                    break;
                }
            }
            columns.push(def);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        Ok(Statement::CreateTable { name, columns })
    }

    fn insert(&mut self) -> Result<Statement, ParseError> {
        let table = self.identifier()?;
        let columns = if self.eat(&Token::LParen) {
            let mut cols = vec![self.identifier()?];
            while self.eat(&Token::Comma) {
                cols.push(self.identifier()?);
            }
            self.expect(&Token::RParen)?;
            Some(cols)
        } else {
            None
        };
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&Token::LParen)?;
            let mut row = vec![self.expr(0)?];
            while self.eat(&Token::Comma) {
                row.push(self.expr(0)?);
            }
            self.expect(&Token::RParen)?;
            rows.push(row);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        Ok(Statement::Insert {
            table,
            columns,
            rows,
        })
    }

    fn update(&mut self) -> Result<Statement, ParseError> {
        let table = self.identifier()?;
        self.expect_kw("SET")?;
        let mut sets = Vec::new();
        loop {
            let col = self.identifier()?;
            self.expect(&Token::Eq)?;
            let e = self.expr(0)?;
            sets.push((col, e));
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let predicate = self.opt_where()?;
        Ok(Statement::Update {
            table,
            sets,
            predicate,
        })
    }

    fn delete(&mut self) -> Result<Statement, ParseError> {
        let table = self.identifier()?;
        let predicate = self.opt_where()?;
        Ok(Statement::Delete { table, predicate })
    }

    fn select(&mut self) -> Result<Statement, ParseError> {
        let mut projection = Vec::new();
        loop {
            if self.eat(&Token::Star) {
                projection.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr(0)?;
                let alias = if self.eat_kw("AS") {
                    Some(self.identifier()?)
                } else {
                    None
                };
                projection.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect_kw("FROM")?;
        let table = self.identifier()?;
        let predicate = self.opt_where()?;
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            group_by.push(self.expr(0)?);
            while self.eat(&Token::Comma) {
                group_by.push(self.expr(0)?);
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr(0)?;
                let descending = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                order_by.push(OrderKey { expr, descending });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => Some(n as u64),
                other => {
                    return Err(ParseError::new(format!(
                        "LIMIT needs a non-negative integer, found {}",
                        other
                            .map(|t| format!("'{t}'"))
                            .unwrap_or("end of input".into())
                    )))
                }
            }
        } else {
            None
        };
        Ok(Statement::Select {
            projection,
            table,
            predicate,
            group_by,
            order_by,
            limit,
        })
    }

    fn opt_where(&mut self) -> Result<Option<Expr>, ParseError> {
        if self.eat_kw("WHERE") {
            Ok(Some(self.expr(0)?))
        } else {
            Ok(None)
        }
    }

    /// Precedence-climbing expression parser.
    fn expr(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut left = self.unary()?;
        loop {
            // `IS [NOT] NULL` postfix binds tighter than AND/OR.
            if min_prec <= 3 {
                let save = self.pos;
                if self.eat_kw("IS") {
                    let negated = self.eat_kw("NOT");
                    if self.eat_kw("NULL") {
                        left = Expr::IsNull {
                            expr: Box::new(left),
                            negated,
                        };
                        continue;
                    }
                    self.pos = save;
                }
            }
            let op = match self.peek() {
                Some(Token::Ident(s)) if s.eq_ignore_ascii_case("AND") => BinOp::And,
                Some(Token::Ident(s)) if s.eq_ignore_ascii_case("OR") => BinOp::Or,
                Some(Token::Eq) => BinOp::Eq,
                Some(Token::Ne) => BinOp::Ne,
                Some(Token::Lt) => BinOp::Lt,
                Some(Token::Le) => BinOp::Le,
                Some(Token::Gt) => BinOp::Gt,
                Some(Token::Ge) => BinOp::Ge,
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                _ => break,
            };
            let prec = op.precedence();
            if prec < min_prec {
                break;
            }
            self.pos += 1;
            let right = self.expr(prec + 1)?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_kw("NOT") {
            let e = self.expr(3)?;
            return Ok(Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(e),
            });
        }
        if self.eat(&Token::Minus) {
            // `-9223372036854775808` lexes as Minus + BigInt because the
            // magnitude alone does not fit in i64; fold it here.
            if let Some(&Token::BigInt(u)) = self.peek() {
                self.next();
                return if u == i64::MIN.unsigned_abs() {
                    Ok(Expr::Literal(Value::Int(i64::MIN)))
                } else {
                    Err(ParseError::new(format!(
                        "integer literal '-{u}' out of range"
                    )))
                };
            }
            let e = self.unary()?;
            // Fold negation of numeric literals.
            return Ok(match e {
                Expr::Literal(Value::Int(i)) => Expr::Literal(Value::Int(i.wrapping_neg())),
                Expr::Literal(Value::Double(d)) => Expr::Literal(Value::Double(-d)),
                other => Expr::Unary {
                    op: UnOp::Neg,
                    expr: Box::new(other),
                },
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.next() {
            Some(Token::Int(i)) => Ok(Expr::Literal(Value::Int(i))),
            Some(Token::BigInt(u)) => Err(ParseError::new(format!(
                "integer literal '{u}' out of range"
            ))),
            Some(Token::Float(x)) => Ok(Expr::Literal(Value::Double(x))),
            Some(Token::Str(s)) => Ok(Expr::Literal(Value::Str(s))),
            Some(Token::LParen) => {
                let e = self.expr(0)?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(s)) => {
                if s.eq_ignore_ascii_case("NULL") {
                    return Ok(Expr::Literal(Value::Null));
                }
                if s.eq_ignore_ascii_case("TRUE") {
                    return Ok(Expr::Literal(Value::Bool(true)));
                }
                if s.eq_ignore_ascii_case("FALSE") {
                    return Ok(Expr::Literal(Value::Bool(false)));
                }
                if s.eq_ignore_ascii_case("NOW") && self.eat(&Token::LParen) {
                    self.expect(&Token::RParen)?;
                    return Ok(Expr::Now);
                }
                if s.eq_ignore_ascii_case("TIMESTAMP") {
                    // Typed literal: TIMESTAMP <integer> (optionally negative).
                    let neg = self.eat(&Token::Minus);
                    if let Some(Token::Int(_)) = self.peek() {
                        let Some(Token::Int(i)) = self.next() else {
                            unreachable!()
                        };
                        return Ok(Expr::Literal(Value::Timestamp(if neg {
                            i.wrapping_neg()
                        } else {
                            i
                        })));
                    }
                    if let Some(&Token::BigInt(u)) = self.peek() {
                        if neg && u == i64::MIN.unsigned_abs() {
                            self.next();
                            return Ok(Expr::Literal(Value::Timestamp(i64::MIN)));
                        }
                        return Err(ParseError::new(format!(
                            "timestamp literal '{}{u}' out of range",
                            if neg { "-" } else { "" }
                        )));
                    }
                    if neg {
                        // Roll back the consumed '-' if no integer followed.
                        self.pos -= 1;
                    }
                }
                if let Some(func) = AggFunc::parse(&s) {
                    if self.eat(&Token::LParen) {
                        let arg = if self.eat(&Token::Star) {
                            if func != AggFunc::Count {
                                return Err(ParseError::new(format!("{func}(*) is not valid")));
                            }
                            None
                        } else {
                            Some(Box::new(self.expr(0)?))
                        };
                        self.expect(&Token::RParen)?;
                        return Ok(Expr::Aggregate { func, arg });
                    }
                }
                Ok(Expr::Column(s))
            }
            other => Err(ParseError::new(format!(
                "expected expression, found {}",
                other
                    .map(|t| format!("'{t}'"))
                    .unwrap_or("end of input".into())
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(sql: &str) -> Statement {
        let s1 = parse_statement(sql).unwrap();
        let printed = s1.to_string();
        let s2 = parse_statement(&printed)
            .unwrap_or_else(|e| panic!("printed form failed to re-parse: {printed}: {e}"));
        assert_eq!(s1, s2, "canonical text must be stable: {printed}");
        s1
    }

    #[test]
    fn create_table() {
        let s = round_trip(
            "CREATE TABLE parts (id INT PRIMARY KEY, name VARCHAR(40) NOT NULL, qty INT, last_modified TIMESTAMP)",
        );
        match s {
            Statement::CreateTable { name, columns } => {
                assert_eq!(name, "parts");
                assert_eq!(columns.len(), 4);
                assert!(columns[0].primary_key && columns[0].not_null);
                assert!(columns[1].not_null && !columns[1].primary_key);
                assert_eq!(columns[3].data_type, DataType::Timestamp);
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn insert_multi_row() {
        let s = round_trip("INSERT INTO parts (id, name) VALUES (1, 'bolt'), (2, 'nut')");
        match s {
            Statement::Insert { rows, columns, .. } => {
                assert_eq!(rows.len(), 2);
                assert_eq!(columns.unwrap(), vec!["id", "name"]);
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn insert_without_columns() {
        let s = round_trip("INSERT INTO t VALUES (1, 2.5, NULL, 'x', TRUE)");
        match s {
            Statement::Insert { columns, rows, .. } => {
                assert!(columns.is_none());
                assert_eq!(rows[0].len(), 5);
                assert_eq!(rows[0][2], Expr::Literal(Value::Null));
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn update_with_predicate() {
        let s =
            round_trip("UPDATE PARTS SET status = 'revised' WHERE last_modified_date > 19991115");
        match s {
            Statement::Update {
                sets, predicate, ..
            } => {
                assert_eq!(sets.len(), 1);
                assert!(predicate.is_some());
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn delete_without_predicate() {
        let s = round_trip("DELETE FROM parts");
        assert_eq!(
            s,
            Statement::Delete {
                table: "parts".into(),
                predicate: None
            }
        );
    }

    #[test]
    fn select_star_and_exprs() {
        let s = round_trip(
            "SELECT *, qty * 2 AS double_qty FROM parts WHERE qty >= 10 AND name <> 'x'",
        );
        match s {
            Statement::Select { projection, .. } => {
                assert_eq!(projection.len(), 2);
                assert!(matches!(projection[0], SelectItem::Wildcard));
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn precedence_and_over_or() {
        let e = parse_expression("a OR b AND c").unwrap();
        assert_eq!(
            e,
            Expr::Binary {
                left: Box::new(Expr::Column("a".into())),
                op: BinOp::Or,
                right: Box::new(Expr::Binary {
                    left: Box::new(Expr::Column("b".into())),
                    op: BinOp::And,
                    right: Box::new(Expr::Column("c".into())),
                }),
            }
        );
    }

    #[test]
    fn precedence_arithmetic_over_comparison() {
        let e = parse_expression("a + 1 > b * 2").unwrap();
        match e {
            Expr::Binary { op: BinOp::Gt, .. } => {}
            other => panic!("expected > at root, got {other:?}"),
        }
    }

    #[test]
    fn is_null_and_is_not_null() {
        let e = parse_expression("a IS NULL OR b IS NOT NULL").unwrap();
        match e {
            Expr::Binary {
                op: BinOp::Or,
                left,
                right,
            } => {
                assert!(matches!(*left, Expr::IsNull { negated: false, .. }));
                assert!(matches!(*right, Expr::IsNull { negated: true, .. }));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn not_and_negation() {
        round_trip("SELECT * FROM t WHERE NOT (a = 1) AND b = -2");
        let e = parse_expression("-2").unwrap();
        assert_eq!(e, Expr::Literal(Value::Int(-2)));
    }

    #[test]
    fn now_function() {
        let e = parse_expression("last_modified > NOW()").unwrap();
        assert!(e.contains_now());
        // A bare `now` identifier (no parens) is a column, not the function.
        let c = parse_expression("now").unwrap();
        assert_eq!(c, Expr::Column("now".into()));
    }

    #[test]
    fn txn_control_statements() {
        assert_eq!(parse_statement("BEGIN").unwrap(), Statement::Begin);
        assert_eq!(parse_statement("commit;").unwrap(), Statement::Commit);
        assert_eq!(parse_statement("ROLLBACK").unwrap(), Statement::Rollback);
        assert_eq!(parse_statement("abort").unwrap(), Statement::Rollback);
    }

    #[test]
    fn errors_are_descriptive() {
        let e = parse_statement("SELECT FROM").unwrap_err();
        assert!(e.to_string().contains("expected"));
        assert!(parse_statement("INSERT INTO t VALUES (1,)").is_err());
        assert!(parse_statement("UPDATE t SET").is_err());
        assert!(parse_statement("CREATE TABLE t (a BLOB)").is_err());
        assert!(parse_statement("SELECT * FROM t extra garbage !!!").is_err());
    }

    #[test]
    fn aggregates_and_group_by() {
        let s = round_trip("SELECT grp, COUNT(*), SUM(qty) AS total, AVG(qty), MIN(qty), MAX(qty) FROM parts WHERE qty > 0 GROUP BY grp");
        match s {
            Statement::Select {
                projection,
                group_by,
                ..
            } => {
                assert_eq!(projection.len(), 6);
                assert_eq!(group_by, vec![Expr::Column("grp".into())]);
                match &projection[1] {
                    SelectItem::Expr {
                        expr: Expr::Aggregate { func, arg },
                        ..
                    } => {
                        assert_eq!(*func, delta_sql_agg_alias::Count);
                        assert!(arg.is_none());
                    }
                    other => panic!("wrong: {other:?}"),
                }
            }
            other => panic!("wrong statement: {other:?}"),
        }
        // COUNT is case-insensitive, star only valid for COUNT.
        round_trip("SELECT count(*) FROM t");
        assert!(parse_statement("SELECT SUM(*) FROM t").is_err());
        // A column named like an aggregate (no parens) is still a column.
        let e = parse_expression("sum").unwrap();
        assert_eq!(e, Expr::Column("sum".into()));
        // Aggregates over expressions round trip.
        round_trip("SELECT SUM(qty * 2 + 1) FROM t GROUP BY a, b");
    }

    use crate::ast::AggFunc as delta_sql_agg_alias;

    #[test]
    fn keywords_case_insensitive() {
        round_trip("select * from T where A = 1");
    }

    #[test]
    fn quoted_identifier_round_trips() {
        let s = round_trip("SELECT * FROM \"my table\" WHERE \"weird col\" = 1");
        assert_eq!(s.table(), Some("my table"));
    }

    #[test]
    fn string_quote_escaping_round_trips() {
        let s = round_trip("INSERT INTO t VALUES ('o''brien')");
        match s {
            Statement::Insert { rows, .. } => {
                assert_eq!(rows[0][0], Expr::Literal(Value::Str("o'brien".into())));
            }
            other => panic!("wrong: {other:?}"),
        }
    }
}
