//! Expression evaluation with SQL three-valued logic.

use std::fmt;

use delta_storage::{Row, Schema, Value};

use crate::ast::{BinOp, Expr, UnOp};

/// Evaluation error.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalError {
    pub message: String,
}

impl EvalError {
    fn new(m: impl Into<String>) -> EvalError {
        EvalError { message: m.into() }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "evaluation error: {}", self.message)
    }
}

impl std::error::Error for EvalError {}

/// Resolves column references to values.
pub trait RowResolver {
    /// The value of column `name`, or `None` if the column does not exist.
    fn resolve(&self, name: &str) -> Option<Value>;
}

/// Resolver over a `(Schema, Row)` pair — the common case.
pub struct SchemaRow<'a> {
    pub schema: &'a Schema,
    pub row: &'a Row,
}

impl RowResolver for SchemaRow<'_> {
    fn resolve(&self, name: &str) -> Option<Value> {
        self.schema
            .index_of(name)
            .and_then(|i| self.row.get(i).cloned())
    }
}

/// An empty row: every column reference is an error. Used for evaluating
/// constant expressions (e.g. INSERT value lists).
pub struct NoRow;

impl RowResolver for NoRow {
    fn resolve(&self, _name: &str) -> Option<Value> {
        None
    }
}

/// Evaluation context: a row resolver plus the current time for `NOW()`.
pub struct EvalContext<'a> {
    pub resolver: &'a dyn RowResolver,
    /// Microseconds since the Unix epoch, supplied by the executing site.
    pub now_micros: i64,
}

impl<'a> EvalContext<'a> {
    pub fn new(resolver: &'a dyn RowResolver, now_micros: i64) -> EvalContext<'a> {
        EvalContext {
            resolver,
            now_micros,
        }
    }

    /// Evaluate `expr` to a value (NULL propagates per SQL rules).
    pub fn eval(&self, expr: &Expr) -> Result<Value, EvalError> {
        match expr {
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Now => Ok(Value::Timestamp(self.now_micros)),
            Expr::Column(name) => self
                .resolver
                .resolve(name)
                .ok_or_else(|| EvalError::new(format!("unknown column '{name}'"))),
            Expr::Unary {
                op: UnOp::Neg,
                expr,
            } => match self.eval(expr)? {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(-i)),
                Value::Double(d) => Ok(Value::Double(-d)),
                other => Err(EvalError::new(format!("cannot negate {other}"))),
            },
            Expr::Unary {
                op: UnOp::Not,
                expr,
            } => match self.eval_truth(expr)? {
                Some(b) => Ok(Value::Bool(!b)),
                None => Ok(Value::Null),
            },
            Expr::IsNull { expr, negated } => {
                let v = self.eval(expr)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
            Expr::Binary { left, op, right } => self.eval_binary(left, *op, right),
            Expr::Aggregate { func, .. } => Err(EvalError::new(format!(
                "{func}(..) is only valid in a grouped SELECT projection"
            ))),
        }
    }

    fn eval_binary(&self, left: &Expr, op: BinOp, right: &Expr) -> Result<Value, EvalError> {
        match op {
            BinOp::And => {
                // SQL 3VL: FALSE AND x = FALSE even when x is NULL.
                let l = self.eval_truth(left)?;
                if l == Some(false) {
                    return Ok(Value::Bool(false));
                }
                let r = self.eval_truth(right)?;
                Ok(match (l, r) {
                    (Some(true), Some(true)) => Value::Bool(true),
                    (_, Some(false)) => Value::Bool(false),
                    _ => Value::Null,
                })
            }
            BinOp::Or => {
                let l = self.eval_truth(left)?;
                if l == Some(true) {
                    return Ok(Value::Bool(true));
                }
                let r = self.eval_truth(right)?;
                Ok(match (l, r) {
                    (Some(false), Some(false)) => Value::Bool(false),
                    (_, Some(true)) => Value::Bool(true),
                    _ => Value::Null,
                })
            }
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let l = self.eval(left)?;
                let r = self.eval(right)?;
                if l.is_null() || r.is_null() {
                    return Ok(Value::Null);
                }
                let ord = l
                    .sql_cmp(&r)
                    .ok_or_else(|| EvalError::new(format!("cannot compare {l} with {r}")))?;
                let b = match op {
                    BinOp::Eq => ord == std::cmp::Ordering::Equal,
                    BinOp::Ne => ord != std::cmp::Ordering::Equal,
                    BinOp::Lt => ord == std::cmp::Ordering::Less,
                    BinOp::Le => ord != std::cmp::Ordering::Greater,
                    BinOp::Gt => ord == std::cmp::Ordering::Greater,
                    BinOp::Ge => ord != std::cmp::Ordering::Less,
                    other => {
                        return Err(EvalError::new(format!(
                            "`{other}` is not a comparison operator"
                        )))
                    }
                };
                Ok(Value::Bool(b))
            }
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                let l = self.eval(left)?;
                let r = self.eval(right)?;
                if l.is_null() || r.is_null() {
                    return Ok(Value::Null);
                }
                arith(&l, op, &r)
            }
        }
    }

    /// Evaluate to a SQL truth value: `Some(bool)` or `None` for NULL/UNKNOWN.
    pub fn eval_truth(&self, expr: &Expr) -> Result<Option<bool>, EvalError> {
        match self.eval(expr)? {
            Value::Null => Ok(None),
            Value::Bool(b) => Ok(Some(b)),
            other => Err(EvalError::new(format!(
                "expected a boolean predicate, got {other}"
            ))),
        }
    }

    /// WHERE-clause semantics: NULL/UNKNOWN filters the row out.
    pub fn matches(&self, predicate: &Expr) -> Result<bool, EvalError> {
        Ok(self.eval_truth(predicate)? == Some(true))
    }
}

fn arith(l: &Value, op: BinOp, r: &Value) -> Result<Value, EvalError> {
    use Value::*;
    // String concatenation with '+', as several COTS dialects allow.
    if let (Str(a), BinOp::Add, Str(b)) = (l, op, r) {
        return Ok(Str(format!("{a}{b}")));
    }
    match (l, r) {
        (Int(a), Int(b)) => match op {
            BinOp::Add => Ok(Int(a.wrapping_add(*b))),
            BinOp::Sub => Ok(Int(a.wrapping_sub(*b))),
            BinOp::Mul => Ok(Int(a.wrapping_mul(*b))),
            BinOp::Div => {
                if *b == 0 {
                    Err(EvalError::new("division by zero"))
                } else {
                    Ok(Int(a / b))
                }
            }
            other => Err(EvalError::new(format!(
                "`{other}` is not an arithmetic operator"
            ))),
        },
        (Timestamp(a), Int(b)) => match op {
            BinOp::Add => Ok(Timestamp(a.wrapping_add(*b))),
            BinOp::Sub => Ok(Timestamp(a.wrapping_sub(*b))),
            _ => Err(EvalError::new("only +/- allowed on timestamps")),
        },
        (Timestamp(a), Timestamp(b)) if op == BinOp::Sub => Ok(Int(a - b)),
        _ => {
            let a = l
                .as_double()
                .map_err(|_| EvalError::new(format!("cannot apply {op} to {l} and {r}")))?;
            let b = r
                .as_double()
                .map_err(|_| EvalError::new(format!("cannot apply {op} to {l} and {r}")))?;
            let out = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => {
                    if b == 0.0 {
                        return Err(EvalError::new("division by zero"));
                    }
                    a / b
                }
                other => {
                    return Err(EvalError::new(format!(
                        "`{other}` is not an arithmetic operator"
                    )))
                }
            };
            Ok(Double(out))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expression;
    use delta_storage::{Column, DataType};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("name", DataType::Varchar),
            Column::new("qty", DataType::Int),
            Column::new("last_modified", DataType::Timestamp),
        ])
        .unwrap()
    }

    fn row() -> Row {
        Row::new(vec![
            Value::Int(7),
            Value::Str("bolt".into()),
            Value::Null,
            Value::Timestamp(5000),
        ])
    }

    fn eval(src: &str) -> Result<Value, EvalError> {
        let e = parse_expression(src).unwrap();
        let schema = schema();
        let row = row();
        let resolver = SchemaRow {
            schema: &schema,
            row: &row,
        };
        EvalContext::new(&resolver, 9999).eval(&e)
    }

    #[test]
    fn literals_and_columns() {
        assert_eq!(eval("42").unwrap(), Value::Int(42));
        assert_eq!(eval("id").unwrap(), Value::Int(7));
        assert_eq!(eval("name").unwrap(), Value::Str("bolt".into()));
        assert!(eval("missing_col").is_err());
    }

    #[test]
    fn arithmetic() {
        assert_eq!(eval("id + 1").unwrap(), Value::Int(8));
        assert_eq!(eval("id * 2 - 4").unwrap(), Value::Int(10));
        assert_eq!(eval("7 / 2").unwrap(), Value::Int(3));
        assert_eq!(eval("7.0 / 2").unwrap(), Value::Double(3.5));
        assert!(eval("1 / 0").is_err());
        assert!(eval("1.0 / 0.0").is_err());
    }

    #[test]
    fn string_concat() {
        assert_eq!(eval("name + '!'").unwrap(), Value::Str("bolt!".into()));
    }

    #[test]
    fn comparisons() {
        assert_eq!(eval("id = 7").unwrap(), Value::Bool(true));
        assert_eq!(eval("id <> 7").unwrap(), Value::Bool(false));
        assert_eq!(eval("name < 'z'").unwrap(), Value::Bool(true));
        assert_eq!(eval("last_modified > 1000").unwrap(), Value::Bool(true));
    }

    #[test]
    fn null_propagation() {
        assert_eq!(eval("qty + 1").unwrap(), Value::Null);
        assert_eq!(eval("qty = 0").unwrap(), Value::Null);
        assert_eq!(eval("qty IS NULL").unwrap(), Value::Bool(true));
        assert_eq!(eval("qty IS NOT NULL").unwrap(), Value::Bool(false));
        assert_eq!(eval("NOT (qty = 0)").unwrap(), Value::Null);
    }

    #[test]
    fn three_valued_logic_short_circuits() {
        // FALSE AND NULL = FALSE; TRUE OR NULL = TRUE.
        assert_eq!(eval("id = 0 AND qty = 1").unwrap(), Value::Bool(false));
        assert_eq!(eval("id = 7 OR qty = 1").unwrap(), Value::Bool(true));
        // TRUE AND NULL = NULL; FALSE OR NULL = NULL.
        assert_eq!(eval("id = 7 AND qty = 1").unwrap(), Value::Null);
        assert_eq!(eval("id = 0 OR qty = 1").unwrap(), Value::Null);
    }

    #[test]
    fn where_semantics_filters_unknown() {
        let e = parse_expression("qty = 0").unwrap();
        let schema = schema();
        let row = row();
        let resolver = SchemaRow {
            schema: &schema,
            row: &row,
        };
        assert!(!EvalContext::new(&resolver, 0).matches(&e).unwrap());
    }

    #[test]
    fn now_uses_context_clock() {
        assert_eq!(eval("NOW()").unwrap(), Value::Timestamp(9999));
        assert_eq!(eval("last_modified < NOW()").unwrap(), Value::Bool(true));
    }

    #[test]
    fn truth_of_non_boolean_is_error() {
        assert!(eval("NOT 5").is_err());
        let e = parse_expression("id + 1").unwrap();
        let schema = schema();
        let row = row();
        let resolver = SchemaRow {
            schema: &schema,
            row: &row,
        };
        assert!(EvalContext::new(&resolver, 0).eval_truth(&e).is_err());
    }

    #[test]
    fn timestamp_arithmetic() {
        assert_eq!(
            eval("last_modified + 1000").unwrap(),
            Value::Timestamp(6000)
        );
        assert_eq!(
            eval("last_modified - last_modified").unwrap(),
            Value::Int(0)
        );
    }

    #[test]
    fn incomparable_types_error() {
        assert!(eval("name > 5").is_err());
    }
}
