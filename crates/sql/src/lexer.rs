//! SQL tokenizer.

use std::fmt;

/// Lexer error with byte position.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    pub pos: usize,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

/// A SQL token. Keywords are recognized at parse time from `Ident`, except
/// for the handful that double as operators.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (uppercased comparison happens in the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Integer literal whose magnitude exceeds `i64::MAX`; only valid when
    /// the parser folds it under a unary minus (e.g. `-9223372036854775808`).
    BigInt(u64),
    /// Floating-point literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    LParen,
    RParen,
    Comma,
    Star,
    Plus,
    Minus,
    Slash,
    Eq,
    /// `<>` or `!=`
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Semicolon,
    Dot,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::BigInt(u) => write!(f, "{u}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::LParen => f.write_str("("),
            Token::RParen => f.write_str(")"),
            Token::Comma => f.write_str(","),
            Token::Star => f.write_str("*"),
            Token::Plus => f.write_str("+"),
            Token::Minus => f.write_str("-"),
            Token::Slash => f.write_str("/"),
            Token::Eq => f.write_str("="),
            Token::Ne => f.write_str("<>"),
            Token::Lt => f.write_str("<"),
            Token::Le => f.write_str("<="),
            Token::Gt => f.write_str(">"),
            Token::Ge => f.write_str(">="),
            Token::Semicolon => f.write_str(";"),
            Token::Dot => f.write_str("."),
        }
    }
}

/// Tokenize `input` into a vector of tokens.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(LexError {
                        pos: i,
                        message: "unexpected '!'".into(),
                    });
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::Le);
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    tokens.push(Token::Ne);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                // String literal with '' escaping.
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(LexError {
                            pos: start,
                            message: "unterminated string literal".into(),
                        });
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        // Consume one UTF-8 character.
                        let ch_len = utf8_len(bytes[i]);
                        s.push_str(std::str::from_utf8(&bytes[i..i + ch_len]).map_err(|_| {
                            LexError {
                                pos: i,
                                message: "invalid UTF-8 in string".into(),
                            }
                        })?);
                        i += ch_len;
                    }
                }
                tokens.push(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                // Exponent.
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &input[start..i];
                if is_float {
                    tokens.push(Token::Float(text.parse().map_err(|_| LexError {
                        pos: start,
                        message: format!("bad float literal '{text}'"),
                    })?));
                } else {
                    // Magnitudes above i64::MAX are kept as BigInt so the
                    // parser can still accept `-9223372036854775808`.
                    match text.parse::<i64>() {
                        Ok(i) => tokens.push(Token::Int(i)),
                        Err(_) => {
                            tokens.push(Token::BigInt(text.parse().map_err(|_| LexError {
                                pos: start,
                                message: format!("integer literal '{text}' out of range"),
                            })?))
                        }
                    }
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '"' => {
                if c == '"' {
                    // Quoted identifier.
                    let start = i;
                    i += 1;
                    let mut s = String::new();
                    loop {
                        if i >= bytes.len() {
                            return Err(LexError {
                                pos: start,
                                message: "unterminated quoted identifier".into(),
                            });
                        }
                        if bytes[i] == b'"' {
                            i += 1;
                            break;
                        }
                        s.push(bytes[i] as char);
                        i += 1;
                    }
                    tokens.push(Token::Ident(s));
                } else {
                    let start = i;
                    while i < bytes.len()
                        && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                    tokens.push(Token::Ident(input[start..i].to_string()));
                }
            }
            other => {
                return Err(LexError {
                    pos: i,
                    message: format!("unexpected character '{other}'"),
                })
            }
        }
    }
    Ok(tokens)
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >> 5 == 0b110 => 2,
        b if b >> 4 == 0b1110 => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_the_paper_example() {
        // From §4.1 of the paper.
        let toks =
            tokenize("UPDATE status='revised' from PARTS where last_modified_date > 100").unwrap();
        assert_eq!(toks[0], Token::Ident("UPDATE".into()));
        assert!(toks.contains(&Token::Str("revised".into())));
        assert!(toks.contains(&Token::Gt));
        assert!(toks.contains(&Token::Int(100)));
    }

    #[test]
    fn numbers() {
        assert_eq!(
            tokenize("1 2.5 3e2 4.5E-1").unwrap(),
            vec![
                Token::Int(1),
                Token::Float(2.5),
                Token::Float(300.0),
                Token::Float(0.45)
            ]
        );
    }

    #[test]
    fn integer_followed_by_dot_is_not_float() {
        // `tab.col` style access after a number should not eat the dot.
        let toks = tokenize("1.x").unwrap();
        assert_eq!(
            toks,
            vec![Token::Int(1), Token::Dot, Token::Ident("x".into())]
        );
    }

    #[test]
    fn string_escaping() {
        assert_eq!(
            tokenize("'o''brien'").unwrap(),
            vec![Token::Str("o'brien".into())]
        );
        assert_eq!(tokenize("''").unwrap(), vec![Token::Str(String::new())]);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            tokenize("< <= > >= = <> !=").unwrap(),
            vec![
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::Eq,
                Token::Ne,
                Token::Ne
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let toks = tokenize("SELECT -- comment to end of line\n 1").unwrap();
        assert_eq!(toks, vec![Token::Ident("SELECT".into()), Token::Int(1)]);
    }

    #[test]
    fn unexpected_character_reports_position() {
        let err = tokenize("SELECT #").unwrap_err();
        assert_eq!(err.pos, 7);
    }

    #[test]
    fn quoted_identifiers() {
        assert_eq!(
            tokenize("\"weird name\"").unwrap(),
            vec![Token::Ident("weird name".into())]
        );
    }

    #[test]
    fn unicode_in_strings() {
        assert_eq!(
            tokenize("'héllo ✈'").unwrap(),
            vec![Token::Str("héllo ✈".into())]
        );
    }
}
