//! # delta-sql
//!
//! A small SQL dialect for the DeltaForge engine — and, crucially for the
//! paper, the **Op-Delta wire format**: an Op-Delta *is* an operation
//! description, and we represent it as the canonical text of a parsed
//! statement (§4.1: *"the SQL statement itself is already an Op-Delta in the
//! size of about 70 bytes"*). Statements printed by [`ast::Statement`]'s
//! `Display` re-parse to the same AST, which is what makes shipping
//! operations between source and warehouse lossless.
//!
//! Supported statements: `CREATE TABLE`, `DROP TABLE`, `INSERT`, `UPDATE`,
//! `DELETE`, single-table `SELECT`, and `BEGIN`/`COMMIT`/`ROLLBACK`.
//! Expressions cover literals, column references, arithmetic, comparisons,
//! `AND`/`OR`/`NOT`, `IS [NOT] NULL`, and `NOW()`.

pub mod ast;
pub mod eval;
pub mod lexer;
pub mod parser;

pub use ast::{BinOp, ColumnDef, Expr, SelectItem, Statement, UnOp};
pub use eval::{EvalContext, EvalError, RowResolver};
pub use lexer::{LexError, Token};
pub use parser::{parse_expression, parse_statement, ParseError};
