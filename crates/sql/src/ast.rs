//! Abstract syntax tree and the canonical printer.
//!
//! `Display` for [`Statement`] and [`Expr`] produces canonical SQL text that
//! re-parses to the same AST. That text is the Op-Delta wire format: the
//! paper ships the *operation* from the source to the warehouse, and our
//! transport layer ships exactly these strings.

use std::fmt;

use delta_storage::{DataType, Value};

/// A column definition in `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: String,
    pub data_type: DataType,
    pub not_null: bool,
    pub primary_key: bool,
}

/// Binary operators, in ascending precedence groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Or,
    And,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Add,
    Sub,
    Mul,
    Div,
}

impl BinOp {
    /// Parser precedence (higher binds tighter).
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 3,
            BinOp::Add | BinOp::Sub => 4,
            BinOp::Mul | BinOp::Div => 5,
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Or => "OR",
            BinOp::And => "AND",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        };
        f.write_str(s)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Not,
    Neg,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggFunc {
    /// Parse a function name (case-insensitive).
    pub fn parse(name: &str) -> Option<AggFunc> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggFunc::Count),
            "SUM" => Some(AggFunc::Sum),
            "AVG" => Some(AggFunc::Avg),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            _ => None,
        }
    }

    /// Lower-case name (used in generated view column names).
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        })
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Literal(Value),
    Column(String),
    Unary {
        op: UnOp,
        expr: Box<Expr>,
    },
    Binary {
        left: Box<Expr>,
        op: BinOp,
        right: Box<Expr>,
    },
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    /// `NOW()` — current time at the *executing* site; the Op-Delta capture
    /// layer freezes it to a literal before shipping (see `delta-core`), so
    /// replay at the warehouse is deterministic.
    Now,
    /// An aggregate call; `None` argument means `COUNT(*)`. Valid only in
    /// SELECT projections (grouped queries).
    Aggregate {
        func: AggFunc,
        arg: Option<Box<Expr>>,
    },
}

impl Expr {
    /// Column names referenced anywhere in this expression.
    pub fn referenced_columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.walk_columns(&mut out);
        out
    }

    fn walk_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Literal(_) | Expr::Now => {}
            Expr::Column(c) => out.push(c.as_str()),
            Expr::Unary { expr, .. } => expr.walk_columns(out),
            Expr::Binary { left, right, .. } => {
                left.walk_columns(out);
                right.walk_columns(out);
            }
            Expr::IsNull { expr, .. } => expr.walk_columns(out),
            Expr::Aggregate { arg, .. } => {
                if let Some(a) = arg {
                    a.walk_columns(out);
                }
            }
        }
    }

    /// Whether the expression contains an aggregate call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Aggregate { .. } => true,
            Expr::Literal(_) | Expr::Column(_) | Expr::Now => false,
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
        }
    }

    /// Whether the expression contains `NOW()` (i.e. is non-deterministic
    /// under replay until frozen).
    pub fn contains_now(&self) -> bool {
        match self {
            Expr::Now => true,
            Expr::Literal(_) | Expr::Column(_) => false,
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => expr.contains_now(),
            Expr::Binary { left, right, .. } => left.contains_now() || right.contains_now(),
            Expr::Aggregate { arg, .. } => arg.as_ref().map(|a| a.contains_now()).unwrap_or(false),
        }
    }

    /// Replace every `NOW()` with the literal timestamp `now_micros`.
    pub fn freeze_now(&self, now_micros: i64) -> Expr {
        match self {
            Expr::Now => Expr::Literal(Value::Timestamp(now_micros)),
            Expr::Literal(_) | Expr::Column(_) => self.clone(),
            Expr::Unary { op, expr } => Expr::Unary {
                op: *op,
                expr: Box::new(expr.freeze_now(now_micros)),
            },
            Expr::Binary { left, op, right } => Expr::Binary {
                left: Box::new(left.freeze_now(now_micros)),
                op: *op,
                right: Box::new(right.freeze_now(now_micros)),
            },
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(expr.freeze_now(now_micros)),
                negated: *negated,
            },
            Expr::Aggregate { func, arg } => Expr::Aggregate {
                func: *func,
                arg: arg.as_ref().map(|a| Box::new(a.freeze_now(now_micros))),
            },
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // A bare integer would re-parse as Int: tag timestamp literals so
            // the Op-Delta wire format round-trips the type exactly.
            Expr::Literal(Value::Timestamp(t)) => write!(f, "TIMESTAMP {t}"),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Column(c) => write!(f, "{}", ident(c)),
            Expr::Unary {
                op: UnOp::Not,
                expr,
            } => write!(f, "(NOT {expr})"),
            Expr::Unary {
                op: UnOp::Neg,
                expr,
            } => write!(f, "(-{expr})"),
            Expr::Binary { left, op, right } => write!(f, "({left} {op} {right})"),
            Expr::IsNull { expr, negated } => {
                if *negated {
                    write!(f, "({expr} IS NOT NULL)")
                } else {
                    write!(f, "({expr} IS NULL)")
                }
            }
            Expr::Now => f.write_str("NOW()"),
            Expr::Aggregate { func, arg } => match arg {
                Some(a) => write!(f, "{func}({a})"),
                None => write!(f, "{func}(*)"),
            },
        }
    }
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    pub expr: Expr,
    pub descending: bool,
}

impl fmt::Display for OrderKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.expr)?;
        if self.descending {
            f.write_str(" DESC")?;
        }
        Ok(())
    }
}

/// One item of a SELECT projection.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// An expression, optionally aliased.
    Expr { expr: Expr, alias: Option<String> },
}

/// A SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    CreateTable {
        name: String,
        columns: Vec<ColumnDef>,
    },
    DropTable {
        name: String,
    },
    Insert {
        table: String,
        /// Explicit column list, or `None` for schema order.
        columns: Option<Vec<String>>,
        rows: Vec<Vec<Expr>>,
    },
    Update {
        table: String,
        sets: Vec<(String, Expr)>,
        predicate: Option<Expr>,
    },
    Delete {
        table: String,
        predicate: Option<Expr>,
    },
    Select {
        projection: Vec<SelectItem>,
        table: String,
        predicate: Option<Expr>,
        /// GROUP BY expressions (empty = ungrouped; an aggregate projection
        /// with an empty group list aggregates the whole table).
        group_by: Vec<Expr>,
        /// ORDER BY keys applied to the output rows.
        order_by: Vec<OrderKey>,
        /// Row-count cap applied after ordering.
        limit: Option<u64>,
    },
    CreateIndex {
        name: String,
        table: String,
        column: String,
        unique: bool,
    },
    DropIndex {
        name: String,
    },
    Begin,
    Commit,
    Rollback,
}

impl Statement {
    /// The table this statement touches, if any.
    pub fn table(&self) -> Option<&str> {
        match self {
            Statement::CreateTable { name, .. } | Statement::DropTable { name } => Some(name),
            Statement::Insert { table, .. }
            | Statement::Update { table, .. }
            | Statement::Delete { table, .. }
            | Statement::Select { table, .. }
            | Statement::CreateIndex { table, .. } => Some(table),
            _ => None,
        }
    }

    /// Whether this statement modifies data (is a DML write).
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            Statement::Insert { .. } | Statement::Update { .. } | Statement::Delete { .. }
        )
    }

    /// Freeze every `NOW()` in the statement to `now_micros` (Op-Delta capture).
    pub fn freeze_now(&self, now_micros: i64) -> Statement {
        match self {
            Statement::Insert {
                table,
                columns,
                rows,
            } => Statement::Insert {
                table: table.clone(),
                columns: columns.clone(),
                rows: rows
                    .iter()
                    .map(|r| r.iter().map(|e| e.freeze_now(now_micros)).collect())
                    .collect(),
            },
            Statement::Update {
                table,
                sets,
                predicate,
            } => Statement::Update {
                table: table.clone(),
                sets: sets
                    .iter()
                    .map(|(c, e)| (c.clone(), e.freeze_now(now_micros)))
                    .collect(),
                predicate: predicate.as_ref().map(|p| p.freeze_now(now_micros)),
            },
            Statement::Delete { table, predicate } => Statement::Delete {
                table: table.clone(),
                predicate: predicate.as_ref().map(|p| p.freeze_now(now_micros)),
            },
            other => other.clone(),
        }
    }
}

/// Quote an identifier when needed.
fn ident(name: &str) -> String {
    let plain = !name.is_empty()
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && !name.chars().next().unwrap().is_ascii_digit();
    if plain {
        name.to_string()
    } else {
        format!("\"{name}\"")
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::CreateTable { name, columns } => {
                write!(f, "CREATE TABLE {} (", ident(name))?;
                for (i, c) in columns.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{} {}", ident(&c.name), c.data_type)?;
                    if c.primary_key {
                        f.write_str(" PRIMARY KEY")?;
                    } else if c.not_null {
                        f.write_str(" NOT NULL")?;
                    }
                }
                f.write_str(")")
            }
            Statement::DropTable { name } => write!(f, "DROP TABLE {}", ident(name)),
            Statement::Insert {
                table,
                columns,
                rows,
            } => {
                write!(f, "INSERT INTO {}", ident(table))?;
                if let Some(cols) = columns {
                    write!(
                        f,
                        " ({})",
                        cols.iter().map(|c| ident(c)).collect::<Vec<_>>().join(", ")
                    )?;
                }
                f.write_str(" VALUES ")?;
                for (i, row) in rows.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(
                        f,
                        "({})",
                        row.iter()
                            .map(|e| e.to_string())
                            .collect::<Vec<_>>()
                            .join(", ")
                    )?;
                }
                Ok(())
            }
            Statement::Update {
                table,
                sets,
                predicate,
            } => {
                write!(f, "UPDATE {} SET ", ident(table))?;
                for (i, (c, e)) in sets.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{} = {e}", ident(c))?;
                }
                if let Some(p) = predicate {
                    write!(f, " WHERE {p}")?;
                }
                Ok(())
            }
            Statement::Delete { table, predicate } => {
                write!(f, "DELETE FROM {}", ident(table))?;
                if let Some(p) = predicate {
                    write!(f, " WHERE {p}")?;
                }
                Ok(())
            }
            Statement::Select {
                projection,
                table,
                predicate,
                group_by,
                order_by,
                limit,
            } => {
                f.write_str("SELECT ")?;
                for (i, item) in projection.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    match item {
                        SelectItem::Wildcard => f.write_str("*")?,
                        SelectItem::Expr { expr, alias } => {
                            write!(f, "{expr}")?;
                            if let Some(a) = alias {
                                write!(f, " AS {}", ident(a))?;
                            }
                        }
                    }
                }
                write!(f, " FROM {}", ident(table))?;
                if let Some(p) = predicate {
                    write!(f, " WHERE {p}")?;
                }
                if !group_by.is_empty() {
                    write!(
                        f,
                        " GROUP BY {}",
                        group_by
                            .iter()
                            .map(|e| e.to_string())
                            .collect::<Vec<_>>()
                            .join(", ")
                    )?;
                }
                if !order_by.is_empty() {
                    write!(
                        f,
                        " ORDER BY {}",
                        order_by
                            .iter()
                            .map(|k| k.to_string())
                            .collect::<Vec<_>>()
                            .join(", ")
                    )?;
                }
                if let Some(n) = limit {
                    write!(f, " LIMIT {n}")?;
                }
                Ok(())
            }
            Statement::CreateIndex {
                name,
                table,
                column,
                unique,
            } => {
                write!(
                    f,
                    "CREATE {}INDEX {} ON {} ({})",
                    if *unique { "UNIQUE " } else { "" },
                    ident(name),
                    ident(table),
                    ident(column)
                )
            }
            Statement::DropIndex { name } => write!(f, "DROP INDEX {}", ident(name)),
            Statement::Begin => f.write_str("BEGIN"),
            Statement::Commit => f.write_str("COMMIT"),
            Statement::Rollback => f.write_str("ROLLBACK"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_collects_columns() {
        let e = Expr::Binary {
            left: Box::new(Expr::Column("a".into())),
            op: BinOp::And,
            right: Box::new(Expr::IsNull {
                expr: Box::new(Expr::Column("b".into())),
                negated: true,
            }),
        };
        assert_eq!(e.referenced_columns(), vec!["a", "b"]);
    }

    #[test]
    fn freeze_now_replaces_all_occurrences() {
        let e = Expr::Binary {
            left: Box::new(Expr::Now),
            op: BinOp::Gt,
            right: Box::new(Expr::Now),
        };
        assert!(e.contains_now());
        let frozen = e.freeze_now(42);
        assert!(!frozen.contains_now());
        assert_eq!(
            frozen,
            Expr::Binary {
                left: Box::new(Expr::Literal(Value::Timestamp(42))),
                op: BinOp::Gt,
                right: Box::new(Expr::Literal(Value::Timestamp(42))),
            }
        );
    }

    #[test]
    fn ident_quoting() {
        assert_eq!(ident("parts"), "parts");
        assert_eq!(ident("weird name"), "\"weird name\"");
        assert_eq!(ident("1abc"), "\"1abc\"");
    }

    #[test]
    fn statement_table_and_write_flags() {
        let del = Statement::Delete {
            table: "parts".into(),
            predicate: None,
        };
        assert_eq!(del.table(), Some("parts"));
        assert!(del.is_write());
        assert!(!Statement::Begin.is_write());
        assert_eq!(Statement::Commit.table(), None);
    }

    #[test]
    fn display_update_matches_paper_style() {
        let s = Statement::Update {
            table: "PARTS".into(),
            sets: vec![("status".into(), Expr::Literal(Value::Str("revised".into())))],
            predicate: Some(Expr::Binary {
                left: Box::new(Expr::Column("last_modified_date".into())),
                op: BinOp::Gt,
                right: Box::new(Expr::Literal(Value::Int(19991115))),
            }),
        };
        assert_eq!(
            s.to_string(),
            "UPDATE PARTS SET status = 'revised' WHERE (last_modified_date > 19991115)"
        );
    }
}
