//! Property-based tests for the SQL layer: the canonical printer must be a
//! right inverse of the parser (this is what makes the Op-Delta wire format
//! lossless), and evaluation must respect SQL three-valued logic.

use proptest::prelude::*;

use delta_sql::ast::{AggFunc, BinOp, Expr, SelectItem, Statement, UnOp};
use delta_sql::eval::{EvalContext, NoRow};
use delta_sql::parser::{parse_expression, parse_statement};
use delta_storage::Value;

fn arb_literal() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        prop::num::f64::NORMAL.prop_map(Value::Double),
        any::<bool>().prop_map(Value::Bool),
        "\\PC{0,20}".prop_map(Value::Str),
    ]
}

fn arb_ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_filter("avoid bare keywords", |s| {
        !matches!(
            s.as_str(),
            "select"
                | "from"
                | "where"
                | "and"
                | "or"
                | "not"
                | "is"
                | "null"
                | "true"
                | "false"
                | "as"
                | "set"
                | "values"
                | "into"
                | "begin"
                | "commit"
                | "now"
                | "insert"
                | "update"
                | "delete"
                | "create"
                | "drop"
                | "table"
                | "rollback"
                | "abort"
                | "key"
                | "primary"
        )
    })
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        arb_literal().prop_map(Expr::Literal),
        arb_ident().prop_map(Expr::Column),
        Just(Expr::Now),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), arb_binop()).prop_map(|(l, r, op)| Expr::Binary {
                left: Box::new(l),
                op,
                right: Box::new(r),
            }),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(e),
            }),
            (inner.clone(), any::<bool>()).prop_map(|(e, n)| Expr::IsNull {
                expr: Box::new(e),
                negated: n,
            }),
        ]
    })
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
    ]
}

fn arb_statement() -> impl Strategy<Value = Statement> {
    let insert = (
        arb_ident(),
        prop::collection::vec(arb_ident(), 1..4),
        prop::collection::vec(prop::collection::vec(arb_expr(), 1..4), 1..4),
    )
        .prop_map(|(table, cols, mut rows)| {
            let n = cols.len();
            for r in &mut rows {
                r.truncate(n);
                while r.len() < n {
                    r.push(Expr::Literal(Value::Int(0)));
                }
            }
            Statement::Insert {
                table,
                columns: Some(cols),
                rows,
            }
        });
    let update = (
        arb_ident(),
        prop::collection::vec((arb_ident(), arb_expr()), 1..4),
        prop::option::of(arb_expr()),
    )
        .prop_map(|(table, sets, predicate)| Statement::Update {
            table,
            sets,
            predicate,
        });
    let delete = (arb_ident(), prop::option::of(arb_expr()))
        .prop_map(|(table, predicate)| Statement::Delete { table, predicate });
    let arb_agg = (
        prop_oneof![
            Just(AggFunc::Count),
            Just(AggFunc::Sum),
            Just(AggFunc::Avg),
            Just(AggFunc::Min),
            Just(AggFunc::Max),
        ],
        prop::option::of(arb_expr()),
    )
        .prop_map(|(func, arg)| match (func, arg) {
            (AggFunc::Count, None) => Expr::Aggregate { func, arg: None },
            (_, None) => Expr::Aggregate {
                func,
                arg: Some(Box::new(Expr::Column("x".into()))),
            },
            (_, Some(a)) => Expr::Aggregate {
                func,
                arg: Some(Box::new(a)),
            },
        });
    let select = (
        arb_ident(),
        prop::collection::vec(
            prop_oneof![
                Just(SelectItem::Wildcard),
                (arb_expr(), prop::option::of(arb_ident()))
                    .prop_map(|(expr, alias)| SelectItem::Expr { expr, alias }),
                (arb_agg, prop::option::of(arb_ident()))
                    .prop_map(|(expr, alias)| SelectItem::Expr { expr, alias }),
            ],
            1..4,
        ),
        prop::option::of(arb_expr()),
    )
        .prop_map(|(table, projection, predicate)| Statement::Select {
            projection,
            table,
            predicate,
            group_by: vec![],
            order_by: vec![],
            limit: None,
        });
    prop_oneof![insert, update, delete, select]
}

// Insert-statement column names must be unique for semantic round trips;
// the printer/parser pair does not care, so no constraint needed here.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(768))]

    #[test]
    fn printed_expressions_reparse_identically(e in arb_expr()) {
        let text = e.to_string();
        let back = parse_expression(&text)
            .map_err(|err| TestCaseError::fail(format!("{err} for {text}")))?;
        prop_assert_eq!(back, e, "text was: {}", text);
    }

    #[test]
    fn printed_statements_reparse_identically(s in arb_statement()) {
        let text = s.to_string();
        let back = parse_statement(&text)
            .map_err(|err| TestCaseError::fail(format!("{err} for {text}")))?;
        prop_assert_eq!(back, s, "text was: {}", text);
    }

    #[test]
    fn freeze_now_is_idempotent_and_complete(e in arb_expr(), now in any::<i64>()) {
        let frozen = e.freeze_now(now);
        prop_assert!(!frozen.contains_now());
        prop_assert_eq!(frozen.freeze_now(now.wrapping_add(1)), frozen.clone());
    }

    #[test]
    fn constant_predicates_evaluate_with_3vl(a in arb_literal(), b in arb_literal()) {
        // NULL op X is NULL for comparisons; evaluation never panics.
        let e = Expr::Binary {
            left: Box::new(Expr::Literal(a.clone())),
            op: BinOp::Eq,
            right: Box::new(Expr::Literal(b.clone())),
        };
        let ctx = EvalContext::new(&NoRow, 0);
        match ctx.eval(&e) {
            Ok(v) => {
                if a.is_null() || b.is_null() {
                    prop_assert_eq!(v, Value::Null);
                } else {
                    prop_assert!(matches!(v, Value::Bool(_)));
                }
            }
            Err(_) => {
                // Incomparable types: allowed, but only when both non-null.
                prop_assert!(!a.is_null() && !b.is_null());
            }
        }
    }
}
