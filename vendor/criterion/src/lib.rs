//! Offline shim for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! minimal timing harness with criterion's API shape: `criterion_group!` /
//! `criterion_main!`, `Criterion::bench_function`, benchmark groups with
//! `sample_size`, and `Bencher::iter` / `iter_batched`. Each benchmark runs
//! `sample_size` timed iterations after one warm-up and prints min / mean /
//! max wall time — enough to eyeball the paper-reproduction tables offline,
//! not a statistical replacement for real criterion.

use std::time::{Duration, Instant};

/// How batched setup output is sized; only the variants DeltaForge uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Fresh input per iteration.
    PerIteration,
    /// Small batches (treated like `PerIteration` here).
    SmallInput,
    /// Large batches (treated like `PerIteration` here).
    LargeInput,
}

/// Opaque-to-the-optimizer identity, re-exported like criterion's.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Passed to benchmark closures; records timed iterations.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine` for the configured number of samples.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        black_box(routine()); // warm-up, untimed
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Time `routine` over inputs built by `setup`; setup time is excluded.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        black_box(routine(setup())); // warm-up, untimed
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("bench {name}: no samples");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().expect("nonempty");
    let max = samples.iter().max().expect("nonempty");
    println!(
        "bench {name}: mean {mean:?} min {min:?} max {max:?} ({} samples)",
        samples.len()
    );
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, self.sample_size, f);
        self
    }

    /// Start a named group whose benchmarks share settings.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size,
        }
    }
}

/// A group of related benchmarks (criterion's `BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one named benchmark within the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), self.sample_size, f);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

fn run_one(name: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut b);
    report(name, &b.samples);
}

/// Declare a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the benchmark `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 11, "one warm-up plus sample_size timed runs");
    }

    #[test]
    fn groups_honor_sample_size() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut setups = 0u32;
        g.bench_function("batched", |b| {
            b.iter_batched(|| setups += 1, |_| (), BatchSize::PerIteration)
        });
        g.finish();
        assert_eq!(setups, 4);
    }
}
