//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal std-backed implementation of the exact API surface DeltaForge
//! uses: non-poisoning `Mutex`/`RwLock` (guards returned directly, no
//! `Result`) and a `Condvar` whose `wait_until` takes the guard by `&mut`.
//! Poisoned std locks are recovered transparently, matching parking_lot's
//! no-poisoning semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::{Duration, Instant};

/// A mutual-exclusion primitive; `lock` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait_until` can move the std guard out and back.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A reader-writer lock; `read`/`write` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-access RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire exclusive access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable operating on [`MutexGuard`]s held by `&mut`.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified; the guard is released while waiting and
    /// reacquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    /// Block until notified or `deadline` is reached.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().expect("worker");
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        h.join().expect("waiter");
    }
}
