//! Numeric strategies (`prop::num`).

/// Strategies over `f64`.
pub mod f64 {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// Strategy producing normal floats: finite, nonzero, not subnormal —
    /// mirroring `proptest::num::f64::NORMAL`.
    #[derive(Debug, Clone, Copy)]
    pub struct NormalStrategy;

    /// Any normal `f64` (positive or negative).
    pub const NORMAL: NormalStrategy = NormalStrategy;

    impl Strategy for NormalStrategy {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            loop {
                // Uniform over bit patterns is roughly log-uniform over
                // magnitude, which covers every exponent regime.
                let v = f64::from_bits(rng.next_u64());
                if v.is_normal() {
                    return v;
                }
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn normal_is_normal() {
            let mut rng = TestRng::from_seed(17);
            for _ in 0..1000 {
                assert!(NORMAL.generate(&mut rng).is_normal());
            }
        }
    }
}
