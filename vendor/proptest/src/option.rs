//! Option strategies (`prop::option`).

use std::fmt::Debug;

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// Strategy yielding `None` a quarter of the time, `Some(inner)` otherwise.
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S>
where
    S::Value: Debug,
{
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.one_in(4) {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// `prop::option::of`: optional values of `inner`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
