//! String strategies from a small regex-pattern subset.
//!
//! `&'static str` implements [`Strategy`] by interpreting the pattern the way
//! proptest does. Supported syntax (everything the workspace's tests use):
//! character classes `[a-z0-9_]` (ranges, literals, `\`-escapes), the Unicode
//! shorthand `\PC` (any non-control scalar), literal characters, and
//! repetition `{n}` / `{m,n}` / `*` / `+` / `?`.

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// One parsed pattern element: a set of candidate chars plus a repeat range.
#[derive(Debug, Clone)]
struct Elem {
    set: CharSet,
    min: usize,
    max: usize,
}

#[derive(Debug, Clone)]
enum CharSet {
    /// Explicit alternatives: single chars and inclusive ranges.
    Class {
        singles: Vec<char>,
        ranges: Vec<(char, char)>,
    },
    /// `\PC`: any non-control Unicode scalar.
    AnyPrintable,
}

/// A selection of printable non-ASCII scalars so `\PC` exercises multi-byte
/// UTF-8, combining-free accents, CJK, and astral-plane chars.
const UNICODE_SAMPLES: &[char] = &[
    'é', 'ß', 'ñ', 'ü', 'Ø', 'Ж', 'λ', 'Ω', 'π', 'ا', 'ह', '中', '日', '한', 'ア', '字', '€', '™',
    '∞', '𝒜', '🚀', '☃',
];

fn parse_pattern(pat: &str) -> Vec<Elem> {
    let chars: Vec<char> = pat.chars().collect();
    let mut at = 0;
    let mut elems = Vec::new();
    while at < chars.len() {
        let set = match chars[at] {
            '\\' => {
                at += 1;
                match chars.get(at) {
                    Some('P') | Some('p') => {
                        // Only the category-C shorthand is supported.
                        assert_eq!(
                            chars.get(at + 1),
                            Some(&'C'),
                            "unsupported \\P class in {pat:?}"
                        );
                        at += 2;
                        CharSet::AnyPrintable
                    }
                    Some(&c) => {
                        at += 1;
                        let lit = match c {
                            'n' => '\n',
                            'r' => '\r',
                            't' => '\t',
                            other => other,
                        };
                        CharSet::Class {
                            singles: vec![lit],
                            ranges: vec![],
                        }
                    }
                    None => panic!("dangling escape in pattern {pat:?}"),
                }
            }
            '[' => {
                at += 1;
                let mut singles = Vec::new();
                let mut ranges = Vec::new();
                let mut pending: Option<char> = None;
                loop {
                    let c = *chars
                        .get(at)
                        .unwrap_or_else(|| panic!("unterminated class in {pat:?}"));
                    at += 1;
                    match c {
                        ']' => break,
                        '\\' => {
                            let e = *chars
                                .get(at)
                                .unwrap_or_else(|| panic!("dangling escape in {pat:?}"));
                            at += 1;
                            let lit = match e {
                                'n' => '\n',
                                'r' => '\r',
                                't' => '\t',
                                other => other,
                            };
                            if let Some(p) = pending.take() {
                                singles.push(p);
                            }
                            pending = Some(lit);
                        }
                        '-' if pending.is_some() && chars.get(at).is_some_and(|c| *c != ']') => {
                            let lo = pending.take().expect("checked");
                            let mut hi = chars[at];
                            at += 1;
                            if hi == '\\' {
                                hi = chars[at];
                                at += 1;
                            }
                            assert!(lo <= hi, "inverted range in {pat:?}");
                            ranges.push((lo, hi));
                        }
                        other => {
                            if let Some(p) = pending.take() {
                                singles.push(p);
                            }
                            pending = Some(other);
                        }
                    }
                }
                if let Some(p) = pending.take() {
                    singles.push(p);
                }
                assert!(
                    !singles.is_empty() || !ranges.is_empty(),
                    "empty class in {pat:?}"
                );
                CharSet::Class { singles, ranges }
            }
            lit => {
                at += 1;
                CharSet::Class {
                    singles: vec![lit],
                    ranges: vec![],
                }
            }
        };
        // Optional repetition suffix.
        let (min, max) = match chars.get(at) {
            Some('{') => {
                at += 1;
                let mut digits = String::new();
                while chars.get(at).is_some_and(char::is_ascii_digit) {
                    digits.push(chars[at]);
                    at += 1;
                }
                let lo: usize = digits
                    .parse()
                    .unwrap_or_else(|_| panic!("bad repeat in {pat:?}"));
                let hi = if chars.get(at) == Some(&',') {
                    at += 1;
                    let mut digits = String::new();
                    while chars.get(at).is_some_and(char::is_ascii_digit) {
                        digits.push(chars[at]);
                        at += 1;
                    }
                    digits
                        .parse()
                        .unwrap_or_else(|_| panic!("bad repeat in {pat:?}"))
                } else {
                    lo
                };
                assert_eq!(chars.get(at), Some(&'}'), "unterminated repeat in {pat:?}");
                at += 1;
                (lo, hi)
            }
            Some('*') => {
                at += 1;
                (0, 16)
            }
            Some('+') => {
                at += 1;
                (1, 16)
            }
            Some('?') => {
                at += 1;
                (0, 1)
            }
            _ => (1, 1),
        };
        assert!(min <= max, "inverted repeat in {pat:?}");
        elems.push(Elem { set, min, max });
    }
    elems
}

fn generate_char(set: &CharSet, rng: &mut TestRng) -> char {
    match set {
        CharSet::Class { singles, ranges } => {
            // Weight each range by its width so wide ranges dominate.
            let range_total: usize = ranges
                .iter()
                .map(|(lo, hi)| *hi as usize - *lo as usize + 1)
                .sum();
            let total = singles.len() + range_total;
            let mut pick = rng.below(total);
            if pick < singles.len() {
                return singles[pick];
            }
            pick -= singles.len();
            for (lo, hi) in ranges {
                let width = *hi as usize - *lo as usize + 1;
                if pick < width {
                    // Rejection-free only when the range spans no surrogates;
                    // test patterns are ASCII ranges, so this never loops.
                    return char::from_u32(*lo as u32 + pick as u32)
                        .unwrap_or_else(|| char::from_u32(*lo as u32).expect("range start"));
                }
                pick -= width;
            }
            unreachable!("class weights exhausted")
        }
        CharSet::AnyPrintable => {
            if rng.below(100) < 80 {
                // ASCII printable.
                char::from_u32(rng.u64_in(0x20, 0x7f) as u32).expect("ascii printable")
            } else {
                UNICODE_SAMPLES[rng.below(UNICODE_SAMPLES.len())]
            }
        }
    }
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let elems = parse_pattern(self);
        let mut out = String::new();
        for e in &elems {
            let n = if e.min == e.max {
                e.min
            } else {
                e.min + rng.below(e.max - e.min + 1)
            };
            for _ in 0..n {
                out.push(generate_char(&e.set, rng));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ident_pattern_shape() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..300 {
            let s = "[a-z][a-z0-9_]{0,8}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 9);
            let mut cs = s.chars();
            assert!(cs.next().expect("nonempty").is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn printable_ascii_range_pattern() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..200 {
            let s = "[ -~]{0,40}".generate(&mut rng);
            assert!(s.len() <= 40);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn escape_class_pattern() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..200 {
            let s = "[|\\\\\n\r\t']{0,10}".generate(&mut rng);
            assert!(s.chars().all(|c| "|\\\n\r\t'".contains(c)));
        }
    }

    #[test]
    fn unicode_pattern_is_printable() {
        let mut rng = TestRng::from_seed(4);
        let mut saw_non_ascii = false;
        for _ in 0..400 {
            let s = "\\PC{0,24}".generate(&mut rng);
            assert!(s.chars().count() <= 24);
            assert!(s.chars().all(|c| !c.is_control()));
            saw_non_ascii |= !s.is_ascii();
        }
        assert!(saw_non_ascii, "\\PC should exercise non-ASCII");
    }
}
