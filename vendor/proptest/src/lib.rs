//! Offline mini-proptest: a std-only shim exposing the `proptest` API surface
//! DeltaForge's property tests use.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! this implementation. Semantics match real proptest where the tests can
//! observe them: strategies compose (`prop_map`, `prop_filter`,
//! `prop_recursive`, `prop_oneof!`, collections, regex-subset strings), the
//! `proptest!` macro runs `ProptestConfig::cases` generated cases, and
//! `prop_assert*`/`prop_assume!` report failures with the offending inputs.
//! Shrinking is deliberately omitted — generation is deterministically seeded
//! per test, so any failure replays exactly under `cargo test`.

pub mod collection;
pub mod num;
pub mod option;
pub mod rng;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop` namespace (`prop::collection::vec`, `prop::option::of`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::num;
        pub use crate::option;
    }
}

/// Weighted or unweighted choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Property-style assertion: fails the current case (with source location)
/// instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} at {}:{}", format!($($fmt)+), file!(), line!()),
            ));
        }
    };
}

/// Property-style equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assert_eq failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assert_eq failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Property-style inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, "assert_ne failed: both `{:?}`", left);
    }};
}

/// Discard the current case when its inputs are unsuitable.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Define property tests: each runs `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::rng::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                while passed < config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let inputs = {
                        let mut s = String::new();
                        $(
                            s.push_str(concat!(stringify!($arg), " = "));
                            s.push_str(&format!("{:?}; ", &$arg));
                        )+
                        s
                    };
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        Ok(()) => passed += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            assert!(
                                rejected
                                    < config
                                        .cases
                                        .saturating_mul(16)
                                        .saturating_add(config.max_global_rejects),
                                "proptest {}: too many rejected cases ({rejected})",
                                stringify!($name),
                            );
                        }
                        Err($crate::test_runner::TestCaseError::Fail(reason)) => {
                            panic!(
                                "proptest {} failed after {} passing case(s): {}\n  inputs: {}",
                                stringify!($name),
                                passed,
                                reason,
                                inputs,
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn addition_commutes(a in any::<i64>(), b in any::<i64>()) {
            prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
        }

        #[test]
        fn assume_discards_without_failing(v in 0i64..10) {
            prop_assume!(v != 3);
            prop_assert!(v != 3);
        }

        #[test]
        fn question_mark_propagates(v in 0i64..10) {
            let parsed: i64 = v
                .to_string()
                .parse()
                .map_err(|e| TestCaseError::fail(format!("{e}")))?;
            prop_assert_eq!(parsed, v);
            return Ok(());
        }
    }

    #[test]
    #[should_panic(expected = "proptest always_fails failed")]
    fn failures_panic_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(v in 0i64..10) {
                prop_assert!(v < 0, "v was {}", v);
            }
        }
        always_fails();
    }
}
