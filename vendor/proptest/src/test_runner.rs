//! Test-runner configuration and case-level error type.

/// Per-`proptest!` block configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of successful cases required per test.
    pub cases: u32,
    /// Accepted for API compatibility; this shim does not shrink (the RNG is
    /// deterministically seeded instead, so failures replay exactly).
    pub max_shrink_iters: u32,
    /// Upper bound on `prop_assume!` rejections before the test aborts
    /// (added to 16x the case count).
    pub max_global_rejects: u32,
}

impl Config {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Config {
        Config {
            cases,
            ..Config::default()
        }
    }
}

impl Default for Config {
    fn default() -> Config {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(256);
        Config {
            cases,
            max_shrink_iters: 1024,
            max_global_rejects: 1024,
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property does not hold: the whole test fails.
    Fail(String),
    /// The inputs were unsuitable (`prop_assume!`): the case is discarded.
    Reject(String),
}

impl TestCaseError {
    /// A failing case with `reason`.
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(reason.into())
    }

    /// A discarded case with `reason`.
    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "case rejected: {r}"),
        }
    }
}

impl std::error::Error for TestCaseError {}
