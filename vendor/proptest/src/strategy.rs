//! Strategy trait and combinators: the value-generation half of proptest.
//!
//! A [`Strategy`] deterministically maps an RNG stream to values. Shrinking
//! is intentionally not implemented — failing cases print their inputs and
//! the RNG is seeded per test, so failures reproduce exactly.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::rc::Rc;

use crate::rng::TestRng;

/// How many times filtering combinators retry before giving up.
const MAX_FILTER_TRIES: usize = 2000;

/// A generator of test values.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Produce one value from the RNG stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F, U>
    where
        Self: Sized,
    {
        Map {
            source: self,
            f,
            _marker: PhantomData,
        }
    }

    /// Keep only values satisfying `pred`; panics after too many rejects.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            source: self,
            whence,
            pred,
        }
    }

    /// Build a recursive strategy: `recurse` receives a strategy for the
    /// current level and returns the next level; levels are unioned with the
    /// leaf so all depths up to `depth` occur.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(level).boxed();
            level = Union::weighted(vec![(1, leaf.clone()), (2, deeper)]).boxed();
        }
        level
    }

    /// Type-erase into a cloneable, reference-counted strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            generate: Rc::new(move |rng| self.generate(rng)),
        }
    }
}

/// A cloneable type-erased strategy (proptest's `BoxedStrategy`).
pub struct BoxedStrategy<T> {
    generate: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            generate: Rc::clone(&self.generate),
        }
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.generate)(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F, U> {
    source: S,
    f: F,
    _marker: PhantomData<fn() -> U>,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F, U> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// Result of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_FILTER_TRIES {
            let v = self.source.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected {MAX_FILTER_TRIES} candidates",
            self.whence
        );
    }
}

/// Weighted union of type-erased strategies (what `prop_oneof!` builds).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T: Debug> Union<T> {
    /// Build from `(weight, strategy)` arms; weights must not all be zero.
    pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total as usize) as u32;
        for (w, s) in &self.arms {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights exhausted")
    }
}

/// Values with a default full-domain strategy, used by [`any`].
pub trait ArbitraryValue: Sized + Debug {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-domain strategy for `T`, edge-biased for integers.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Bias toward edges and small magnitudes like real proptest.
                match rng.below(8) {
                    0 => 0,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    3 => 1 as $t,
                    4 => (rng.next_u64() % 64) as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

arb_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

macro_rules! arb_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.i64_in(self.start as i64, self.end as i64) as $t
            }
        }
    )*};
}

arb_range!(i8, i16, i32, i64, u8, u16, u32, usize);

impl Strategy for std::ops::Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        rng.u64_in(self.start, self.end)
    }
}

macro_rules! arb_tuple {
    ($($name:ident)+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

arb_tuple!(A);
arb_tuple!(A B);
arb_tuple!(A B C);
arb_tuple!(A B C D);
arb_tuple!(A B C D E);
arb_tuple!(A B C D E F);
arb_tuple!(A B C D E F G);
arb_tuple!(A B C D E F G H);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_filter_union_compose() {
        let mut rng = TestRng::from_seed(3);
        let s = crate::strategy::Union::weighted(vec![
            (1, (0i64..10).prop_map(|v| v * 2).boxed()),
            (1, Just(-1i64).boxed()),
        ])
        .prop_filter("nonzero", |v| *v != 0);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v == -1 || (v > 0 && v < 20 && v % 2 == 0));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(i64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(v) => (*v == i64::MIN) as usize,
                Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let s = (0i64..5)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 8, 2, |inner| {
                crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
            });
        let mut rng = TestRng::from_seed(11);
        let mut saw_node = false;
        for _ in 0..200 {
            let t = s.generate(&mut rng);
            assert!(depth(&t) <= 3 + 1);
            saw_node |= matches!(t, Tree::Node(_));
        }
        assert!(saw_node, "recursion must actually recurse");
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = TestRng::from_seed(5);
        let (a, b, c) = (0i64..3, any::<bool>(), Just(7u8)).generate(&mut rng);
        assert!((0..3).contains(&a));
        let _: bool = b;
        assert_eq!(c, 7);
    }
}
