//! Collection strategies (`prop::collection`).

use std::fmt::Debug;

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// Inclusive-exclusive size bounds accepted by [`vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Debug,
{
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.lo + rng.below(self.size.hi - self.size.lo);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::collection::vec`: vectors of `element` sized within `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_stay_in_range() {
        let mut rng = TestRng::from_seed(9);
        let s = vec(0i64..5, 1..4);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
        let exact = vec(crate::strategy::any::<bool>(), 5usize);
        assert_eq!(exact.generate(&mut rng).len(), 5);
    }
}
