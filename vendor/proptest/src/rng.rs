//! Deterministic pseudo-random source for strategy generation.
//!
//! SplitMix64: tiny, fast, and statistically good enough for test-case
//! generation. Seeding is deterministic per test (hash of the test path) so
//! CI failures reproduce locally; set `PROPTEST_RNG_SEED` to explore a
//! different universe of cases.

/// The generator handed to [`crate::strategy::Strategy::generate`].
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from raw state.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9e3779b97f4a7c15,
        }
    }

    /// Deterministic seed derived from `name` (typically the test path),
    /// mixed with `PROPTEST_RNG_SEED` when set.
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_RNG_SEED") {
            if let Ok(n) = extra.trim().parse::<u64>() {
                h = h.wrapping_add(n.wrapping_mul(0x9e3779b97f4a7c15));
            }
        }
        TestRng::from_seed(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Next raw 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `usize` in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0, "below(0)");
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform `u64` in `[lo, hi)`; `lo < hi`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi, "empty range");
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform `i64` in `[lo, hi)`; `lo < hi`.
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        let span = (hi as i128 - lo as i128) as u128;
        (lo as i128 + (self.next_u64() as u128 % span) as i128) as i64
    }

    /// Uniform boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// One-in-`n` chance.
    pub fn one_in(&mut self, n: usize) -> bool {
        self.below(n) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let a: Vec<u64> = {
            let mut r = TestRng::deterministic("x::y");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::deterministic("x::y");
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = TestRng::from_seed(7);
        for _ in 0..1000 {
            let v = r.i64_in(-5, 5);
            assert!((-5..5).contains(&v));
            let u = r.u64_in(1, 1000);
            assert!((1..1000).contains(&u));
            assert!(r.below(3) < 3);
        }
    }
}
