//! Offline shim for the `bytes` crate.
//!
//! Implements the subset DeltaForge's codecs use: [`Buf`] for `&[u8]` and
//! [`BufMut`] for `Vec<u8>`, with big-endian fixed-width accessors exactly
//! matching the real crate's defaults, so any data written by one is readable
//! by the other.

/// Read access to a contiguous, consumable byte cursor.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Consume `cnt` bytes.
    ///
    /// # Panics
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Copy `dst.len()` bytes out, consuming them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Consume one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Consume one signed byte.
    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    /// Consume a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Consume a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Consume a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Consume a big-endian `i64`.
    fn get_i64(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_be_bytes(b)
    }

    /// Consume a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

/// Write access to a growable byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append one signed byte.
    fn put_i8(&mut self, v: i8) {
        self.put_u8(v as u8);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_all_widths() {
        let mut out = Vec::new();
        out.put_u8(0xAB);
        out.put_u16(0x1234);
        out.put_u32(0xDEADBEEF);
        out.put_u64(0x0102030405060708);
        out.put_i64(-42);
        out.put_f64(1.5);
        out.put_slice(b"tail");
        let mut buf = &out[..];
        assert_eq!(buf.get_u8(), 0xAB);
        assert_eq!(buf.get_u16(), 0x1234);
        assert_eq!(buf.get_u32(), 0xDEADBEEF);
        assert_eq!(buf.get_u64(), 0x0102030405060708);
        assert_eq!(buf.get_i64(), -42);
        assert_eq!(buf.get_f64(), 1.5);
        assert_eq!(buf.remaining(), 4);
        buf.advance(4);
        assert!(!buf.has_remaining());
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut buf: &[u8] = &[1, 2];
        let _ = buf.get_u32();
    }
}
