//! System-level property tests: for *random workloads*, every delta pathway
//! must reconstruct the source state exactly.
//!
//! * Op-Delta capture → replay ≡ source (§4's correctness premise),
//! * trigger capture → value-delta apply ≡ source,
//! * archive-log extraction ≡ trigger extraction (same state changes),
//! * snapshot differential applied to the old snapshot ≡ new snapshot,
//!   for both diff algorithms and any window size.

use proptest::prelude::*;

use deltaforge::core::logextract::LogExtractor;
use deltaforge::core::model::{DeltaOp, ValueDelta};
use deltaforge::core::opdelta::{collect_from_table, OpDeltaCapture, OpLogSink};
use deltaforge::core::snapshot::{diff_snapshots, take_snapshot, DiffAlgorithm};
use deltaforge::core::trigger_extract::TriggerExtractor;
use deltaforge::engine::db::{Database, DbOptions};
use deltaforge::storage::{Column, DataType, Row, Schema};
use deltaforge::warehouse::{
    AggSpec, AggViewDef, MirrorConfig, OpDeltaApplier, ValueDeltaApplier, Warehouse,
};

/// One abstract workload step; ids are folded into a small space so inserts,
/// updates and deletes collide interestingly.
#[derive(Debug, Clone)]
enum Step {
    Insert { id: i64, val: i64, txt: String },
    UpdateById { id: i64, val: i64 },
    UpdateRange { lo: i64, hi: i64, delta: i64 },
    DeleteById { id: i64 },
    DeleteRange { lo: i64, hi: i64 },
    Txn(Vec<Step>),
}

fn arb_leaf() -> impl Strategy<Value = Step> {
    let id = 0i64..24;
    prop_oneof![
        (id.clone(), any::<i64>(), "[a-z]{0,8}").prop_map(|(id, val, txt)| Step::Insert {
            id,
            val: val % 1000,
            txt
        }),
        (id.clone(), any::<i64>()).prop_map(|(id, val)| Step::UpdateById {
            id,
            val: val % 1000
        }),
        (id.clone(), 0i64..8, -5i64..5).prop_map(|(lo, span, delta)| Step::UpdateRange {
            lo,
            hi: lo + span,
            delta
        }),
        id.clone().prop_map(|id| Step::DeleteById { id }),
        (id, 0i64..6).prop_map(|(lo, span)| Step::DeleteRange { lo, hi: lo + span }),
    ]
}

fn arb_workload() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        prop_oneof![
            4 => arb_leaf(),
            1 => prop::collection::vec(arb_leaf(), 1..4).prop_map(Step::Txn),
        ],
        1..16,
    )
}

fn step_sql(step: &Step) -> Vec<String> {
    match step {
        Step::Insert { id, val, txt } => {
            vec![format!("INSERT INTO parts VALUES ({id}, {val}, '{txt}')")]
        }
        Step::UpdateById { id, val } => {
            vec![format!("UPDATE parts SET val = {val} WHERE id = {id}")]
        }
        Step::UpdateRange { lo, hi, delta } => vec![format!(
            "UPDATE parts SET val = val + {delta} WHERE id >= {lo} AND id <= {hi}"
        )],
        Step::DeleteById { id } => vec![format!("DELETE FROM parts WHERE id = {id}")],
        Step::DeleteRange { lo, hi } => {
            vec![format!("DELETE FROM parts WHERE id >= {lo} AND id <= {hi}")]
        }
        Step::Txn(steps) => {
            let mut v = vec!["BEGIN".to_string()];
            v.extend(steps.iter().flat_map(step_sql));
            v.push("COMMIT".to_string());
            v
        }
    }
}

fn schema() -> Schema {
    Schema::new(vec![
        Column::new("id", DataType::Int).primary_key(),
        Column::new("val", DataType::Int),
        Column::new("txt", DataType::Varchar),
    ])
    .unwrap()
}

fn scratch(label: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "deltaforge-prop-{}-{:?}-{label}-{}",
        std::process::id(),
        std::thread::current().id(),
        COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ))
}

static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

fn open(dir: &std::path::Path, archive: bool) -> std::sync::Arc<Database> {
    Database::open(DbOptions::new(dir).archive(archive)).unwrap()
}

fn create_parts(db: &std::sync::Arc<Database>) {
    db.session()
        .execute("CREATE TABLE parts (id INT PRIMARY KEY, val INT, txt VARCHAR)")
        .unwrap();
}

fn sorted_state(db: &Database) -> Vec<Row> {
    let mut rows: Vec<Row> = db
        .scan_table("parts")
        .unwrap()
        .into_iter()
        .map(|(_, r)| r)
        .collect();
    rows.sort_by(|a, b| a.values()[0].total_cmp(&b.values()[0]));
    rows
}

/// Run the workload through a statement runner, ignoring expected failures
/// (duplicate-key inserts). Transactions that fail mid-way are rolled back.
fn drive(mut run: impl FnMut(&str) -> Result<(), String>, workload: &[Step]) {
    for step in workload {
        match step {
            Step::Txn(_) => {
                let stmts = step_sql(step);
                let mut failed = false;
                for sql in &stmts {
                    if failed && sql != "COMMIT" {
                        continue;
                    }
                    if failed && sql == "COMMIT" {
                        run("ROLLBACK").ok();
                        continue;
                    }
                    if run(sql).is_err() {
                        failed = true;
                    }
                }
            }
            other => {
                for sql in step_sql(other) {
                    run(&sql).ok();
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 64,
        .. ProptestConfig::default()
    })]

    #[test]
    fn op_delta_replay_reconstructs_source(workload in arb_workload()) {
        let dir = scratch("opd");
        let src = open(&dir.join("src"), false);
        create_parts(&src);
        let mut cap = OpDeltaCapture::new(src.session(), OpLogSink::Table("op_log".into())).unwrap();
        drive(|sql| cap.execute(sql).map(|_| ()).map_err(|e| e.to_string()), &workload);

        let ods = collect_from_table(&src, "op_log").unwrap();
        let wh_db = open(&dir.join("wh"), false);
        let mut wh = Warehouse::new(wh_db);
        wh.add_mirror(MirrorConfig::full("parts", schema())).unwrap();
        OpDeltaApplier::apply_all(&wh, &ods).unwrap();
        prop_assert_eq!(sorted_state(&src), sorted_state(wh.db()));
    }

    #[test]
    fn value_delta_apply_reconstructs_source(workload in arb_workload()) {
        let dir = scratch("vd");
        let src = open(&dir.join("src"), false);
        create_parts(&src);
        let x = TriggerExtractor::new("parts");
        x.install(&src).unwrap();
        let mut s = src.session();
        drive(|sql| s.execute(sql).map(|_| ()).map_err(|e| e.to_string()), &workload);
        let vd = x.drain(&src).unwrap();

        let wh_db = open(&dir.join("wh"), false);
        let mut wh = Warehouse::new(wh_db);
        wh.add_mirror(MirrorConfig::full("parts", schema())).unwrap();
        ValueDeltaApplier::apply(&wh, &vd).unwrap();
        prop_assert_eq!(sorted_state(&src), sorted_state(wh.db()));
    }

    #[test]
    fn aggregate_view_matches_recompute_after_random_workload(workload in arb_workload()) {
        use deltaforge::sql::ast::AggFunc;
        let dir = scratch("aggprop");
        let src = open(&dir.join("src"), false);
        create_parts(&src);
        TriggerExtractor::new("parts").install(&src).unwrap();
        let mut s = src.session();
        drive(|sql| s.execute(sql).map(|_| ()).map_err(|e| e.to_string()), &workload);
        let vd = TriggerExtractor::new("parts").drain(&src).unwrap();

        let wh_db = open(&dir.join("wh"), false);
        let mut wh = Warehouse::new(wh_db);
        wh.add_mirror(MirrorConfig::full("parts", schema())).unwrap();
        wh.add_agg_view(AggViewDef {
            name: "summary".into(),
            table: "parts".into(),
            group_by: vec!["txt".into()],
            aggregates: vec![
                AggSpec::count_star(),
                AggSpec::of(AggFunc::Sum, "val"),
                AggSpec::of(AggFunc::Min, "val"),
                AggSpec::of(AggFunc::Max, "val"),
                AggSpec::of(AggFunc::Avg, "val"),
            ],
            selection: None,
        }).unwrap();
        ValueDeltaApplier::apply(&wh, &vd).unwrap();
        let v = wh.agg_view("summary").unwrap();
        prop_assert!(
            v.verify_against_recompute(wh.db()).unwrap(),
            "incrementally maintained summary diverged from recompute"
        );
    }

    #[test]
    fn log_and_trigger_extraction_agree(workload in arb_workload()) {
        let dir = scratch("logtrig");
        let src = open(&dir.join("src"), true);
        create_parts(&src);
        let x = TriggerExtractor::new("parts");
        x.install(&src).unwrap();
        let mut log_x = LogExtractor::for_tables(&["parts"]);
        log_x.extract(&src).unwrap(); // consume DDL-era records
        let mut s = src.session();
        drive(|sql| s.execute(sql).map(|_| ()).map_err(|e| e.to_string()), &workload);

        let trig: ValueDelta = x.drain(&src).unwrap();
        let logd = log_x.extract(&src).unwrap();
        let log_records = logd.into_iter().find(|d| d.table == "parts");
        let trig_ops: Vec<(DeltaOp, Row)> =
            trig.records.iter().map(|r| (r.op, r.row.clone())).collect();
        let log_ops: Vec<(DeltaOp, Row)> = log_records
            .map(|d| d.records.iter().map(|r| (r.op, r.row.clone())).collect())
            .unwrap_or_default();
        // Both capture exactly the same committed state changes, in order.
        prop_assert_eq!(trig_ops, log_ops);
    }

    #[test]
    fn snapshot_diff_is_a_correct_delta(
        workload in arb_workload(),
        window in prop_oneof![Just(0usize), Just(2), Just(64), Just(4096)],
        use_window in any::<bool>(),
    ) {
        let dir = scratch("snap");
        std::fs::create_dir_all(&dir).unwrap();
        let src = open(&dir.join("src"), false);
        create_parts(&src);
        // Seed a little, snapshot, run the workload, snapshot again.
        let mut s = src.session();
        for i in 0..8 {
            s.execute(&format!("INSERT INTO parts VALUES ({i}, 0, 'seed')")).unwrap();
        }
        let old_path = dir.join("old.txt");
        take_snapshot(&src, "parts", &old_path).unwrap();
        drive(|sql| s.execute(sql).map(|_| ()).map_err(|e| e.to_string()), &workload);
        let new_path = dir.join("new.txt");
        take_snapshot(&src, "parts", &new_path).unwrap();

        let algo = if use_window {
            DiffAlgorithm::Window { size: window }
        } else {
            DiffAlgorithm::SortMerge { run_size: 4 }
        };
        let (vd, _) = diff_snapshots("parts", &schema(), &[0], &old_path, &new_path, algo).unwrap();

        // Apply the diff to a copy of the OLD state: must land on NEW state.
        let replica = open(&dir.join("replica"), false);
        create_parts(&replica);
        let mut rs = replica.session();
        for i in 0..8 {
            rs.execute(&format!("INSERT INTO parts VALUES ({i}, 0, 'seed')")).unwrap();
        }
        drop(rs);
        let mut wh = Warehouse::new(replica);
        wh.add_mirror(MirrorConfig::full("parts", schema())).unwrap();
        // Reorder for applicability: the window algorithm may emit an Insert
        // for a key before the Delete of its old version. Apply deletes and
        // update pairs first, then inserts (keyed batches commute per key
        // except insert-vs-delete of the same key, where delete-first is the
        // correct interleaving for a snapshot delta).
        let mut ordered = ValueDelta::new("parts", schema());
        let mut i = 0;
        let recs = &vd.records;
        let mut inserts = Vec::new();
        while i < recs.len() {
            match recs[i].op {
                DeltaOp::Insert => {
                    inserts.push(recs[i].clone());
                    i += 1;
                }
                DeltaOp::UpdateBefore => {
                    ordered.records.push(recs[i].clone());
                    ordered.records.push(recs[i + 1].clone());
                    i += 2;
                }
                _ => {
                    ordered.records.push(recs[i].clone());
                    i += 1;
                }
            }
        }
        ordered.records.extend(inserts);
        ValueDeltaApplier::apply(&wh, &ordered).unwrap();
        prop_assert_eq!(sorted_state(&src), sorted_state(wh.db()));
    }
}
