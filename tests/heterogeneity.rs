//! Heterogeneity (§2.2): two source systems with *different schemas* feed
//! the same warehouse mirror, with the transformation stage (§5) mapping
//! each source's deltas onto the warehouse schema — the collaboration
//! between extraction methods the paper says heterogeneous sources require.

use deltaforge::core::extractor::{DeltaSource, LogSource, TriggerSource};
use deltaforge::core::transform::{ColumnTransform, DeltaTransform};
use deltaforge::engine::db::{Database, DbOptions};
use deltaforge::sql::parser::parse_expression;
use deltaforge::storage::codec::export::ProductTag;
use deltaforge::storage::{Column, DataType, Row, Schema, Value};
use deltaforge::warehouse::{MirrorConfig, ValueDeltaApplier, Warehouse};

fn scratch(label: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "deltaforge-hetero-{}-{:?}-{label}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// The warehouse's unified schema for parts from every division.
fn warehouse_schema() -> Schema {
    Schema::new(vec![
        Column::new("id", DataType::Int).primary_key(),
        Column::new("qty", DataType::Int),
        Column::new("division", DataType::Varchar),
    ])
    .unwrap()
}

#[test]
fn two_heterogeneous_sources_feed_one_mirror() {
    let dir = scratch("two-sources");

    // Source A: "legacy" product, trigger-based extraction, its own schema.
    let mut opts_a = DbOptions::new(dir.join("src-a"));
    opts_a.product = ProductTag::new("legacydb", 2);
    let src_a = Database::open(opts_a).unwrap();
    src_a
        .session()
        .execute("CREATE TABLE parts (id INT PRIMARY KEY, qty INT, internal_code VARCHAR)")
        .unwrap();
    let mut trig_source = TriggerSource::install(&src_a, "parts").unwrap();

    // Source B: different product, archive-log extraction, different column
    // names and an extra factor to normalize.
    let mut opts_b = DbOptions::new(dir.join("src-b")).archive(true);
    opts_b.product = ProductTag::new("modernsys", 9);
    let src_b = Database::open(opts_b).unwrap();
    src_b
        .session()
        .execute("CREATE TABLE parts (part_no INT PRIMARY KEY, amount_dozens INT)")
        .unwrap();
    let mut log_source = LogSource::from_now(&src_b, &["parts"]);

    // Per-source transforms onto the warehouse schema. A: project + tag the
    // division, dropping the internal code. B: rename the key and convert
    // dozens to units.
    let transform_a = DeltaTransform::new().columns(vec![
        ColumnTransform::copy("id"),
        ColumnTransform::copy("qty"),
        ColumnTransform::computed(
            "division",
            parse_expression("'legacy'").unwrap(),
            DataType::Varchar,
        ),
    ]);
    let transform_b = DeltaTransform::new().columns(vec![
        ColumnTransform::renamed("part_no", "id"),
        ColumnTransform::computed(
            "qty",
            parse_expression("amount_dozens * 12").unwrap(),
            DataType::Int,
        ),
        ColumnTransform::computed(
            "division",
            parse_expression("'modern'").unwrap(),
            DataType::Varchar,
        ),
    ]);

    // Business activity on both sources. Ids are disjoint by convention
    // (division-prefixed ranges), as integration architects arrange.
    let mut sa = src_a.session();
    sa.execute("INSERT INTO parts VALUES (1001, 5, 'x-77')")
        .unwrap();
    sa.execute("INSERT INTO parts VALUES (1002, 8, 'y-12')")
        .unwrap();
    sa.execute("UPDATE parts SET qty = 6 WHERE id = 1001")
        .unwrap();
    let mut sb = src_b.session();
    sb.execute("INSERT INTO parts VALUES (2001, 3)").unwrap(); // 36 units
    sb.execute("DELETE FROM parts WHERE part_no = 2001")
        .unwrap();
    sb.execute("INSERT INTO parts VALUES (2002, 2)").unwrap(); // 24 units

    // Extract with each source's method, transform, and apply to the shared
    // warehouse mirror.
    let wh_db = Database::open(DbOptions::new(dir.join("wh"))).unwrap();
    let mut wh = Warehouse::new(wh_db);
    wh.add_mirror(MirrorConfig::full("parts", warehouse_schema()))
        .unwrap();

    for vd in trig_source.pull(&src_a).unwrap() {
        let now = src_a.peek_clock();
        let mapped = transform_a.apply(&vd, now).unwrap();
        assert_eq!(mapped.schema, warehouse_schema());
        ValueDeltaApplier::apply(&wh, &mapped).unwrap();
    }
    for vd in log_source.pull(&src_b).unwrap() {
        let now = src_b.peek_clock();
        let mapped = transform_b.apply(&vd, now).unwrap();
        ValueDeltaApplier::apply(&wh, &mapped).unwrap();
    }

    // The warehouse holds the unified view of both divisions.
    let mut rows: Vec<Row> = wh
        .db()
        .scan_table("parts")
        .unwrap()
        .into_iter()
        .map(|(_, r)| r)
        .collect();
    rows.sort_by(|a, b| a.values()[0].total_cmp(&b.values()[0]));
    assert_eq!(
        rows,
        vec![
            Row::new(vec![
                Value::Int(1001),
                Value::Int(6),
                Value::Str("legacy".into())
            ]),
            Row::new(vec![
                Value::Int(1002),
                Value::Int(8),
                Value::Str("legacy".into())
            ]),
            Row::new(vec![
                Value::Int(2002),
                Value::Int(24),
                Value::Str("modern".into())
            ]),
        ]
    );

    // And the cross-product Export constraint still bites: A's dump cannot
    // be Imported by B (the §3 reason the transform works on the neutral
    // value-delta representation instead of product formats).
    let dump = dir.join("a.exp");
    deltaforge::engine::util::export_table(&src_a, "parts", &dump).unwrap();
    let err = deltaforge::engine::util::import_table(&src_b, "parts", &dump).unwrap_err();
    assert!(err.to_string().contains("incompatible"));
}

#[test]
fn restriction_during_extraction_subsets_what_ships() {
    // §5: the timestamp/trigger methods "allow restricting, sub-setting ...
    // deltas during the extraction process" — ship only the rows the
    // warehouse wants.
    let dir = scratch("restrict");
    let src = Database::open(DbOptions::new(dir.join("src"))).unwrap();
    src.session()
        .execute("CREATE TABLE parts (id INT PRIMARY KEY, qty INT, region VARCHAR)")
        .unwrap();
    let mut source = TriggerSource::install(&src, "parts").unwrap();
    let mut s = src.session();
    s.execute("INSERT INTO parts VALUES (1, 5, 'west'), (2, 7, 'east'), (3, 9, 'west')")
        .unwrap();
    s.execute("UPDATE parts SET region = 'east' WHERE id = 3")
        .unwrap();

    let west_only = DeltaTransform::new().restrict(parse_expression("region = 'west'").unwrap());
    let vd = &source.pull(&src).unwrap()[0];
    let now = src.peek_clock();
    let shipped = west_only.apply(vd, now).unwrap();

    // Row 3 entered as west, then *left* the subset: its update became a
    // delete. Row 2 never shipped at all.
    let wh_db = Database::open(DbOptions::new(dir.join("wh"))).unwrap();
    let mut wh = Warehouse::new(wh_db);
    wh.add_mirror(MirrorConfig::full(
        "parts",
        src.table("parts").unwrap().schema.clone(),
    ))
    .unwrap();
    ValueDeltaApplier::apply(&wh, &shipped).unwrap();
    let rows = wh.db().scan_table("parts").unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].1.values()[0], Value::Int(1));
    assert!(
        shipped.wire_size() < vd.wire_size(),
        "restriction shrank the shipment"
    );
}
