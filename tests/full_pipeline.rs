//! The complete Figure 1 loop through the collector APIs: multiple
//! heterogeneous sources → per-source extraction method + transform →
//! durable queue → warehouse with views, in repeated rounds.

use deltaforge::core::extractor::{DeltaSource, LogSource, TriggerSource};
use deltaforge::core::opdelta::{OpDeltaCapture, OpLogSink};
use deltaforge::core::transform::{ColumnTransform, DeltaTransform};
use deltaforge::engine::db::{Database, DbOptions};
use deltaforge::sql::ast::AggFunc;
use deltaforge::sql::parser::parse_expression;
use deltaforge::storage::{Column, DataType, Schema, Value};
use deltaforge::warehouse::{AggSpec, AggViewDef, MirrorConfig, Pipeline, Warehouse};

fn scratch(label: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "deltaforge-fullpipe-{}-{:?}-{label}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn wh_parts_schema() -> Schema {
    Schema::new(vec![
        Column::new("id", DataType::Int).primary_key(),
        Column::new("qty", DataType::Int),
    ])
    .unwrap()
}

#[test]
fn collector_pipeline_runs_multiple_rounds() {
    let dir = scratch("rounds");

    // Source A (trigger extraction, extra column dropped by a transform).
    let src_a = Database::open(DbOptions::new(dir.join("a"))).unwrap();
    src_a
        .session()
        .execute("CREATE TABLE parts (id INT PRIMARY KEY, qty INT, note VARCHAR)")
        .unwrap();
    // Source B (log extraction; same warehouse schema already).
    let src_b = Database::open(DbOptions::new(dir.join("b")).archive(true)).unwrap();
    src_b
        .session()
        .execute("CREATE TABLE parts (id INT PRIMARY KEY, qty INT)")
        .unwrap();

    let mut sources_a: Vec<(Box<dyn DeltaSource>, Option<DeltaTransform>)> = vec![(
        Box::new(TriggerSource::install(&src_a, "parts").unwrap()),
        Some(DeltaTransform::new().columns(vec![
            ColumnTransform::copy("id"),
            ColumnTransform::copy("qty"),
        ])),
    )];
    let mut sources_b: Vec<(Box<dyn DeltaSource>, Option<DeltaTransform>)> =
        vec![(Box::new(LogSource::from_now(&src_b, &["parts"])), None)];

    // Warehouse with a summary view over the merged stream.
    let wh_db = Database::open(DbOptions::new(dir.join("wh"))).unwrap();
    let mut wh = Warehouse::new(wh_db);
    wh.add_mirror(MirrorConfig::full("parts", wh_parts_schema()))
        .unwrap();
    wh.add_agg_view(AggViewDef {
        name: "stock".into(),
        table: "parts".into(),
        group_by: vec![],
        aggregates: vec![AggSpec::count_star(), AggSpec::of(AggFunc::Sum, "qty")],
        selection: None,
    })
    .unwrap();
    let pipe = Pipeline::open(dir.join("pipe.q")).unwrap();

    for round in 0..3i64 {
        let base_a = round * 100;
        let base_b = 1000 + round * 100;
        let mut sa = src_a.session();
        sa.execute(&format!(
            "INSERT INTO parts VALUES ({base_a}, {round}, 'x')"
        ))
        .unwrap();
        if round > 0 {
            sa.execute(&format!(
                "UPDATE parts SET qty = qty + 10 WHERE id = {}",
                base_a - 100
            ))
            .unwrap();
        }
        let mut sb = src_b.session();
        sb.execute(&format!("INSERT INTO parts VALUES ({base_b}, {round})"))
            .unwrap();

        let published = pipe.collect(&src_a, &mut sources_a).unwrap()
            + pipe.collect(&src_b, &mut sources_b).unwrap();
        assert!(published >= 2, "round {round}: both sources published");
        pipe.sync(&wh).unwrap();

        // The summary is exact after every round.
        let v = wh.agg_view("stock").unwrap();
        assert!(
            v.verify_against_recompute(wh.db()).unwrap(),
            "round {round}"
        );
        assert_eq!(
            wh.db().row_count("parts").unwrap(),
            2 * (round as usize + 1),
            "round {round}"
        );
    }
    // Cross-check final totals against both sources.
    let total_wh: i64 = wh
        .db()
        .scan_table("parts")
        .unwrap()
        .iter()
        .map(|(_, r)| r.values()[1].as_int().unwrap())
        .sum();
    let total_src: i64 = [&src_a, &src_b]
        .iter()
        .flat_map(|db| db.scan_table("parts").unwrap())
        .map(|(_, r)| r.values()[1].as_int().unwrap())
        .sum();
    assert_eq!(total_wh, total_src);
}

#[test]
fn op_log_collector_ships_and_clears() {
    let dir = scratch("oplog");
    let src = Database::open(DbOptions::new(dir.join("src"))).unwrap();
    src.session()
        .execute("CREATE TABLE parts (id INT PRIMARY KEY, qty INT)")
        .unwrap();
    let mut cap = OpDeltaCapture::new(src.session(), OpLogSink::Table("op_log".into())).unwrap();
    cap.execute("INSERT INTO parts VALUES (1, 5), (2, 7)")
        .unwrap();
    cap.execute("UPDATE parts SET qty = qty * 2 WHERE qty > 6")
        .unwrap();

    let wh_db = Database::open(DbOptions::new(dir.join("wh"))).unwrap();
    let mut wh = Warehouse::new(wh_db);
    wh.add_mirror(MirrorConfig::full("parts", wh_parts_schema()))
        .unwrap();
    let pipe = Pipeline::open(dir.join("pipe.q")).unwrap();

    assert_eq!(pipe.collect_op_log(&src, "op_log").unwrap(), 2);
    assert_eq!(
        src.row_count("op_log").unwrap(),
        0,
        "log cleared after publish"
    );
    pipe.sync(&wh).unwrap();
    let r = wh
        .db()
        .session()
        .execute("SELECT qty FROM parts WHERE id = 2")
        .unwrap();
    assert_eq!(r.rows[0].values()[0], Value::Int(14));
    // Nothing left to ship on a second collect.
    assert_eq!(pipe.collect_op_log(&src, "op_log").unwrap(), 0);
}

#[test]
fn restricting_transform_in_the_collector_path() {
    let dir = scratch("restrict");
    let src = Database::open(DbOptions::new(dir.join("src"))).unwrap();
    src.session()
        .execute("CREATE TABLE parts (id INT PRIMARY KEY, qty INT)")
        .unwrap();
    let mut sources: Vec<(Box<dyn DeltaSource>, Option<DeltaTransform>)> = vec![(
        Box::new(TriggerSource::install(&src, "parts").unwrap()),
        Some(DeltaTransform::new().restrict(parse_expression("qty >= 100").unwrap())),
    )];
    let mut s = src.session();
    s.execute("INSERT INTO parts VALUES (1, 50), (2, 150), (3, 200)")
        .unwrap();

    let wh_db = Database::open(DbOptions::new(dir.join("wh"))).unwrap();
    let mut wh = Warehouse::new(wh_db);
    wh.add_mirror(MirrorConfig::full("parts", wh_parts_schema()))
        .unwrap();
    let pipe = Pipeline::open(dir.join("pipe.q")).unwrap();
    pipe.collect(&src, &mut sources).unwrap();
    pipe.sync(&wh).unwrap();
    assert_eq!(
        wh.db().row_count("parts").unwrap(),
        2,
        "only qty >= 100 shipped"
    );

    // A batch whose records are all filtered publishes nothing.
    s.execute("INSERT INTO parts VALUES (4, 1)").unwrap();
    assert_eq!(pipe.collect(&src, &mut sources).unwrap(), 0);
}
