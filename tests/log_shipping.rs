//! Log-based extraction and log shipping end-to-end (§3.1.4), including the
//! constraints the paper emphasizes: archive mode, same-product formats,
//! matching schemas, and transport-level integrity.

use deltaforge::core::logextract::LogExtractor;
use deltaforge::engine::db::{Database, DbOptions};
use deltaforge::engine::util::{export_table, import_table};
use deltaforge::engine::wal::read_segment;
use deltaforge::storage::codec::export::ProductTag;
use deltaforge::storage::Value;
use deltaforge::transport::FileTransport;

fn scratch(label: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "deltaforge-ship-{}-{:?}-{label}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn archived_segments_ship_and_replay_on_a_standby() {
    let dir = scratch("standby");
    let mut opts = DbOptions::new(dir.join("primary")).archive(true);
    opts.wal_segment_bytes = 4096; // force rotation
    let primary = Database::open(opts).unwrap();
    let mut s = primary.session();
    s.execute("CREATE TABLE parts (id INT PRIMARY KEY, name VARCHAR)")
        .unwrap();
    for i in 0..300 {
        s.execute(&format!("INSERT INTO parts VALUES ({i}, 'p{i}')"))
            .unwrap();
    }
    s.execute("UPDATE parts SET name = 'touched' WHERE id < 10")
        .unwrap();
    s.execute("DELETE FROM parts WHERE id >= 290").unwrap();
    primary.checkpoint().unwrap();

    // Ship the archived segments over the file transport (checksummed), then
    // apply them with the standby's "recovery manager".
    let segments = LogExtractor::shippable_segments(&primary).unwrap();
    assert!(
        segments.len() > 1,
        "rotation must have produced several segments"
    );
    let transport = FileTransport::new(dir.join("standby-inbox")).unwrap();
    let standby = Database::open(DbOptions::new(dir.join("standby"))).unwrap();
    let mut applied = 0;
    for seg in &segments {
        let shipped = transport.ship(seg, None).unwrap();
        let local = transport.receive(&shipped.name).unwrap();
        let records = read_segment(&local).unwrap();
        applied += standby.apply_log_records(&records).unwrap();
    }
    // The resident (unarchived) tail too.
    for seg in primary.wal().resident_segments().unwrap() {
        let records = read_segment(&seg).unwrap();
        applied += standby.apply_log_records(&records).unwrap();
    }
    assert!(applied >= 300);
    assert_eq!(standby.row_count("parts").unwrap(), 290);
    let r = standby
        .session()
        .execute("SELECT name FROM parts WHERE id = 5")
        .unwrap();
    assert_eq!(r.rows[0].values()[0], Value::Str("touched".into()));
}

#[test]
fn tampered_shipment_is_rejected_before_apply() {
    let dir = scratch("tamper");
    let primary = Database::open(DbOptions::new(dir.join("primary")).archive(true)).unwrap();
    let mut s = primary.session();
    s.execute("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
    s.execute("INSERT INTO t VALUES (1)").unwrap();
    primary.checkpoint().unwrap();
    let segments = LogExtractor::shippable_segments(&primary).unwrap();
    let transport = FileTransport::new(dir.join("inbox")).unwrap();
    let shipped = transport.ship(&segments[0], None).unwrap();
    // Corrupt in transit.
    let target = dir.join("inbox").join(&shipped.name);
    let mut bytes = std::fs::read(&target).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&target, bytes).unwrap();
    assert!(
        transport.receive(&shipped.name).is_err(),
        "manifest check must fail"
    );
}

#[test]
fn log_extraction_watermark_survives_segment_archival() {
    let dir = scratch("watermark");
    let mut opts = DbOptions::new(dir.join("src")).archive(true);
    opts.wal_segment_bytes = 4096;
    let db = Database::open(opts).unwrap();
    let mut s = db.session();
    s.execute("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
    let mut x = LogExtractor::new();
    for i in 0..100 {
        s.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
    }
    let first = x.extract(&db).unwrap();
    assert_eq!(first[0].len(), 100);
    db.checkpoint().unwrap(); // archives the closed segments
    for i in 100..150 {
        s.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
    }
    let second = x.extract(&db).unwrap();
    assert_eq!(
        second[0].len(),
        50,
        "only the new changes, despite archival"
    );
}

#[test]
fn cross_product_export_rejected_at_the_warehouse() {
    // The §3 constraint: Export dumps only load into the same product+version.
    let dir = scratch("xproduct");
    let source = Database::open(DbOptions::new(dir.join("src"))).unwrap();
    let mut s = source.session();
    s.execute("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
    s.execute("INSERT INTO t VALUES (1)").unwrap();
    let dump = dir.join("t.exp");
    export_table(&source, "t", &dump).unwrap();

    let mut other_opts = DbOptions::new(dir.join("other"));
    other_opts.product = ProductTag::new("rivaldb", 7);
    let rival = Database::open(other_opts).unwrap();
    rival
        .session()
        .execute("CREATE TABLE t (id INT PRIMARY KEY)")
        .unwrap();
    let err = import_table(&rival, "t", &dump).unwrap_err();
    assert!(err.to_string().contains("incompatible"), "{err}");

    // Same product accepts it.
    let same = Database::open(DbOptions::new(dir.join("same"))).unwrap();
    same.session()
        .execute("CREATE TABLE t (id INT PRIMARY KEY)")
        .unwrap();
    assert_eq!(import_table(&same, "t", &dump).unwrap(), 1);
}
