//! End-to-end incremental maintenance: source → capture → transport →
//! warehouse, covering both delta representations, partial mirrors, the
//! before-image hybrid, views, and crash-flavored queue semantics.

use deltaforge::core::model::{DeltaBatch, DeltaOp};
use deltaforge::core::opdelta::{clear_table, collect_from_table, OpDeltaCapture, OpLogSink};
use deltaforge::core::selfmaint::{SelfMaintAnalyzer, WarehouseProfile};
use deltaforge::core::trigger_extract::TriggerExtractor;
use deltaforge::engine::db::{Database, DbOptions};
use deltaforge::sql::parser::parse_expression;
use deltaforge::storage::{Column, DataType, Row, Schema, Value};
use deltaforge::warehouse::{
    AggSpec, AggViewDef, JoinCond, MirrorConfig, OpDeltaApplier, Pipeline, SpjView,
    ValueDeltaApplier, Warehouse,
};

fn scratch(label: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "deltaforge-e2e-{}-{:?}-{label}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn orders_schema() -> Schema {
    Schema::new(vec![
        Column::new("id", DataType::Int).primary_key(),
        Column::new("status", DataType::Varchar),
        Column::new("customer", DataType::Varchar),
        Column::new("total", DataType::Int),
    ])
    .unwrap()
}

fn sorted(db: &Database, table: &str) -> Vec<Row> {
    let mut rows: Vec<Row> = db
        .scan_table(table)
        .unwrap()
        .into_iter()
        .map(|(_, r)| r)
        .collect();
    rows.sort_by(|a, b| a.values()[0].total_cmp(&b.values()[0]));
    rows
}

#[test]
fn op_delta_pipeline_keeps_full_mirror_identical() {
    let dir = scratch("full");
    let src = Database::open(DbOptions::new(dir.join("src"))).unwrap();
    src.session()
        .execute(
            "CREATE TABLE orders (id INT PRIMARY KEY, status VARCHAR, customer VARCHAR, total INT)",
        )
        .unwrap();
    let mut cap = OpDeltaCapture::new(src.session(), OpLogSink::Table("op_log".into())).unwrap();

    let wh_db = Database::open(DbOptions::new(dir.join("wh"))).unwrap();
    let mut wh = Warehouse::new(wh_db);
    wh.add_mirror(MirrorConfig::full("orders", orders_schema()))
        .unwrap();
    let pipe = Pipeline::open(dir.join("pipe.q")).unwrap();

    // Several rounds of activity with interleaved syncs.
    for round in 0..3 {
        let base = round * 100;
        cap.execute(&format!(
            "INSERT INTO orders VALUES ({}, 'open', 'acme', 10), ({}, 'open', 'bob', 20)",
            base,
            base + 1
        ))
        .unwrap();
        cap.execute("BEGIN").unwrap();
        cap.execute(&format!(
            "UPDATE orders SET total = total + 5 WHERE id = {base}"
        ))
        .unwrap();
        cap.execute(&format!("DELETE FROM orders WHERE id = {}", base + 1))
            .unwrap();
        cap.execute("COMMIT").unwrap();
        for od in collect_from_table(&src, "op_log").unwrap() {
            pipe.publish(&DeltaBatch::Op(od)).unwrap();
        }
        clear_table(&src, "op_log").unwrap();
        pipe.sync(&wh).unwrap();
        assert_eq!(
            sorted(&src, "orders"),
            sorted(wh.db(), "orders"),
            "round {round}"
        );
    }
}

#[test]
fn hybrid_flow_maintains_projected_mirror() {
    let dir = scratch("hybrid");
    let src = Database::open(DbOptions::new(dir.join("src"))).unwrap();
    src.session()
        .execute(
            "CREATE TABLE orders (id INT PRIMARY KEY, status VARCHAR, customer VARCHAR, total INT)",
        )
        .unwrap();
    // Warehouse mirrors only (id, status, total); predicates on `customer`
    // force the §4.1 hybrid.
    let profile = WarehouseProfile::new().mirror_columns("orders", &["id", "status", "total"]);
    let mut cap = OpDeltaCapture::new(src.session(), OpLogSink::Table("op_log".into()))
        .unwrap()
        .with_analyzer(SelfMaintAnalyzer::new(profile));

    cap.execute("INSERT INTO orders VALUES (1, 'open', 'acme', 10), (2, 'open', 'acme', 20), (3, 'open', 'bob', 30)")
        .unwrap();
    cap.execute("UPDATE orders SET status = 'flagged' WHERE customer = 'acme'")
        .unwrap();
    cap.execute("DELETE FROM orders WHERE customer = 'bob'")
        .unwrap();

    let ods = collect_from_table(&src, "op_log").unwrap();
    assert_eq!(ods.len(), 3);
    assert!(
        ods[1].ops[0].before_image.is_some(),
        "update predicated on unmirrored column"
    );
    assert!(
        ods[2].ops[0].before_image.is_some(),
        "delete predicated on unmirrored column"
    );

    let wh_db = Database::open(DbOptions::new(dir.join("wh"))).unwrap();
    let mut wh = Warehouse::new(wh_db);
    wh.add_mirror(MirrorConfig::projected(
        "orders",
        orders_schema(),
        &["id", "status", "total"],
    ))
    .unwrap();
    OpDeltaApplier::apply_all(&wh, &ods).unwrap();

    let rows = sorted(wh.db(), "orders");
    assert_eq!(
        rows,
        vec![
            Row::new(vec![
                Value::Int(1),
                Value::Str("flagged".into()),
                Value::Int(10)
            ]),
            Row::new(vec![
                Value::Int(2),
                Value::Str("flagged".into()),
                Value::Int(20)
            ]),
        ]
    );
}

#[test]
fn trigger_extracted_value_delta_round_trips_through_pipeline() {
    let dir = scratch("value");
    let src = Database::open(DbOptions::new(dir.join("src"))).unwrap();
    let mut s = src.session();
    s.execute(
        "CREATE TABLE orders (id INT PRIMARY KEY, status VARCHAR, customer VARCHAR, total INT)",
    )
    .unwrap();
    let x = TriggerExtractor::new("orders");
    x.install(&src).unwrap();
    s.execute("INSERT INTO orders VALUES (1, 'open', 'acme', 10)")
        .unwrap();
    s.execute("INSERT INTO orders VALUES (2, 'open', 'bob', 20)")
        .unwrap();
    s.execute("UPDATE orders SET total = 25 WHERE id = 2")
        .unwrap();
    let vd = x.drain(&src).unwrap();

    // Ship through the queue as a serialized envelope (exactly what crosses
    // the network), then apply.
    let wh_db = Database::open(DbOptions::new(dir.join("wh"))).unwrap();
    let mut wh = Warehouse::new(wh_db);
    wh.add_mirror(MirrorConfig::full("orders", orders_schema()))
        .unwrap();
    let pipe = Pipeline::open(dir.join("pipe.q")).unwrap();
    pipe.publish(&DeltaBatch::Value(vd)).unwrap();
    let report = pipe.sync(&wh).unwrap();
    assert_eq!(report.batches, 1);
    assert_eq!(sorted(&src, "orders"), sorted(wh.db(), "orders"));
}

#[test]
fn unacked_batch_is_reapplied_after_consumer_restart() {
    let dir = scratch("restart");
    let qpath = dir.join("pipe.q");
    std::fs::create_dir_all(&dir).unwrap();
    let mut vd = deltaforge::core::model::ValueDelta::new("orders", orders_schema());
    vd.records.push(deltaforge::core::model::ValueDeltaRecord {
        op: DeltaOp::Insert,
        txn: 0,
        row: Row::new(vec![
            Value::Int(1),
            Value::Str("open".into()),
            Value::Str("acme".into()),
            Value::Int(10),
        ]),
    });
    {
        let pipe = Pipeline::open(&qpath).unwrap();
        pipe.publish(&DeltaBatch::Value(vd.clone())).unwrap();
        // Consumer "crashes" before syncing: nothing acked.
    }
    let pipe = Pipeline::open(&qpath).unwrap();
    let wh_db = Database::open(DbOptions::new(dir.join("wh"))).unwrap();
    let mut wh = Warehouse::new(wh_db);
    wh.add_mirror(MirrorConfig::full("orders", orders_schema()))
        .unwrap();
    let report = pipe.sync(&wh).unwrap();
    assert_eq!(report.batches, 1, "redelivered after restart");
    assert_eq!(wh.db().row_count("orders").unwrap(), 1);
}

#[test]
fn views_stay_consistent_across_both_appliers_end_to_end() {
    let dir = scratch("views");
    let src = Database::open(DbOptions::new(dir.join("src"))).unwrap();
    src.session()
        .execute(
            "CREATE TABLE orders (id INT PRIMARY KEY, status VARCHAR, customer VARCHAR, total INT)",
        )
        .unwrap();
    TriggerExtractor::new("orders").install(&src).unwrap();
    let mut cap = OpDeltaCapture::new(src.session(), OpLogSink::Table("op_log".into())).unwrap();

    let build_wh = |name: &str| {
        let wh_db = Database::open(DbOptions::new(dir.join(name))).unwrap();
        let mut wh = Warehouse::new(wh_db);
        wh.add_mirror(MirrorConfig::full("orders", orders_schema()))
            .unwrap();
        wh.add_view(SpjView {
            name: "open_orders".into(),
            tables: vec!["orders".into()],
            joins: vec![],
            selection: Some(parse_expression("orders_status = 'open'").unwrap()),
            projection: vec![
                ("orders".into(), "id".into()),
                ("orders".into(), "total".into()),
            ],
        })
        .unwrap();
        wh
    };
    let wh_op = build_wh("wh-op");
    let wh_val = build_wh("wh-val");

    cap.execute("INSERT INTO orders VALUES (1, 'open', 'a', 10), (2, 'open', 'b', 20), (3, 'closed', 'c', 30)")
        .unwrap();
    cap.execute("UPDATE orders SET status = 'closed' WHERE id = 1")
        .unwrap();
    cap.execute("UPDATE orders SET status = 'open' WHERE id = 3")
        .unwrap();
    cap.execute("DELETE FROM orders WHERE id = 2").unwrap();

    let vd = TriggerExtractor::new("orders").drain(&src).unwrap();
    let ods = collect_from_table(&src, "op_log").unwrap();
    OpDeltaApplier::apply_all(&wh_op, &ods).unwrap();
    ValueDeltaApplier::apply(&wh_val, &vd).unwrap();

    // Both view materializations equal, and equal to a from-source recompute.
    let view_op = sorted(wh_op.db(), "open_orders");
    let view_val = sorted(wh_val.db(), "open_orders");
    assert_eq!(view_op, view_val);
    assert_eq!(
        view_op,
        vec![Row::new(vec![Value::Int(3), Value::Int(30)])],
        "only order 3 is open at the end"
    );
    // A second useless join: ensure joins in multi-table views work e2e too.
    let wh2_db = Database::open(DbOptions::new(dir.join("wh2"))).unwrap();
    let mut wh2 = Warehouse::new(wh2_db);
    wh2.add_mirror(MirrorConfig::full("orders", orders_schema()))
        .unwrap();
    let customers = Schema::new(vec![
        Column::new("name", DataType::Varchar).primary_key(),
        Column::new("tier", DataType::Varchar),
    ])
    .unwrap();
    wh2.add_mirror(MirrorConfig::full("customers", customers))
        .unwrap();
    wh2.db()
        .session()
        .execute("INSERT INTO customers VALUES ('a', 'gold'), ('c', 'silver')")
        .unwrap();
    wh2.add_view(SpjView {
        name: "order_tiers".into(),
        tables: vec!["orders".into(), "customers".into()],
        joins: vec![JoinCond::new("orders", "customer", "customers", "name")],
        selection: None,
        projection: vec![
            ("orders".into(), "id".into()),
            ("customers".into(), "name".into()),
            ("customers".into(), "tier".into()),
        ],
    })
    .unwrap();
    OpDeltaApplier::apply_all(&wh2, &ods).unwrap();
    let tiers = sorted(wh2.db(), "order_tiers");
    assert_eq!(tiers.len(), 2, "orders 1 (a/gold) and 3 (c/silver) joined");
}

#[test]
fn aggregate_views_maintained_by_both_appliers() {
    use deltaforge::sql::ast::AggFunc;
    let dir = scratch("aggviews");
    let src = Database::open(DbOptions::new(dir.join("src"))).unwrap();
    src.session()
        .execute(
            "CREATE TABLE orders (id INT PRIMARY KEY, status VARCHAR, customer VARCHAR, total INT)",
        )
        .unwrap();
    TriggerExtractor::new("orders").install(&src).unwrap();
    let mut cap = OpDeltaCapture::new(src.session(), OpLogSink::Table("op_log".into())).unwrap();

    let build_wh = |name: &str| {
        let wh_db = Database::open(DbOptions::new(dir.join(name))).unwrap();
        let mut wh = Warehouse::new(wh_db);
        wh.add_mirror(MirrorConfig::full("orders", orders_schema()))
            .unwrap();
        wh.add_agg_view(AggViewDef {
            name: "revenue_by_customer".into(),
            table: "orders".into(),
            group_by: vec!["customer".into()],
            aggregates: vec![
                AggSpec::count_star(),
                AggSpec::of(AggFunc::Sum, "total"),
                AggSpec::of(AggFunc::Max, "total"),
            ],
            selection: Some(parse_expression("status = 'open'").unwrap()),
        })
        .unwrap();
        wh
    };
    let wh_op = build_wh("wh-agg-op");
    let wh_val = build_wh("wh-agg-val");

    cap.execute(
        "INSERT INTO orders VALUES (1, 'open', 'acme', 100), (2, 'open', 'acme', 50), (3, 'open', 'bob', 70)",
    )
    .unwrap();
    cap.execute("UPDATE orders SET status = 'closed' WHERE id = 1")
        .unwrap();
    cap.execute("UPDATE orders SET total = 90 WHERE id = 3")
        .unwrap();
    cap.execute("DELETE FROM orders WHERE id = 2").unwrap();

    let vd = TriggerExtractor::new("orders").drain(&src).unwrap();
    let ods = collect_from_table(&src, "op_log").unwrap();
    OpDeltaApplier::apply_all(&wh_op, &ods).unwrap();
    ValueDeltaApplier::apply(&wh_val, &vd).unwrap();

    for wh in [&wh_op, &wh_val] {
        let v = wh.agg_view("revenue_by_customer").unwrap();
        assert!(
            v.verify_against_recompute(wh.db()).unwrap(),
            "incremental summary must equal SQL recompute"
        );
        let rows = v.visible_rows(wh.db()).unwrap();
        // Only bob still has an open order (id 3, total 90).
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].values()[0], Value::Str("bob".into()));
        assert_eq!(rows[0].values()[1], Value::Int(1));
        assert_eq!(rows[0].values()[2], Value::Int(90));
    }
    assert_eq!(
        wh_op
            .agg_view("revenue_by_customer")
            .unwrap()
            .visible_rows(wh_op.db())
            .unwrap(),
        wh_val
            .agg_view("revenue_by_customer")
            .unwrap()
            .visible_rows(wh_val.db())
            .unwrap(),
    );
}
