//! The paper's §3/§5 qualitative comparison of extraction methods, as
//! executable assertions: run ONE workload against a source system and check
//! what each method can and cannot see.

use deltaforge::core::logextract::LogExtractor;
use deltaforge::core::model::DeltaOp;
use deltaforge::core::opdelta::{collect_from_table, OpDeltaCapture, OpLogSink};
use deltaforge::core::snapshot::{diff_snapshots, take_snapshot, DiffAlgorithm};
use deltaforge::core::timestamp::TimestampExtractor;
use deltaforge::core::trigger_extract::TriggerExtractor;
use deltaforge::engine::db::{Database, DbOptions};
use deltaforge::storage::Value;

fn scratch(label: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "deltaforge-xmethods-{}-{:?}-{label}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Build a source with every extraction method armed, run a fixed workload,
/// and return everything each method captured.
struct Harness {
    db: std::sync::Arc<Database>,
    dir: std::path::PathBuf,
    watermark: i64,
    old_snapshot: std::path::PathBuf,
}

fn run_workload(label: &str) -> Harness {
    let dir = scratch(label);
    let db = Database::open(DbOptions::new(dir.join("src")).archive(true)).unwrap();
    let mut s = db.session();
    s.execute(
        "CREATE TABLE parts (id INT PRIMARY KEY, name VARCHAR, qty INT, last_modified TIMESTAMP)",
    )
    .unwrap();
    for i in 0..50 {
        s.execute(&format!(
            "INSERT INTO parts (id, name, qty) VALUES ({i}, 'p{i}', 0)"
        ))
        .unwrap();
    }
    drop(s);
    // Arm everything.
    TriggerExtractor::new("parts").install(&db).unwrap();
    let old_snapshot = dir.join("before.snap");
    take_snapshot(&db, "parts", &old_snapshot).unwrap();
    let watermark = db.peek_clock();
    let log_watermark = db.wal().next_lsn();
    let mut cap = OpDeltaCapture::new(db.session(), OpLogSink::Table("op_log".into())).unwrap();

    // THE workload: insert, double update of one row, delete another,
    // plus a rolled-back transaction.
    cap.execute("INSERT INTO parts (id, name, qty) VALUES (100, 'new', 1)")
        .unwrap();
    cap.execute("UPDATE parts SET qty = 1 WHERE id = 7")
        .unwrap();
    cap.execute("UPDATE parts SET qty = 2 WHERE id = 7")
        .unwrap();
    cap.execute("DELETE FROM parts WHERE id = 9").unwrap();
    cap.execute("BEGIN").unwrap();
    cap.execute("UPDATE parts SET qty = 99 WHERE id = 3")
        .unwrap();
    cap.execute("ROLLBACK").unwrap();

    let _ = log_watermark;
    Harness {
        db,
        dir,
        watermark,
        old_snapshot,
    }
}

#[test]
fn timestamp_method_sees_final_states_only_and_misses_deletes() {
    let h = run_workload("ts");
    let x = TimestampExtractor::new("parts", "last_modified");
    let vd = x.extract(&h.db, h.watermark).unwrap();
    // Insert of 100 and final state of 7; the delete of 9 is invisible and
    // the intermediate qty=1 state of row 7 was lost.
    assert_eq!(vd.len(), 2);
    assert!(vd.records.iter().all(|r| r.op == DeltaOp::Insert));
    let row7 = vd
        .records
        .iter()
        .find(|r| r.row.values()[0] == Value::Int(7))
        .expect("row 7 extracted");
    assert_eq!(row7.row.values()[2], Value::Int(2), "only the final state");
    assert!(!vd.has_txn_context());
}

#[test]
fn snapshot_method_sees_deletes_but_not_intermediate_states() {
    let h = run_workload("snap");
    let new_snapshot = h.dir.join("after.snap");
    take_snapshot(&h.db, "parts", &new_snapshot).unwrap();
    let schema = h.db.table("parts").unwrap().schema.clone();
    let (vd, _) = diff_snapshots(
        "parts",
        &schema,
        &[0],
        &h.old_snapshot,
        &new_snapshot,
        DiffAlgorithm::SortMerge { run_size: 16 },
    )
    .unwrap();
    let ops: Vec<(DeltaOp, i64)> = vd
        .records
        .iter()
        .map(|r| (r.op, r.row.values()[0].as_int().unwrap()))
        .collect();
    assert!(ops.contains(&(DeltaOp::Insert, 100)));
    assert!(
        ops.contains(&(DeltaOp::Delete, 9)),
        "snapshots DO see deletes"
    );
    assert!(ops.contains(&(DeltaOp::UpdateBefore, 7)));
    assert!(ops.contains(&(DeltaOp::UpdateAfter, 7)));
    // But only one update pair for row 7 (intermediate state lost), and no
    // transaction context.
    assert_eq!(
        ops.iter()
            .filter(|(op, id)| *id == 7 && *op == DeltaOp::UpdateAfter)
            .count(),
        1
    );
    assert!(!vd.has_txn_context());
}

#[test]
fn trigger_method_sees_every_state_change_with_txn_context() {
    let h = run_workload("trig");
    let vd = TriggerExtractor::new("parts").drain(&h.db).unwrap();
    // insert(1) + 2 updates (2 images each) + delete(1) = 6; the rolled-back
    // update left nothing.
    assert_eq!(vd.len(), 6);
    assert!(vd.has_txn_context());
    // Both states of row 7 are visible.
    let qtys: Vec<i64> = vd
        .records
        .iter()
        .filter(|r| r.op == DeltaOp::UpdateAfter)
        .map(|r| r.row.values()[2].as_int().unwrap())
        .collect();
    assert_eq!(qtys, vec![1, 2]);
}

#[test]
fn log_method_matches_trigger_content_without_touching_transactions() {
    let h = run_workload("log");
    let stmts_before = h.db.statements_executed();
    let mut x = LogExtractor::for_tables(&["parts"]);
    let deltas = x.extract(&h.db).unwrap();
    assert_eq!(
        h.db.statements_executed(),
        stmts_before,
        "log extraction runs no statements against the source"
    );
    let parts: Vec<_> = deltas.into_iter().filter(|d| d.table == "parts").collect();
    assert_eq!(parts.len(), 1);
    let vd = &parts[0];
    // Seed inserts (50) + workload changes (6 records) — and nothing from
    // the rolled-back transaction.
    assert_eq!(vd.len(), 50 + 6);
    assert!(vd.has_txn_context());
    assert!(
        !vd.records
            .iter()
            .any(|r| r.row.values()[2] == Value::Int(99)),
        "aborted work absent"
    );
}

#[test]
fn op_delta_captures_operations_with_boundaries_and_tiny_volume() {
    let h = run_workload("opd");
    let ods = collect_from_table(&h.db, "op_log").unwrap();
    // 4 committed transactions; the rolled-back one vanished with its txn.
    assert_eq!(ods.len(), 4);
    let total_wire: usize = ods.iter().map(|od| od.wire_size()).sum();
    assert!(
        total_wire < 600,
        "four ops should be a few hundred bytes, got {total_wire}"
    );
    // Both update statements present (state-change capture, like triggers).
    let sqls: Vec<String> = ods
        .iter()
        .flat_map(|od| od.ops.iter().map(|o| o.statement.to_string()))
        .collect();
    assert!(sqls.iter().any(|s| s.contains("qty = 1")));
    assert!(sqls.iter().any(|s| s.contains("qty = 2")));
    assert!(
        !sqls.iter().any(|s| s.contains("99")),
        "rolled-back op absent"
    );
}

#[test]
fn volume_comparison_matches_section_4_1() {
    // A set-oriented update touching many rows: value delta ships hundreds of
    // records, the Op-Delta ships one statement.
    let dir = scratch("volume");
    let db = Database::open(DbOptions::new(dir.join("src"))).unwrap();
    let mut s = db.session();
    s.execute("CREATE TABLE parts (id INT PRIMARY KEY, name VARCHAR, qty INT)")
        .unwrap();
    for i in 0..500 {
        s.execute(&format!("INSERT INTO parts VALUES ({i}, 'p{i}', 0)"))
            .unwrap();
    }
    drop(s);
    TriggerExtractor::new("parts").install(&db).unwrap();
    let mut cap = OpDeltaCapture::new(db.session(), OpLogSink::Table("op_log".into())).unwrap();
    cap.execute("UPDATE parts SET qty = 1 WHERE id >= 0")
        .unwrap();

    let value = TriggerExtractor::new("parts").drain(&db).unwrap();
    let op = collect_from_table(&db, "op_log").unwrap();
    assert_eq!(value.len(), 1000, "500 before + 500 after images");
    let ratio = value.wire_size() as f64 / op[0].wire_size() as f64;
    assert!(
        ratio > 100.0,
        "value delta must be orders of magnitude larger (got {ratio:.0}x)"
    );
}
