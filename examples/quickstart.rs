//! Quickstart: capture Op-Deltas at a source system, ship them through a
//! durable queue, and maintain a warehouse mirror — the end-to-end loop of
//! the paper's Figure 1.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use deltaforge::core::model::DeltaBatch;
use deltaforge::core::opdelta::{clear_table, collect_from_table, OpDeltaCapture, OpLogSink};
use deltaforge::engine::db::Database;
use deltaforge::engine::DbOptions;
use deltaforge::storage::{Column, DataType, Schema};
use deltaforge::warehouse::{MirrorConfig, Pipeline, Warehouse};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scratch =
        std::env::temp_dir().join(format!("deltaforge-quickstart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    // ---------------------------------------------------------------
    // 1. An operational source system (the COTS-encapsulated database).
    // ---------------------------------------------------------------
    let source = Database::open(DbOptions::new(scratch.join("source")))?;
    let mut setup = source.session();
    setup.execute(
        "CREATE TABLE parts (id INT PRIMARY KEY, name VARCHAR NOT NULL, qty INT, status VARCHAR)",
    )?;
    setup.execute(
        "INSERT INTO parts VALUES \
         (1, 'bolt', 120, 'active'), (2, 'nut', 80, 'active'), \
         (3, 'washer', 0, 'obsolete'), (4, 'rivet', 45, 'active')",
    )?;
    drop(setup);

    // ---------------------------------------------------------------
    // 2. Wrap the application's session with Op-Delta capture — the
    //    interception point "right before it is submitted to the DBMS".
    // ---------------------------------------------------------------
    let mut app = OpDeltaCapture::new(source.session(), OpLogSink::Table("op_log".into()))?;

    // The application goes about its business; every write is captured with
    // its transaction boundary.
    app.execute("INSERT INTO parts VALUES (5, 'bracket', 200, 'active')")?;
    app.execute("BEGIN")?;
    app.execute("UPDATE parts SET status = 'review' WHERE qty = 0")?;
    app.execute("UPDATE parts SET qty = qty - 40 WHERE id = 1")?;
    app.execute("COMMIT")?;
    app.execute("DELETE FROM parts WHERE status = 'review'")?;
    println!("source: captured {} write statements", app.captured_count());

    // ---------------------------------------------------------------
    // 3. Ship the captured operations through a durable queue.
    // ---------------------------------------------------------------
    let pipeline = Pipeline::open(scratch.join("pipeline.q"))?;
    for od in collect_from_table(&source, "op_log")? {
        println!(
            "shipping source txn {} ({} op(s), {} bytes on the wire)",
            od.txn,
            od.ops.len(),
            od.wire_size()
        );
        pipeline.publish(&DeltaBatch::Op(od))?;
    }
    clear_table(&source, "op_log")?;

    // ---------------------------------------------------------------
    // 4. The warehouse: a full mirror of `parts`, maintained per source
    //    transaction — no maintenance outage.
    // ---------------------------------------------------------------
    let wh_db = Database::open(DbOptions::new(scratch.join("warehouse")))?;
    let mut warehouse = Warehouse::new(wh_db);
    let source_schema = Schema::new(vec![
        Column::new("id", DataType::Int).primary_key(),
        Column::new("name", DataType::Varchar).not_null(),
        Column::new("qty", DataType::Int),
        Column::new("status", DataType::Varchar),
    ])?;
    warehouse.add_mirror(MirrorConfig::full("parts", source_schema))?;
    // Backfill the pre-capture state (the initial load), then sync deltas.
    for (id, name, qty, status) in [
        (1, "bolt", 120, "active"),
        (2, "nut", 80, "active"),
        (3, "washer", 0, "obsolete"),
        (4, "rivet", 45, "active"),
    ] {
        warehouse.db().session().execute(&format!(
            "INSERT INTO parts VALUES ({id}, '{name}', {qty}, '{status}')"
        ))?;
    }
    let report = pipeline.sync(&warehouse)?;
    println!(
        "warehouse: applied {} batch(es) as {} transaction(s), {} statement(s)",
        report.batches, report.apply.transactions, report.apply.statements
    );

    // ---------------------------------------------------------------
    // 5. Verify: the mirror matches the source exactly.
    // ---------------------------------------------------------------
    let mut src_rows = source.scan_table("parts")?;
    let mut wh_rows = warehouse.db().scan_table("parts")?;
    let key = |r: &(deltaforge::storage::RecordId, deltaforge::storage::Row)| {
        r.1.values()[0].as_int().unwrap()
    };
    src_rows.sort_by_key(key);
    wh_rows.sort_by_key(key);
    assert_eq!(
        src_rows.iter().map(|(_, r)| r).collect::<Vec<_>>(),
        wh_rows.iter().map(|(_, r)| r).collect::<Vec<_>>()
    );
    println!(
        "verified: warehouse mirror identical to source ({} rows)",
        wh_rows.len()
    );
    for (_, row) in &wh_rows {
        println!("  {}", deltaforge::storage::codec::ascii::format_row(row));
    }
    Ok(())
}
