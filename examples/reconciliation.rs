//! Replication and reconciliation (§2.2): why low-level extraction from
//! replicated COTS systems needs an authoritative-copy step, and how
//! Op-Delta sidesteps the problem by capturing at the business level.
//!
//! Two replica databases receive the same business changes (one imperfectly
//! — a lost update, a divergent value). Trigger-based extraction sees one
//! delta *per replica*; the reconciler merges them, dropping echoes and
//! surfacing the divergence. The same business activity captured once as
//! Op-Delta needs no reconciliation at all.
//!
//! ```text
//! cargo run --example reconciliation
//! ```

use deltaforge::core::opdelta::{collect_from_table, OpDeltaCapture, OpLogSink};
use deltaforge::core::reconcile::{ReconcileKey, Reconciler};
use deltaforge::core::trigger_extract::TriggerExtractor;
use deltaforge::engine::db::Database;
use deltaforge::engine::DbOptions;

fn make_replica(dir: &std::path::Path, name: &str) -> std::sync::Arc<Database> {
    let db = Database::open(DbOptions::new(dir.join(name))).expect("open");
    db.session()
        .execute("CREATE TABLE accounts (id INT PRIMARY KEY, balance INT, owner VARCHAR)")
        .expect("ddl");
    db
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scratch = std::env::temp_dir().join(format!("deltaforge-recon-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    // --- Two replicas, both instrumented with capture triggers.
    let east = make_replica(&scratch, "east");
    let west = make_replica(&scratch, "west");
    let x_east = TriggerExtractor::new("accounts");
    let x_west = TriggerExtractor::new("accounts");
    x_east.install(&east)?;
    x_west.install(&west)?;

    // The COTS layer replays each business transaction on both replicas
    // (the DBMSs are unaware of each other). Meanwhile the same layer is
    // also wrapped with Op-Delta capture on the authoritative replica.
    let mut cap = OpDeltaCapture::new(east.session(), OpLogSink::Table("op_log".into()))?;
    let mut west_s = west.session();

    // txn 1: replicated cleanly to both.
    cap.execute("INSERT INTO accounts VALUES (1, 1000, 'alice')")?;
    west_s.execute("INSERT INTO accounts VALUES (1, 1000, 'alice')")?;
    // txn 2: replication glitch — west applied a *different* value
    // (non-serializable interleaving with a local write).
    cap.execute("UPDATE accounts SET balance = 900 WHERE id = 1")?;
    west_s.execute("UPDATE accounts SET balance = 905 WHERE id = 1")?;
    // txn 3: never reached west at all.
    cap.execute("INSERT INTO accounts VALUES (2, 500, 'bob')")?;

    // --- Low-level extraction: one delta stream per replica.
    let d_east = x_east.drain(&east)?;
    let d_west = x_west.drain(&west)?;
    println!(
        "trigger extraction saw {} records at east, {} at west ({} total for {} business changes)",
        d_east.len(),
        d_west.len(),
        d_east.len() + d_west.len(),
        4
    );

    // Reconcile with east as the authoritative replica. The replicas applied
    // the business transactions in lockstep, so their transaction ids align —
    // standing in for the global transaction id an integration layer would
    // stamp (§3.1.3 calls this mechanism out). The id-keyed reconciler can
    // therefore both drop echoes AND catch value divergence; pure content
    // matching (ReconcileKey::Content) could only do the former.
    let reconciler = Reconciler::new("east", ReconcileKey::GlobalTxnId);
    let r = reconciler.reconcile(vec![("east".into(), d_east), ("west".into(), d_west)]);
    println!(
        "reconciled: {} authoritative records, {} replica echoes dropped, {} conflict(s) surfaced",
        r.delta.len(),
        r.duplicates_dropped,
        r.conflicts.len()
    );
    for c in &r.conflicts {
        println!(
            "  CONFLICT: kept {:?} from {}, rejected {:?} from {}",
            c.kept.row.values()[1],
            c.kept_from,
            c.conflicting.row.values()[1],
            c.conflicting_from
        );
    }
    assert!(!r.conflicts.is_empty(), "the divergence must surface");

    // --- Op-Delta: captured once at the business level — one authoritative
    // operation per change, nothing to reconcile.
    let ods = collect_from_table(&east, "op_log")?;
    println!(
        "\nOp-Delta capture saw exactly {} business transactions:",
        ods.len()
    );
    for od in &ods {
        for op in &od.ops {
            println!("  txn {}: {}", od.txn, op.statement);
        }
    }
    assert_eq!(ods.len(), 3);
    println!("\nno duplicates, no reconciliation step — §4.1's authoritative-capture argument");
    Ok(())
}
