//! Archive-log extraction and log shipping (§3.1.4): the lowest-impact
//! value-delta method, and its constraints, live.
//!
//! A primary runs transactions with archive mode on; closed WAL segments are
//! shipped (checksummed) to a standby that replays them with its recovery
//! machinery — and, in parallel, the same archive feeds the `LogExtractor`
//! to produce portable value deltas without ever touching the primary's
//! transactions.
//!
//! ```text
//! cargo run --example log_shipping
//! ```

use deltaforge::core::logextract::LogExtractor;
use deltaforge::engine::db::Database;
use deltaforge::engine::wal::read_segment;
use deltaforge::engine::DbOptions;
use deltaforge::transport::FileTransport;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scratch = std::env::temp_dir().join(format!("deltaforge-ship-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    // Primary with archive mode and small segments (so rotation is visible).
    let mut opts = DbOptions::new(scratch.join("primary")).archive(true);
    opts.wal_segment_bytes = 8 * 1024;
    let primary = Database::open(opts)?;
    let mut s = primary.session();
    s.execute("CREATE TABLE parts (id INT PRIMARY KEY, name VARCHAR, qty INT)")?;
    let stmts_before = primary.statements_executed();
    for i in 0..500 {
        s.execute(&format!(
            "INSERT INTO parts VALUES ({i}, 'p{i}', {})",
            i % 7
        ))?;
    }
    s.execute("UPDATE parts SET qty = 99 WHERE qty = 0")?;
    s.execute("DELETE FROM parts WHERE id >= 450")?;
    primary.checkpoint()?; // archives the closed segments

    // The extractor reads the log without issuing a single statement against
    // the primary — the "no direct impact on user transactions" property.
    let user_stmts = primary.statements_executed() - stmts_before;
    let mut extractor = LogExtractor::for_tables(&["parts"]);
    let deltas = extractor.extract(&primary)?;
    assert_eq!(primary.statements_executed() - stmts_before, user_stmts);
    println!(
        "extracted {} change records from the archive log ({} user statements ran; extraction added 0)",
        deltas[0].len(),
        user_stmts
    );

    // Ship the archived segments with integrity checks, replay on a standby.
    let transport = FileTransport::new(scratch.join("standby-inbox"))?;
    let standby = Database::open(DbOptions::new(scratch.join("standby")))?;
    let mut shipped_bytes = 0u64;
    let mut applied = 0u64;
    for seg in primary.wal().archived_segments()? {
        let shipped = transport.ship(&seg, None)?;
        shipped_bytes += shipped.bytes;
        let verified = transport.receive(&shipped.name)?;
        applied += standby.apply_log_records(&read_segment(&verified)?)?;
    }
    for seg in primary.wal().resident_segments()? {
        applied += standby.apply_log_records(&read_segment(&seg)?)?;
    }
    println!(
        "shipped {shipped_bytes} bytes of archive segments; standby applied {applied} changes"
    );

    // The standby is now an exact replica.
    let count = standby.row_count("parts")?;
    assert_eq!(count, primary.row_count("parts")?);
    let r = standby
        .session()
        .execute("SELECT COUNT(*), SUM(qty) FROM parts")?;
    println!(
        "standby state: {count} rows, COUNT/SUM check: {} / {}",
        r.rows[0].values()[0],
        r.rows[0].values()[1]
    );
    println!(
        "\nconstraints on display: archive mode required, same product and\n\
         schema at both ends (the paper's §3.1.4 caveats) — see the\n\
         cross-product rejection test in tests/log_shipping.rs"
    );
    Ok(())
}
