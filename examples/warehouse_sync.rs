//! End-to-end warehouse maintenance with an SPJ materialized view and
//! concurrent OLAP queries: the "no outage" property of §4.1, demonstrated.
//!
//! A source system runs order transactions; Op-Deltas flow through the
//! pipeline; the warehouse maintains mirrors *and* a join view while OLAP
//! readers keep querying it.
//!
//! ```text
//! cargo run --release --example warehouse_sync
//! ```

use deltaforge::core::model::DeltaBatch;
use deltaforge::core::opdelta::{clear_table, collect_from_table, OpDeltaCapture, OpLogSink};
use deltaforge::engine::db::Database;
use deltaforge::engine::DbOptions;
use deltaforge::sql::ast::AggFunc;
use deltaforge::sql::parser::parse_expression;
use deltaforge::storage::{Column, DataType, Schema};
use deltaforge::warehouse::{
    AggSpec, AggViewDef, JoinCond, MirrorConfig, OlapDriver, Pipeline, SpjView, Warehouse,
};

fn customers_schema() -> Schema {
    Schema::new(vec![
        Column::new("cid", DataType::Int).primary_key(),
        Column::new("name", DataType::Varchar).not_null(),
        Column::new("region", DataType::Varchar),
    ])
    .unwrap()
}

fn orders_schema() -> Schema {
    Schema::new(vec![
        Column::new("oid", DataType::Int).primary_key(),
        Column::new("cust", DataType::Int),
        Column::new("total", DataType::Int),
        Column::new("status", DataType::Varchar),
    ])
    .unwrap()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scratch = std::env::temp_dir().join(format!("deltaforge-sync-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    // --- Source system with two tables.
    let source = Database::open(DbOptions::new(scratch.join("source")))?;
    let mut s = source.session();
    s.execute(
        "CREATE TABLE customers (cid INT PRIMARY KEY, name VARCHAR NOT NULL, region VARCHAR)",
    )?;
    s.execute("CREATE TABLE orders (oid INT PRIMARY KEY, cust INT, total INT, status VARCHAR)")?;
    s.execute("INSERT INTO customers VALUES (1, 'acme', 'west'), (2, 'globex', 'east'), (3, 'initech', 'west')")?;
    drop(s);
    let mut app = OpDeltaCapture::new(source.session(), OpLogSink::Table("op_log".into()))?;

    // --- Warehouse: mirrors + a key-preserving SPJ view of open west orders.
    let wh_db = Database::open(DbOptions::new(scratch.join("warehouse")))?;
    let mut warehouse = Warehouse::new(wh_db);
    warehouse.add_mirror(MirrorConfig::full("customers", customers_schema()))?;
    warehouse.add_mirror(MirrorConfig::full("orders", orders_schema()))?;
    // Backfill the initial customer state.
    for (cid, name, region) in [
        (1, "acme", "west"),
        (2, "globex", "east"),
        (3, "initech", "west"),
    ] {
        warehouse.db().session().execute(&format!(
            "INSERT INTO customers VALUES ({cid}, '{name}', '{region}')"
        ))?;
    }
    warehouse.add_view(SpjView {
        name: "west_open_orders".into(),
        tables: vec!["customers".into(), "orders".into()],
        joins: vec![JoinCond::new("customers", "cid", "orders", "cust")],
        selection: Some(parse_expression(
            "customers_region = 'west' AND orders_status = 'open'",
        )?),
        projection: vec![
            ("customers".into(), "cid".into()),
            ("customers".into(), "name".into()),
            ("orders".into(), "oid".into()),
            ("orders".into(), "total".into()),
        ],
    })?;

    // A summary table too: revenue per region over open orders, maintained
    // incrementally by the counting algorithm.
    warehouse.add_agg_view(AggViewDef {
        name: "open_order_stats".into(),
        table: "orders".into(),
        group_by: vec![],
        aggregates: vec![
            AggSpec::count_star(),
            AggSpec::of(AggFunc::Sum, "total"),
            AggSpec::of(AggFunc::Max, "total"),
        ],
        selection: Some(parse_expression("status = 'open'")?),
    })?;

    let pipeline = Pipeline::open(scratch.join("pipe.q"))?;

    // --- Round 1 of source activity.
    app.execute("INSERT INTO orders VALUES (100, 1, 250, 'open')")?;
    app.execute("INSERT INTO orders VALUES (101, 2, 90, 'open')")?;
    app.execute("INSERT INTO orders VALUES (102, 3, 400, 'open')")?;
    ship(&source, &pipeline)?;

    // Apply while OLAP readers hammer the view: no outage.
    let driver = OlapDriver::new(warehouse.db().clone(), &["west_open_orders"], 2);
    let (sync_result, stats) = driver.run_during(|| pipeline.sync(&warehouse));
    let report = sync_result?;
    println!(
        "round 1: {} batch(es) applied, {} view row(s) touched; OLAP readers completed {} queries (max latency {:.1?}, timeouts {})",
        report.batches, report.apply.view_rows_touched, stats.completed, stats.max_latency, stats.timeouts
    );
    print_view(&warehouse)?;

    // --- Round 2: a customer moves region, an order closes, one is deleted.
    app.execute("BEGIN")?;
    app.execute("UPDATE customers SET region = 'west' WHERE cid = 2")?;
    app.execute("UPDATE orders SET status = 'closed' WHERE oid = 100")?;
    app.execute("COMMIT")?;
    app.execute("DELETE FROM orders WHERE oid = 102")?;
    ship(&source, &pipeline)?;
    let report = pipeline.sync(&warehouse)?;
    println!(
        "\nround 2: {} batch(es) applied as {} warehouse txn(s) (one per source txn)",
        report.batches, report.apply.transactions
    );
    print_view(&warehouse)?;

    // The view now shows exactly the open west orders: globex's order 101.
    let rows = warehouse.db().scan_table("west_open_orders")?;
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].1.values()[2].as_int()?, 101);

    // The summary stayed consistent through every delta, and matches a
    // from-scratch SQL recompute.
    let summary = warehouse.agg_view("open_order_stats").expect("registered");
    assert!(summary.verify_against_recompute(warehouse.db())?);
    let stats_rows = summary.visible_rows(warehouse.db())?;
    println!(
        "\nopen_order_stats (incremental == recompute): count={}, sum={}, max={}",
        stats_rows[0].values()[0],
        stats_rows[0].values()[1],
        stats_rows[0].values()[2]
    );
    println!("verified: view contents match the source state");
    Ok(())
}

fn ship(source: &Database, pipeline: &Pipeline) -> Result<(), Box<dyn std::error::Error>> {
    for od in collect_from_table(source, "op_log")? {
        pipeline.publish(&DeltaBatch::Op(od))?;
    }
    clear_table(source, "op_log")?;
    Ok(())
}

fn print_view(warehouse: &Warehouse) -> Result<(), Box<dyn std::error::Error>> {
    println!("west_open_orders:");
    for (_, row) in warehouse.db().scan_table("west_open_orders")? {
        println!("  {}", deltaforge::storage::codec::ascii::format_row(&row));
    }
    Ok(())
}
