//! Head-to-head capture overhead: row-level triggers (Figure 2) vs Op-Delta
//! capture (Figure 3) on identical transactions — the paper's §4.2
//! comparison, live.
//!
//! ```text
//! cargo run --release --example trigger_vs_opdelta
//! ```

use std::time::Instant;

use deltaforge::core::opdelta::{OpDeltaCapture, OpLogSink};
use deltaforge::core::trigger_extract::TriggerExtractor;
use deltaforge::engine::db::Database;
use deltaforge::engine::DbOptions;

const ROWS: usize = 5_000;
const TXN_SIZES: [usize; 3] = [10, 100, 1000];

fn make_source(dir: &std::path::Path, name: &str) -> std::sync::Arc<Database> {
    let db = Database::open(DbOptions::new(dir.join(name))).expect("open");
    let mut s = db.session();
    s.execute("CREATE TABLE parts (id INT PRIMARY KEY, grp INT, val INT)")
        .expect("ddl");
    for chunk_start in (0..ROWS).step_by(500) {
        let values: Vec<String> = (chunk_start..(chunk_start + 500).min(ROWS))
            .map(|i| format!("({i}, {i}, 0)"))
            .collect();
        s.execute(&format!("INSERT INTO parts VALUES {}", values.join(", ")))
            .expect("seed");
    }
    db
}

fn time_update(mut run: impl FnMut(&str), n: usize) -> std::time::Duration {
    let sql = format!("UPDATE parts SET val = val + 1 WHERE grp >= 0 AND grp < {n}");
    run(&sql); // warm-up
    let reps = 20;
    let start = Instant::now();
    for _ in 0..reps {
        run(&sql);
    }
    start.elapsed() / reps
}

fn main() {
    let scratch = std::env::temp_dir().join(format!("deltaforge-tvo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    println!("update-transaction response time on a {ROWS}-row table\n");
    println!(
        "{:>8}  {:>12}  {:>14}  {:>14}  {:>9}  {:>9}",
        "txn size", "baseline", "trigger", "op-delta", "trig ovh", "op ovh"
    );
    for n in TXN_SIZES {
        // Baseline: no capture at all.
        let base_db = make_source(&scratch, &format!("base-{n}"));
        let mut base = base_db.session();
        let t_base = time_update(
            |sql| {
                base.execute(sql).expect("stmt");
            },
            n,
        );

        // Trigger capture: every changed row writes before+after images.
        let trig_db = make_source(&scratch, &format!("trig-{n}"));
        TriggerExtractor::new("parts")
            .install(&trig_db)
            .expect("trigger");
        let mut trig = trig_db.session();
        let t_trig = time_update(
            |sql| {
                trig.execute(sql).expect("stmt");
            },
            n,
        );

        // Op-Delta capture: the ~70-byte statement is logged once.
        let op_db = make_source(&scratch, &format!("op-{n}"));
        let mut cap = OpDeltaCapture::new(op_db.session(), OpLogSink::Table("op_log".into()))
            .expect("capture");
        let t_op = time_update(
            |sql| {
                cap.execute(sql).expect("stmt");
            },
            n,
        );

        let ovh = |t: std::time::Duration| {
            format!(
                "{:+.1}%",
                (t.as_secs_f64() / t_base.as_secs_f64() - 1.0) * 100.0
            )
        };
        println!(
            "{:>8}  {:>12.1?}  {:>14.1?}  {:>14.1?}  {:>9}  {:>9}",
            n,
            t_base,
            t_trig,
            t_op,
            ovh(t_trig),
            ovh(t_op)
        );
    }
    println!(
        "\nThe trigger pays two extra inserts per updated row; the Op-Delta log\n\
         is one ~70-byte statement regardless of how many rows the transaction\n\
         touches — §4.1's volume argument, measured."
    );
}
