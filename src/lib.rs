//! # DeltaForge
//!
//! A reproduction of *"Extracting Delta for Incremental Data Warehouse
//! Maintenance"* (Prabhu Ram and Lyman Do, ICDE 2000): delta-extraction
//! methods for operational source systems — timestamps, differential
//! snapshots, triggers, archive-log extraction — and the paper's
//! contribution, **Op-Delta**, which captures the *operations* that caused
//! the changes instead of the changed values.
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`storage`] — slotted pages, buffer pool, heap files, dump codecs;
//! * [`sql`] — the SQL dialect and the Op-Delta wire format;
//! * [`engine`] — the source-system DBMS substrate (WAL + archive logs,
//!   triggers, indexes, Export/Import/Loader utilities);
//! * [`core`] — the delta model, the four classical extractors, Op-Delta
//!   capture, reconciliation, and the self-maintainability analyser;
//! * [`transport`] — file/queue transports and the virtual-time network
//!   simulator;
//! * [`warehouse`] — SPJ materialized views and the two maintenance
//!   strategies (batch value-delta vs concurrent Op-Delta).
//!
//! See `examples/quickstart.rs` for an end-to-end tour and `DESIGN.md` for
//! the experiment map.

pub use delta_core as core;
pub use delta_engine as engine;
pub use delta_sql as sql;
pub use delta_storage as storage;
pub use delta_transport as transport;
pub use delta_warehouse as warehouse;
